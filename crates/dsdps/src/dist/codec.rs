//! Compact binary wire codec for the distributed runtime.
//!
//! Every cross-process hop — tuples, acks, credit grants, checkpoint
//! deposits and control messages — is one length-prefixed **frame**:
//!
//! ```text
//! frame := len:varint  tag:u8  body
//! ```
//!
//! Integers are LEB128 varints (signed values zigzag-encoded), floats are
//! 8 little-endian bytes, strings and byte strings are length-prefixed.
//! Stream ids and field schemas are never sent per tuple: both sides of a
//! connection build the same topology from the same registry entry, so
//! they derive identical [`InternTable`]s and tuples travel as a stream
//! *index* plus raw values.  Encoding appends into a caller-owned,
//! reusable `Vec<u8>`; decoding never allocates beyond the decoded values
//! themselves and **never panics** on truncated or corrupted input — every
//! length is bounds-checked against the remaining payload.
//!
//! The [`json`] submodule encodes the same frames through the workspace
//! serde_json shim.  It exists as the measured baseline for the codec
//! microbenchmark (`BENCH_dist.json`) and as a debugging aid; the runtime
//! always speaks binary.
//!
//! The [`value`] functions binary-encode a [`serde::JsonValue`] tree —
//! the workspace serde model — and back.  The checkpoint store reuses them
//! for compact state snapshots (see [`crate::rt::checkpoint`]).

use std::collections::HashMap;

use crate::topology::Topology;
use crate::tuple::{Fields, Tuple, Value};

/// Frames larger than this are rejected as malformed (a corrupted length
/// prefix must not make the reader allocate gigabytes).
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// A decode failure.  Carries enough context to debug a corrupt stream;
/// decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before the value it promised.
    Truncated,
    /// A tag, length or invariant was out of range.
    Malformed(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "frame truncated"),
            CodecError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

// --- varints ------------------------------------------------------------

/// Appends `v` as an LEB128 varint (1–10 bytes).
#[inline]
pub fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Zigzag-maps a signed value so small magnitudes stay short varints.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Bounds-checked cursor over an encoded payload.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte was consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        let b = *self.buf.get(self.pos).ok_or(CodecError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads an LEB128 varint (at most 10 bytes).
    pub fn varint(&mut self) -> Result<u64, CodecError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift == 63 && b > 1 {
                return Err(CodecError::Malformed("varint overflows u64"));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(CodecError::Malformed("varint longer than 10 bytes"));
            }
        }
    }

    /// Reads a zigzag-encoded signed varint.
    pub fn svarint(&mut self) -> Result<i64, CodecError> {
        Ok(unzigzag(self.varint()?))
    }

    /// Reads a varint and checks it fits a length of remaining payload.
    fn len(&mut self) -> Result<usize, CodecError> {
        let n = self.varint()?;
        if n > self.remaining() as u64 {
            return Err(CodecError::Truncated);
        }
        Ok(n as usize)
    }

    /// Reads a varint element *count*; each element needs ≥ 1 byte, so a
    /// count beyond the remaining bytes is corruption, not a short read.
    fn count(&mut self) -> Result<usize, CodecError> {
        let n = self.varint()?;
        if n > self.remaining() as u64 {
            return Err(CodecError::Malformed("element count exceeds payload"));
        }
        Ok(n as usize)
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a length-prefixed byte string.
    pub fn byte_str(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.len()?;
        self.bytes(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.byte_str()?).map_err(|_| CodecError::Malformed("invalid UTF-8"))
    }

    /// Reads an 8-byte little-endian f64.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        let b = self.bytes(8)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
}

#[inline]
fn write_str(buf: &mut Vec<u8>, s: &str) {
    write_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

#[inline]
fn write_byte_str(buf: &mut Vec<u8>, s: &[u8]) {
    write_varint(buf, s.len() as u64);
    buf.extend_from_slice(s);
}

// --- tuple values -------------------------------------------------------

const V_NULL: u8 = 0;
const V_FALSE: u8 = 1;
const V_TRUE: u8 = 2;
const V_I64: u8 = 3;
const V_F64: u8 = 4;
const V_STR: u8 = 5;
const V_BYTES: u8 = 6;
const V_LIST: u8 = 7;

/// Appends one tuple [`Value`].
pub fn write_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(V_NULL),
        Value::Bool(false) => buf.push(V_FALSE),
        Value::Bool(true) => buf.push(V_TRUE),
        Value::I64(i) => {
            buf.push(V_I64);
            write_varint(buf, zigzag(*i));
        }
        Value::F64(x) => {
            buf.push(V_F64);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(V_STR);
            write_str(buf, s);
        }
        Value::Bytes(b) => {
            buf.push(V_BYTES);
            write_byte_str(buf, b);
        }
        Value::List(items) => {
            buf.push(V_LIST);
            write_varint(buf, items.len() as u64);
            for item in items {
                write_value(buf, item);
            }
        }
    }
}

/// Reads one tuple [`Value`].
pub fn read_value(d: &mut Dec<'_>) -> Result<Value, CodecError> {
    match d.u8()? {
        V_NULL => Ok(Value::Null),
        V_FALSE => Ok(Value::Bool(false)),
        V_TRUE => Ok(Value::Bool(true)),
        V_I64 => Ok(Value::I64(d.svarint()?)),
        V_F64 => Ok(Value::F64(d.f64()?)),
        V_STR => Ok(Value::from(d.str()?)),
        V_BYTES => Ok(Value::Bytes(bytes::Bytes::from(d.byte_str()?.to_vec()))),
        V_LIST => {
            let n = d.count()?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(read_value(d)?);
            }
            Ok(Value::List(items))
        }
        _ => Err(CodecError::Malformed("unknown value tag")),
    }
}

fn write_values(buf: &mut Vec<u8>, values: &[Value]) {
    write_varint(buf, values.len() as u64);
    for v in values {
        write_value(buf, v);
    }
}

fn read_values(d: &mut Dec<'_>) -> Result<Vec<Value>, CodecError> {
    let n = d.count()?;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(read_value(d)?);
    }
    Ok(values)
}

// --- intern table -------------------------------------------------------

/// Deterministic per-topology intern table of `(component, stream)` pairs.
///
/// Both endpoints build it from the same [`Topology`] (components in id
/// order, each component's declared output streams in declaration order),
/// so a stream travels as a small varint index and the receiver recovers
/// the interned [`Fields`] schema without any per-tuple schema bytes.
pub struct InternTable {
    entries: Vec<(crate::stream::StreamId, Fields)>,
    /// `(component id, stream name) -> entry index`.
    index: HashMap<(usize, String), u32>,
    /// First entry index of each component, for per-component lookups.
    component_base: Vec<u32>,
}

impl InternTable {
    /// Builds the table for `topology`.
    pub fn new(topology: &Topology) -> Self {
        let mut entries = Vec::new();
        let mut index = HashMap::new();
        let mut component_base = Vec::new();
        for comp in topology.components() {
            component_base.push(entries.len() as u32);
            for decl in &comp.outputs {
                index.insert(
                    (comp.id.0, decl.id.as_str().to_owned()),
                    entries.len() as u32,
                );
                entries.push((decl.id.clone(), decl.fields.clone()));
            }
        }
        InternTable {
            entries,
            index,
            component_base,
        }
    }

    /// Number of interned streams (part of the topology fingerprint both
    /// sides verify at assign time).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the topology declares no streams (impossible for a valid
    /// topology, present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Index of `stream` as declared by `component`, if declared.
    pub fn lookup(&self, component: usize, stream: &str) -> Option<u32> {
        self.index.get(&(component, stream.to_owned())).copied()
    }

    /// The interned stream id and schema at `idx`.
    pub fn entry(&self, idx: u32) -> Option<(&crate::stream::StreamId, &Fields)> {
        self.entries.get(idx as usize).map(|(s, f)| (s, f))
    }

    /// First entry index of `component`.
    pub fn base_of(&self, component: usize) -> u32 {
        self.component_base[component]
    }

    /// Rebuilds a [`Tuple`] delivered for interned stream `idx`.
    pub fn tuple(&self, idx: u32, values: Vec<Value>) -> Result<Tuple, CodecError> {
        let (_, fields) = self
            .entry(idx)
            .ok_or(CodecError::Malformed("stream index out of range"))?;
        Ok(Tuple::with_fields(values, fields.clone()))
    }
}

// --- frames -------------------------------------------------------------

/// One tuple delivery on the coordinator → worker path.
#[derive(Debug, Clone, PartialEq)]
pub struct WireTuple {
    /// Coordinator-assigned delivery token, echoed back in the result.
    pub token: u64,
    /// Destination global task id.
    pub dest_task: u32,
    /// Interned index of the producing stream (fields schema implied).
    pub stream: u32,
    /// Spout message id for replay dedup, when the delivery is tracked.
    pub dedup: Option<u64>,
    /// Root id of the tuple tree **when the coordinator sampled it for
    /// tracing** — the sampling decision travels with the tuple so workers
    /// record hop spans for exactly the trees the coordinator traces
    /// (`trace_id = splitmix64(root)` is derived, never sent).
    pub trace_root: Option<u64>,
    /// Raw tuple values; the schema comes from the intern table.
    pub values: Vec<Value>,
}

/// One hop span on the worker → coordinator telemetry path
/// ([`Frame::SpanBatch`]).  Carries only what the worker knows: timestamps
/// are µs on the **worker's** clock (the coordinator re-bases them with the
/// clock offset estimated at the `Hello`/`Assign` handshake) and the
/// component/worker/pid/generation tags are stamped coordinator-side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSpan {
    /// [`SpanKind`](crate::telemetry::SpanKind) discriminant
    /// (0 = spout-emit, 1 = hop, 2 = ack, 3 = fail, 4 = timeout).
    pub kind: u8,
    /// Tuple-tree root id (the sampled `trace_root` the tuple carried).
    pub root: u64,
    /// Global task id that executed the tuple.
    pub task: u32,
    /// Start timestamp, µs on the worker's clock.
    pub start_us: u64,
    /// Socket-receipt → execution-start wait, µs.
    pub queue_wait_us: u64,
    /// Bolt execute time, µs.
    pub exec_us: u64,
    /// Sequence number of the tuple batch the delivery arrived in.
    pub batch_id: u64,
}

/// One metric sample on the worker → coordinator telemetry path
/// ([`Frame::MetricsPush`]).  Counters travel as **deltas** since the last
/// push (respawns restart from zero without double counting); gauges travel
/// as the current value with the f64 stored in `value` via `to_bits`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireMetric {
    /// 0 = counter delta, 1 = gauge.
    pub kind: u8,
    /// Metric family name (worker-local registries are label-free; the
    /// coordinator re-registers under `worker`/`generation` labels).
    pub name: String,
    /// Counter delta, or `f64::to_bits` of the gauge value.
    pub value: u64,
}

/// One bolt emission on the worker → coordinator path.
#[derive(Debug, Clone, PartialEq)]
pub struct WireEmission {
    /// Interned index of the emitting stream.
    pub stream: u32,
    /// Anchored to the input tuple's tree (`false` = fire-and-forget).
    pub anchored: bool,
    /// Direct-grouping destination task index, when emitted direct.
    pub direct_task: Option<u32>,
    /// Raw tuple values.
    pub values: Vec<Value>,
}

/// The outcome of executing one delivered tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct WireResult {
    /// The delivery token being answered.
    pub token: u64,
    /// The bolt failed the tuple (fails the whole tree).
    pub failed: bool,
    /// Ack withheld until a checkpoint covers this input (stateful tasks
    /// under exactly-once / at-least-once recovery); a later
    /// [`Frame::AckFlush`] releases it.
    pub deferred: bool,
    /// Emissions produced while executing the tuple.
    pub emissions: Vec<WireEmission>,
}

/// Frame tag of `TupleBatch`, exposed so the transport's batching writer
/// can encode a batch incrementally (tag, count, then items one by one as
/// they drain) without materializing a `Frame` first.
pub const TUPLE_BATCH_TAG: u8 = 3;

const T_HELLO: u8 = 1;
const T_ASSIGN: u8 = 2;
const T_TUPLE_BATCH: u8 = TUPLE_BATCH_TAG;
const T_RESULT_BATCH: u8 = 4;
const T_CREDIT_GRANT: u8 = 5;
const T_CHECKPOINT: u8 = 6;
const T_ACK_FLUSH: u8 = 7;
const T_RESTORE: u8 = 8;
const T_RESTORED: u8 = 9;
const T_FLUSH: u8 = 10;
const T_FLUSHED: u8 = 11;
const T_SHUTDOWN: u8 = 12;
const T_TICK: u8 = 13;
const T_SPAN_BATCH: u8 = 14;
const T_METRICS_PUSH: u8 = 15;
const T_LAST_WORDS: u8 = 16;

/// Every message of the wire protocol.
///
/// Direction is noted per variant; see `DESIGN.md` §15 for the protocol
/// walk-through.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Worker → coordinator, first frame on a fresh connection.
    Hello {
        /// Worker slot index (from `DSDPS_DIST_WORKER`).
        worker: u32,
        /// Worker OS process id, journaled by the coordinator.
        pid: u32,
        /// Worker clock reading (µs since the worker's span clock epoch) at
        /// the moment the frame was sent.  The coordinator estimates
        /// `offset = coordinator_now_us − clock_us` on receipt and re-bases
        /// every span the worker later ships.
        clock_us: u64,
    },
    /// Coordinator → worker: topology assignment and runtime knobs.
    Assign {
        /// Worker slot index the coordinator believes it is talking to.
        worker: u32,
        /// Registry name of the topology to build.
        topology: String,
        /// Opaque argument string passed to the registry builder.
        args: String,
        /// Global bolt task ids this worker executes.
        tasks: Vec<u32>,
        /// [`RecoveryMode`](crate::rt::RecoveryMode) discriminant.
        recovery: u8,
        /// Checkpoint interval for stateful tasks, microseconds.
        ckpt_interval_us: u64,
        /// Bolt tick interval, microseconds (0 = no ticks).
        tick_interval_us: u64,
        /// Telemetry push cadence, microseconds: the worker ships
        /// [`Frame::SpanBatch`] + [`Frame::MetricsPush`] this often.
        metrics_interval_us: u64,
        /// Topology fingerprint: total task count.
        task_count: u32,
        /// Topology fingerprint: interned stream count.
        stream_count: u32,
    },
    /// Coordinator → worker: a batch of tuple deliveries.
    TupleBatch {
        /// The deliveries, possibly for several of the worker's tasks.
        items: Vec<WireTuple>,
    },
    /// Worker → coordinator: outcomes and emissions for delivered tuples.
    ResultBatch {
        /// One result per answered token.
        items: Vec<WireResult>,
    },
    /// Worker → coordinator: receiver-driven flow-control credits for one
    /// of the worker's tasks (granted back as deliveries are processed).
    CreditGrant {
        /// Global task id whose credit pool is replenished.
        task: u32,
        /// Credits granted.
        amount: u64,
    },
    /// Worker → coordinator: a full state snapshot of one stateful task.
    /// An [`Frame::AckFlush`] for the inputs it covers follows.
    CheckpointDeposit {
        /// Global task id.
        task: u32,
        /// Encoded snapshot payload ([`crate::rt::StateSnapshot`] bytes).
        payload: Vec<u8>,
        /// Replay-dedup message ids captured with the snapshot.
        dedup: Vec<u64>,
    },
    /// Worker → coordinator: deferred input acks released by a checkpoint.
    AckFlush {
        /// Delivery tokens whose input edges may now be acked.
        tokens: Vec<u64>,
    },
    /// Coordinator → worker: restore a task's state after a respawn,
    /// before any tuple flows.
    RestoreState {
        /// Global task id.
        task: u32,
        /// Snapshot payload, or `None` when only a dedup set survives.
        payload: Option<Vec<u8>>,
        /// Replay-dedup ids captured with the snapshot.
        dedup: Vec<u64>,
    },
    /// Worker → coordinator: the restore finished.
    StateRestored {
        /// Global task id.
        task: u32,
        /// Whether decoding + restoring succeeded.
        ok: bool,
        /// Restore latency, microseconds.
        latency_us: u64,
    },
    /// Coordinator → worker: checkpoint every stateful task now and flush
    /// deferred acks (drain step of shutdown).
    Flush {
        /// Echoed in the matching [`Frame::Flushed`].
        seq: u64,
    },
    /// Worker → coordinator: the matching [`Frame::Flush`] completed.
    Flushed {
        /// The flush sequence number being answered.
        seq: u64,
    },
    /// Coordinator → worker: exit cleanly.
    Shutdown,
    /// Worker → coordinator: unanchored emissions from a bolt tick.
    TickEmissions {
        /// Global task id that ticked.
        task: u32,
        /// The emissions.
        emissions: Vec<WireEmission>,
    },
    /// Worker → coordinator: hop spans drained from the worker's local
    /// trace ring buffers, shipped on the metrics interval.
    SpanBatch {
        /// Worker slot index.
        worker: u32,
        /// Spans rejected by the worker's ring buffers since the last
        /// batch (the coordinator folds this into its dropped counter).
        dropped: u64,
        /// The spans, timestamped on the worker's clock.
        spans: Vec<WireSpan>,
    },
    /// Worker → coordinator: local registry deltas, shipped on the metrics
    /// interval and re-registered under `worker`/`generation` labels.
    MetricsPush {
        /// Worker slot index.
        worker: u32,
        /// The samples.
        samples: Vec<WireMetric>,
    },
    /// Worker → coordinator: best-effort structured last words sent while
    /// the worker is dying (panic, decode error, socket failure).  The
    /// supervisor attaches the cause to the `worker_died` journal event.
    LastWords {
        /// Worker slot index.
        worker: u32,
        /// Short machine-readable cause (`panic`, `decode_error`, `io_error`).
        cause: String,
        /// Human-readable detail (panic payload, error text).
        detail: String,
    },
}

impl Frame {
    /// Short tag name for logs and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "hello",
            Frame::Assign { .. } => "assign",
            Frame::TupleBatch { .. } => "tuple_batch",
            Frame::ResultBatch { .. } => "result_batch",
            Frame::CreditGrant { .. } => "credit_grant",
            Frame::CheckpointDeposit { .. } => "checkpoint_deposit",
            Frame::AckFlush { .. } => "ack_flush",
            Frame::RestoreState { .. } => "restore_state",
            Frame::StateRestored { .. } => "state_restored",
            Frame::Flush { .. } => "flush",
            Frame::Flushed { .. } => "flushed",
            Frame::Shutdown => "shutdown",
            Frame::TickEmissions { .. } => "tick_emissions",
            Frame::SpanBatch { .. } => "span_batch",
            Frame::MetricsPush { .. } => "metrics_push",
            Frame::LastWords { .. } => "last_words",
        }
    }
}

fn write_opt_varint(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => buf.push(0),
        Some(v) => {
            buf.push(1);
            write_varint(buf, v);
        }
    }
}

fn read_opt_varint(d: &mut Dec<'_>) -> Result<Option<u64>, CodecError> {
    match d.u8()? {
        0 => Ok(None),
        1 => Ok(Some(d.varint()?)),
        _ => Err(CodecError::Malformed("bad option tag")),
    }
}

/// Appends one [`WireTuple`] in `TupleBatch` item layout (the transport's
/// batching writer drains its queue through this).
pub fn write_tuple_item(buf: &mut Vec<u8>, item: &WireTuple) {
    write_varint(buf, item.token);
    write_varint(buf, u64::from(item.dest_task));
    write_varint(buf, u64::from(item.stream));
    write_opt_varint(buf, item.dedup);
    write_opt_varint(buf, item.trace_root);
    write_values(buf, &item.values);
}

fn write_span(buf: &mut Vec<u8>, s: &WireSpan) {
    buf.push(s.kind);
    write_varint(buf, s.root);
    write_varint(buf, u64::from(s.task));
    write_varint(buf, s.start_us);
    write_varint(buf, s.queue_wait_us);
    write_varint(buf, s.exec_us);
    write_varint(buf, s.batch_id);
}

fn read_span(d: &mut Dec<'_>) -> Result<WireSpan, CodecError> {
    let kind = d.u8()?;
    if kind > 4 {
        return Err(CodecError::Malformed("bad span kind"));
    }
    Ok(WireSpan {
        kind,
        root: d.varint()?,
        task: d.varint()? as u32,
        start_us: d.varint()?,
        queue_wait_us: d.varint()?,
        exec_us: d.varint()?,
        batch_id: d.varint()?,
    })
}

fn write_metric(buf: &mut Vec<u8>, m: &WireMetric) {
    buf.push(m.kind);
    write_str(buf, &m.name);
    write_varint(buf, m.value);
}

fn read_metric(d: &mut Dec<'_>) -> Result<WireMetric, CodecError> {
    let kind = d.u8()?;
    if kind > 1 {
        return Err(CodecError::Malformed("bad metric kind"));
    }
    Ok(WireMetric {
        kind,
        name: d.str()?.to_owned(),
        value: d.varint()?,
    })
}

fn write_emission(buf: &mut Vec<u8>, e: &WireEmission) {
    write_varint(buf, u64::from(e.stream));
    buf.push(e.anchored as u8);
    write_opt_varint(buf, e.direct_task.map(u64::from));
    write_values(buf, &e.values);
}

fn read_emission(d: &mut Dec<'_>) -> Result<WireEmission, CodecError> {
    let stream = d.varint()? as u32;
    let anchored = match d.u8()? {
        0 => false,
        1 => true,
        _ => return Err(CodecError::Malformed("bad anchored flag")),
    };
    let direct_task = read_opt_varint(d)?.map(|v| v as u32);
    let values = read_values(d)?;
    Ok(WireEmission {
        stream,
        anchored,
        direct_task,
        values,
    })
}

/// Appends the complete length-prefixed encoding of `frame` to `buf`.
///
/// The body is encoded into the tail of `buf` first and the varint length
/// spliced in front, so one reusable buffer serves the whole connection.
pub fn encode_frame(frame: &Frame, buf: &mut Vec<u8>) {
    let start = buf.len();
    encode_frame_body(frame, buf);
    let body_len = buf.len() - start;
    let mut prefix = [0u8; 10];
    let mut tmp = Vec::new();
    write_varint(&mut tmp, body_len as u64);
    prefix[..tmp.len()].copy_from_slice(&tmp);
    // Splice the prefix in front of the body.
    buf.splice(start..start, prefix[..tmp.len()].iter().copied());
}

/// Appends the frame body (tag + payload) **without** the length prefix —
/// the transport writer prefixes it when it owns the framing.
pub fn encode_frame_body(frame: &Frame, buf: &mut Vec<u8>) {
    match frame {
        Frame::Hello {
            worker,
            pid,
            clock_us,
        } => {
            buf.push(T_HELLO);
            write_varint(buf, u64::from(*worker));
            write_varint(buf, u64::from(*pid));
            write_varint(buf, *clock_us);
        }
        Frame::Assign {
            worker,
            topology,
            args,
            tasks,
            recovery,
            ckpt_interval_us,
            tick_interval_us,
            metrics_interval_us,
            task_count,
            stream_count,
        } => {
            buf.push(T_ASSIGN);
            write_varint(buf, u64::from(*worker));
            write_str(buf, topology);
            write_str(buf, args);
            write_varint(buf, tasks.len() as u64);
            for t in tasks {
                write_varint(buf, u64::from(*t));
            }
            buf.push(*recovery);
            write_varint(buf, *ckpt_interval_us);
            write_varint(buf, *tick_interval_us);
            write_varint(buf, *metrics_interval_us);
            write_varint(buf, u64::from(*task_count));
            write_varint(buf, u64::from(*stream_count));
        }
        Frame::TupleBatch { items } => {
            buf.push(T_TUPLE_BATCH);
            write_varint(buf, items.len() as u64);
            for item in items {
                write_tuple_item(buf, item);
            }
        }
        Frame::ResultBatch { items } => {
            buf.push(T_RESULT_BATCH);
            write_varint(buf, items.len() as u64);
            for item in items {
                write_varint(buf, item.token);
                buf.push(u8::from(item.failed) | (u8::from(item.deferred) << 1));
                write_varint(buf, item.emissions.len() as u64);
                for e in &item.emissions {
                    write_emission(buf, e);
                }
            }
        }
        Frame::CreditGrant { task, amount } => {
            buf.push(T_CREDIT_GRANT);
            write_varint(buf, u64::from(*task));
            write_varint(buf, *amount);
        }
        Frame::CheckpointDeposit {
            task,
            payload,
            dedup,
        } => {
            buf.push(T_CHECKPOINT);
            write_varint(buf, u64::from(*task));
            write_byte_str(buf, payload);
            write_varint(buf, dedup.len() as u64);
            for id in dedup {
                write_varint(buf, *id);
            }
        }
        Frame::AckFlush { tokens } => {
            buf.push(T_ACK_FLUSH);
            write_varint(buf, tokens.len() as u64);
            for t in tokens {
                write_varint(buf, *t);
            }
        }
        Frame::RestoreState {
            task,
            payload,
            dedup,
        } => {
            buf.push(T_RESTORE);
            write_varint(buf, u64::from(*task));
            match payload {
                None => buf.push(0),
                Some(p) => {
                    buf.push(1);
                    write_byte_str(buf, p);
                }
            }
            write_varint(buf, dedup.len() as u64);
            for id in dedup {
                write_varint(buf, *id);
            }
        }
        Frame::StateRestored {
            task,
            ok,
            latency_us,
        } => {
            buf.push(T_RESTORED);
            write_varint(buf, u64::from(*task));
            buf.push(*ok as u8);
            write_varint(buf, *latency_us);
        }
        Frame::Flush { seq } => {
            buf.push(T_FLUSH);
            write_varint(buf, *seq);
        }
        Frame::Flushed { seq } => {
            buf.push(T_FLUSHED);
            write_varint(buf, *seq);
        }
        Frame::Shutdown => buf.push(T_SHUTDOWN),
        Frame::TickEmissions { task, emissions } => {
            buf.push(T_TICK);
            write_varint(buf, u64::from(*task));
            write_varint(buf, emissions.len() as u64);
            for e in emissions {
                write_emission(buf, e);
            }
        }
        Frame::SpanBatch {
            worker,
            dropped,
            spans,
        } => {
            buf.push(T_SPAN_BATCH);
            write_varint(buf, u64::from(*worker));
            write_varint(buf, *dropped);
            write_varint(buf, spans.len() as u64);
            for s in spans {
                write_span(buf, s);
            }
        }
        Frame::MetricsPush { worker, samples } => {
            buf.push(T_METRICS_PUSH);
            write_varint(buf, u64::from(*worker));
            write_varint(buf, samples.len() as u64);
            for m in samples {
                write_metric(buf, m);
            }
        }
        Frame::LastWords {
            worker,
            cause,
            detail,
        } => {
            buf.push(T_LAST_WORDS);
            write_varint(buf, u64::from(*worker));
            write_str(buf, cause);
            write_str(buf, detail);
        }
    }
}

/// Decodes one frame body (tag + payload, no length prefix).
pub fn decode_frame(body: &[u8]) -> Result<Frame, CodecError> {
    let mut d = Dec::new(body);
    let frame = decode_frame_inner(&mut d)?;
    if !d.is_done() {
        return Err(CodecError::Malformed("trailing bytes after frame"));
    }
    Ok(frame)
}

fn decode_frame_inner(d: &mut Dec<'_>) -> Result<Frame, CodecError> {
    match d.u8()? {
        T_HELLO => Ok(Frame::Hello {
            worker: d.varint()? as u32,
            pid: d.varint()? as u32,
            clock_us: d.varint()?,
        }),
        T_ASSIGN => {
            let worker = d.varint()? as u32;
            let topology = d.str()?.to_owned();
            let args = d.str()?.to_owned();
            let n = d.count()?;
            let mut tasks = Vec::with_capacity(n);
            for _ in 0..n {
                tasks.push(d.varint()? as u32);
            }
            Ok(Frame::Assign {
                worker,
                topology,
                args,
                tasks,
                recovery: d.u8()?,
                ckpt_interval_us: d.varint()?,
                tick_interval_us: d.varint()?,
                metrics_interval_us: d.varint()?,
                task_count: d.varint()? as u32,
                stream_count: d.varint()? as u32,
            })
        }
        T_TUPLE_BATCH => {
            let n = d.count()?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(WireTuple {
                    token: d.varint()?,
                    dest_task: d.varint()? as u32,
                    stream: d.varint()? as u32,
                    dedup: read_opt_varint(d)?,
                    trace_root: read_opt_varint(d)?,
                    values: read_values(d)?,
                });
            }
            Ok(Frame::TupleBatch { items })
        }
        T_RESULT_BATCH => {
            let n = d.count()?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                let token = d.varint()?;
                let flags = d.u8()?;
                if flags > 3 {
                    return Err(CodecError::Malformed("bad result flags"));
                }
                let m = d.count()?;
                let mut emissions = Vec::with_capacity(m);
                for _ in 0..m {
                    emissions.push(read_emission(d)?);
                }
                items.push(WireResult {
                    token,
                    failed: flags & 1 != 0,
                    deferred: flags & 2 != 0,
                    emissions,
                });
            }
            Ok(Frame::ResultBatch { items })
        }
        T_CREDIT_GRANT => Ok(Frame::CreditGrant {
            task: d.varint()? as u32,
            amount: d.varint()?,
        }),
        T_CHECKPOINT => {
            let task = d.varint()? as u32;
            let payload = d.byte_str()?.to_vec();
            let n = d.count()?;
            let mut dedup = Vec::with_capacity(n);
            for _ in 0..n {
                dedup.push(d.varint()?);
            }
            Ok(Frame::CheckpointDeposit {
                task,
                payload,
                dedup,
            })
        }
        T_ACK_FLUSH => {
            let n = d.count()?;
            let mut tokens = Vec::with_capacity(n);
            for _ in 0..n {
                tokens.push(d.varint()?);
            }
            Ok(Frame::AckFlush { tokens })
        }
        T_RESTORE => {
            let task = d.varint()? as u32;
            let payload = match d.u8()? {
                0 => None,
                1 => Some(d.byte_str()?.to_vec()),
                _ => return Err(CodecError::Malformed("bad option tag")),
            };
            let n = d.count()?;
            let mut dedup = Vec::with_capacity(n);
            for _ in 0..n {
                dedup.push(d.varint()?);
            }
            Ok(Frame::RestoreState {
                task,
                payload,
                dedup,
            })
        }
        T_RESTORED => Ok(Frame::StateRestored {
            task: d.varint()? as u32,
            ok: match d.u8()? {
                0 => false,
                1 => true,
                _ => return Err(CodecError::Malformed("bad bool")),
            },
            latency_us: d.varint()?,
        }),
        T_FLUSH => Ok(Frame::Flush { seq: d.varint()? }),
        T_FLUSHED => Ok(Frame::Flushed { seq: d.varint()? }),
        T_SHUTDOWN => Ok(Frame::Shutdown),
        T_TICK => {
            let task = d.varint()? as u32;
            let n = d.count()?;
            let mut emissions = Vec::with_capacity(n);
            for _ in 0..n {
                emissions.push(read_emission(d)?);
            }
            Ok(Frame::TickEmissions { task, emissions })
        }
        T_SPAN_BATCH => {
            let worker = d.varint()? as u32;
            let dropped = d.varint()?;
            let n = d.count()?;
            let mut spans = Vec::with_capacity(n);
            for _ in 0..n {
                spans.push(read_span(d)?);
            }
            Ok(Frame::SpanBatch {
                worker,
                dropped,
                spans,
            })
        }
        T_METRICS_PUSH => {
            let worker = d.varint()? as u32;
            let n = d.count()?;
            let mut samples = Vec::with_capacity(n);
            for _ in 0..n {
                samples.push(read_metric(d)?);
            }
            Ok(Frame::MetricsPush { worker, samples })
        }
        T_LAST_WORDS => Ok(Frame::LastWords {
            worker: d.varint()? as u32,
            cause: d.str()?.to_owned(),
            detail: d.str()?.to_owned(),
        }),
        _ => Err(CodecError::Malformed("unknown frame tag")),
    }
}

// --- binary JsonValue trees (checkpoint snapshots) ----------------------

/// First payload byte of a binary-encoded snapshot.  `0xC5` is a UTF-8
/// continuation byte, so it can never begin a JSON text — decoders
/// auto-detect the format from it.
pub const SNAPSHOT_MAGIC: u8 = 0xC5;

const J_NULL: u8 = 0;
const J_FALSE: u8 = 1;
const J_TRUE: u8 = 2;
const J_I64: u8 = 3;
const J_U64: u8 = 4;
const J_F64: u8 = 5;
const J_STR: u8 = 6;
const J_ARRAY: u8 = 7;
const J_OBJECT: u8 = 8;

/// Appends the binary encoding of a workspace-serde [`serde::JsonValue`]
/// tree.  The checkpoint store uses this (prefixed with
/// [`SNAPSHOT_MAGIC`]) instead of JSON text for compact snapshots.
pub fn write_json_value(buf: &mut Vec<u8>, v: &serde::JsonValue) {
    use serde::JsonValue as J;
    match v {
        J::Null => buf.push(J_NULL),
        J::Bool(false) => buf.push(J_FALSE),
        J::Bool(true) => buf.push(J_TRUE),
        J::I64(i) => {
            buf.push(J_I64);
            write_varint(buf, zigzag(*i));
        }
        J::U64(u) => {
            buf.push(J_U64);
            write_varint(buf, *u);
        }
        J::F64(x) => {
            buf.push(J_F64);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        J::Str(s) => {
            buf.push(J_STR);
            write_str(buf, s);
        }
        J::Array(items) => {
            buf.push(J_ARRAY);
            write_varint(buf, items.len() as u64);
            for item in items {
                write_json_value(buf, item);
            }
        }
        J::Object(fields) => {
            buf.push(J_OBJECT);
            write_varint(buf, fields.len() as u64);
            for (k, val) in fields {
                write_str(buf, k);
                write_json_value(buf, val);
            }
        }
    }
}

/// Reads one binary-encoded [`serde::JsonValue`] tree.
pub fn read_json_value(d: &mut Dec<'_>) -> Result<serde::JsonValue, CodecError> {
    use serde::JsonValue as J;
    match d.u8()? {
        J_NULL => Ok(J::Null),
        J_FALSE => Ok(J::Bool(false)),
        J_TRUE => Ok(J::Bool(true)),
        J_I64 => Ok(J::I64(d.svarint()?)),
        J_U64 => Ok(J::U64(d.varint()?)),
        J_F64 => Ok(J::F64(d.f64()?)),
        J_STR => Ok(J::Str(d.str()?.to_owned())),
        J_ARRAY => {
            let n = d.count()?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(read_json_value(d)?);
            }
            Ok(J::Array(items))
        }
        J_OBJECT => {
            let n = d.count()?;
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                let k = d.str()?.to_owned();
                fields.push((k, read_json_value(d)?));
            }
            Ok(J::Object(fields))
        }
        _ => Err(CodecError::Malformed("unknown json-value tag")),
    }
}

// --- JSON shim path (microbench baseline) -------------------------------

/// The serde_json-shim encoding of the same frames, kept as the measured
/// baseline for the codec microbenchmark: this is what every cross-process
/// hop would pay if frames travelled as JSON text.
pub mod json {
    use super::*;
    use serde::JsonValue as J;

    fn value_to_json(v: &Value) -> J {
        match v {
            Value::Null => J::Null,
            Value::Bool(b) => J::Bool(*b),
            Value::I64(i) => J::I64(*i),
            Value::F64(x) => J::F64(*x),
            Value::Str(s) => J::Str(s.to_string()),
            Value::Bytes(b) => J::Array(b.iter().map(|&x| J::U64(u64::from(x))).collect()),
            Value::List(items) => J::Array(items.iter().map(value_to_json).collect()),
        }
    }

    fn value_from_json(v: &J) -> Result<Value, String> {
        Ok(match v {
            J::Null => Value::Null,
            J::Bool(b) => Value::Bool(*b),
            J::I64(i) => Value::I64(*i),
            J::U64(u) => Value::I64(*u as i64),
            J::F64(x) => Value::F64(*x),
            J::Str(s) => Value::from(s.as_str()),
            J::Array(items) => Value::List(
                items
                    .iter()
                    .map(value_from_json)
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            J::Object(_) => return Err("unexpected object in tuple value".into()),
        })
    }

    fn tuple_item_to_json(t: &WireTuple) -> J {
        J::Object(vec![
            ("token".into(), J::U64(t.token)),
            ("dest".into(), J::U64(u64::from(t.dest_task))),
            ("stream".into(), J::U64(u64::from(t.stream))),
            ("dedup".into(), t.dedup.map_or(J::Null, J::U64)),
            ("trace".into(), t.trace_root.map_or(J::Null, J::U64)),
            (
                "values".into(),
                J::Array(t.values.iter().map(value_to_json).collect()),
            ),
        ])
    }

    fn obj_get<'a>(fields: &'a [(String, J)], key: &str) -> Result<&'a J, String> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field `{key}`"))
    }

    fn as_u64(v: &J) -> Result<u64, String> {
        match v {
            J::U64(u) => Ok(*u),
            J::I64(i) if *i >= 0 => Ok(*i as u64),
            _ => Err("expected unsigned integer".into()),
        }
    }

    fn tuple_item_from_json(v: &J) -> Result<WireTuple, String> {
        let J::Object(fields) = v else {
            return Err("tuple item must be an object".into());
        };
        let values = match obj_get(fields, "values")? {
            J::Array(items) => items
                .iter()
                .map(value_from_json)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("values must be an array".into()),
        };
        Ok(WireTuple {
            token: as_u64(obj_get(fields, "token")?)?,
            dest_task: as_u64(obj_get(fields, "dest")?)? as u32,
            stream: as_u64(obj_get(fields, "stream")?)? as u32,
            dedup: match obj_get(fields, "dedup")? {
                J::Null => None,
                other => Some(as_u64(other)?),
            },
            trace_root: match obj_get(fields, "trace")? {
                J::Null => None,
                other => Some(as_u64(other)?),
            },
            values,
        })
    }

    /// Encodes a [`Frame::TupleBatch`] as JSON text through the shim.
    /// Only the tuple path is implemented — it is the hot path the
    /// microbenchmark compares; control frames are cold.
    pub fn tuple_batch_to_string(items: &[WireTuple]) -> String {
        let doc = J::Object(vec![
            ("frame".into(), J::Str("tuple_batch".into())),
            (
                "items".into(),
                J::Array(items.iter().map(tuple_item_to_json).collect()),
            ),
        ]);
        serde_json::to_string(&doc).expect("json encoding cannot fail")
    }

    /// Decodes a [`json::tuple_batch_to_string`] document back.
    pub fn tuple_batch_from_str(text: &str) -> Result<Vec<WireTuple>, String> {
        let doc = serde_json::parse(text).map_err(|e| e.to_string())?;
        let J::Object(fields) = doc else {
            return Err("document must be an object".into());
        };
        match obj_get(&fields, "items")? {
            J::Array(items) => items.iter().map(tuple_item_from_json).collect(),
            _ => Err("items must be an array".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut d = Dec::new(&buf);
            assert_eq!(d.varint().unwrap(), v);
            assert!(d.is_done());
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -64, 63, -65] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes must stay short.
        assert!(zigzag(-64) < 128);
        assert!(zigzag(63) < 128);
    }

    #[test]
    fn varint_overflow_is_an_error_not_a_panic() {
        let buf = [0xffu8; 11];
        assert!(Dec::new(&buf).varint().is_err());
        let buf = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        assert!(Dec::new(&buf).varint().is_err());
    }

    fn sample_values() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Bool(true),
            Value::from(-42i64),
            Value::from(3.5f64),
            Value::from("hello"),
            Value::Bytes(bytes::Bytes::from_static(b"\x00\x01\x02")),
            Value::List(vec![Value::from(1i64), Value::from("x")]),
        ]
    }

    #[test]
    fn value_round_trips() {
        for v in sample_values() {
            let mut buf = Vec::new();
            write_value(&mut buf, &v);
            let mut d = Dec::new(&buf);
            assert_eq!(read_value(&mut d).unwrap(), v);
            assert!(d.is_done());
        }
    }

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                worker: 2,
                pid: 4711,
                clock_us: 12_345,
            },
            Frame::Assign {
                worker: 1,
                topology: "calib".into(),
                args: "n=100".into(),
                tasks: vec![1, 3, 5],
                recovery: 0,
                ckpt_interval_us: 500_000,
                tick_interval_us: 1_000_000,
                metrics_interval_us: 250_000,
                task_count: 6,
                stream_count: 3,
            },
            Frame::TupleBatch {
                items: vec![WireTuple {
                    token: 99,
                    dest_task: 3,
                    stream: 1,
                    dedup: Some(7),
                    trace_root: Some(4242),
                    values: sample_values(),
                }],
            },
            Frame::ResultBatch {
                items: vec![WireResult {
                    token: 99,
                    failed: false,
                    deferred: true,
                    emissions: vec![WireEmission {
                        stream: 2,
                        anchored: true,
                        direct_task: Some(0),
                        values: vec![Value::from(1i64)],
                    }],
                }],
            },
            Frame::CreditGrant {
                task: 3,
                amount: 64,
            },
            Frame::CheckpointDeposit {
                task: 3,
                payload: vec![0xC5, 1, 2, 3],
                dedup: vec![7, 8, 9],
            },
            Frame::AckFlush {
                tokens: vec![99, 100],
            },
            Frame::RestoreState {
                task: 3,
                payload: Some(vec![0xC5, 1]),
                dedup: vec![7],
            },
            Frame::StateRestored {
                task: 3,
                ok: true,
                latency_us: 120,
            },
            Frame::Flush { seq: 4 },
            Frame::Flushed { seq: 4 },
            Frame::Shutdown,
            Frame::TickEmissions {
                task: 5,
                emissions: vec![WireEmission {
                    stream: 0,
                    anchored: false,
                    direct_task: None,
                    values: vec![Value::from(2.0f64)],
                }],
            },
            Frame::SpanBatch {
                worker: 1,
                dropped: 2,
                spans: vec![WireSpan {
                    kind: 1,
                    root: 4242,
                    task: 3,
                    start_us: 1_000_000,
                    queue_wait_us: 35,
                    exec_us: 12,
                    batch_id: 17,
                }],
            },
            Frame::MetricsPush {
                worker: 1,
                samples: vec![
                    WireMetric {
                        kind: 0,
                        name: "dsdps_worker_executed_total".into(),
                        value: 640,
                    },
                    WireMetric {
                        kind: 1,
                        name: "dsdps_worker_uptime_seconds".into(),
                        value: 1.5f64.to_bits(),
                    },
                ],
            },
            Frame::LastWords {
                worker: 1,
                cause: "panic".into(),
                detail: "bolt exploded at tuple 7".into(),
            },
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for frame in sample_frames() {
            let mut buf = Vec::new();
            encode_frame_body(&frame, &mut buf);
            let back = decode_frame(&buf).unwrap_or_else(|e| panic!("{}: {e}", frame.kind()));
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn length_prefixed_encoding_is_parseable() {
        let frame = Frame::CreditGrant { task: 1, amount: 2 };
        let mut buf = Vec::new();
        encode_frame(&frame, &mut buf);
        let mut d = Dec::new(&buf);
        let len = d.varint().unwrap() as usize;
        assert_eq!(len, d.remaining());
        assert_eq!(decode_frame(d.bytes(len).unwrap()).unwrap(), frame);
    }

    #[test]
    fn truncated_frames_error_instead_of_panicking() {
        for frame in sample_frames() {
            let mut buf = Vec::new();
            encode_frame_body(&frame, &mut buf);
            for cut in 0..buf.len() {
                // Every proper prefix must decode to an error, never panic.
                let _ = decode_frame(&buf[..cut]);
            }
        }
    }

    #[test]
    fn corrupted_tags_error() {
        assert!(decode_frame(&[0xfe]).is_err());
        assert!(decode_frame(&[]).is_err());
        // Element count far beyond the payload is malformed, not an OOM.
        let mut buf = vec![T_TUPLE_BATCH];
        write_varint(&mut buf, u64::MAX);
        assert!(matches!(
            decode_frame(&buf),
            Err(CodecError::Malformed(_)) | Err(CodecError::Truncated)
        ));
    }

    #[test]
    fn json_value_trees_round_trip() {
        use serde::JsonValue as J;
        let tree = J::Object(vec![
            (
                "counts".into(),
                J::Array(vec![J::I64(-3), J::U64(u64::MAX)]),
            ),
            ("name".into(), J::Str("w0".into())),
            ("f".into(), J::F64(0.25)),
            ("none".into(), J::Null),
            ("on".into(), J::Bool(true)),
        ]);
        let mut buf = Vec::new();
        write_json_value(&mut buf, &tree);
        let mut d = Dec::new(&buf);
        assert_eq!(read_json_value(&mut d).unwrap(), tree);
        assert!(d.is_done());
    }

    #[test]
    fn json_shim_path_round_trips_and_is_bigger() {
        let items = vec![
            WireTuple {
                token: 1,
                dest_task: 2,
                stream: 0,
                dedup: None,
                trace_root: None,
                values: vec![Value::from("url-17"), Value::from(17i64)],
            };
            16
        ];
        let text = json::tuple_batch_to_string(&items);
        assert_eq!(json::tuple_batch_from_str(&text).unwrap(), items);
        let mut bin = Vec::new();
        encode_frame_body(&Frame::TupleBatch { items }, &mut bin);
        assert!(
            bin.len() * 2 < text.len(),
            "binary {} vs json {} bytes",
            bin.len(),
            text.len()
        );
    }
}

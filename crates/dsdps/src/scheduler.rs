//! Task placement: tasks → worker processes → machines.
//!
//! Reproduces Storm's even scheduler: executors (one task per executor
//! here) are dealt round-robin over the worker slots, and worker slots are
//! dealt round-robin over machines, so every machine ends up with a mix of
//! components — the co-location that creates the interference the paper's
//! DRNN must predict.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::config::EngineConfig;
use crate::error::{Error, Result};
use crate::topology::{TaskId, Topology};

/// Identifier of a worker process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkerId(pub usize);

/// Identifier of a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MachineId(pub usize);

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A computed assignment of every task to a worker and every worker to a
/// machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    task_worker: Vec<WorkerId>,
    worker_machine: Vec<MachineId>,
}

impl Placement {
    /// Worker running `task`.
    pub fn worker_of(&self, task: TaskId) -> WorkerId {
        self.task_worker[task.0]
    }

    /// Machine hosting `worker`.
    pub fn machine_of(&self, worker: WorkerId) -> MachineId {
        self.worker_machine[worker.0]
    }

    /// Machine hosting `task`.
    pub fn machine_of_task(&self, task: TaskId) -> MachineId {
        self.machine_of(self.worker_of(task))
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.worker_machine.len()
    }

    /// Number of tasks placed.
    pub fn num_tasks(&self) -> usize {
        self.task_worker.len()
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.worker_machine
            .iter()
            .map(|m| m.0 + 1)
            .max()
            .unwrap_or(0)
    }

    /// Tasks assigned to `worker`.
    pub fn tasks_of_worker(&self, worker: WorkerId) -> Vec<TaskId> {
        self.task_worker
            .iter()
            .enumerate()
            .filter(|(_, w)| **w == worker)
            .map(|(t, _)| TaskId(t))
            .collect()
    }

    /// Workers hosted on `machine`.
    pub fn workers_of_machine(&self, machine: MachineId) -> Vec<WorkerId> {
        self.worker_machine
            .iter()
            .enumerate()
            .filter(|(_, m)| **m == machine)
            .map(|(w, _)| WorkerId(w))
            .collect()
    }

    /// Builds a placement from explicit assignments (tests / custom
    /// schedulers).  `task_worker[t]` is the worker of task `t`;
    /// `worker_machine[w]` the machine of worker `w`.
    pub fn from_assignments(
        task_worker: Vec<WorkerId>,
        worker_machine: Vec<MachineId>,
    ) -> Result<Self> {
        for w in &task_worker {
            if w.0 >= worker_machine.len() {
                return Err(Error::Scheduling(format!(
                    "task assigned to unknown worker {w}"
                )));
            }
        }
        Ok(Placement {
            task_worker,
            worker_machine,
        })
    }
}

/// Storm-style even (round-robin) scheduler.
pub fn even_placement(topology: &Topology, config: &EngineConfig) -> Result<Placement> {
    config.validate()?;
    let num_workers = config.num_workers();
    if topology.task_count() == 0 {
        return Err(Error::Scheduling("topology has no tasks".into()));
    }

    // Workers dealt round-robin over machines: worker w on machine w % M.
    let worker_machine: Vec<MachineId> = (0..num_workers)
        .map(|w| MachineId(w % config.num_machines))
        .collect();

    // Tasks dealt round-robin over workers, component by component, so each
    // component's tasks spread across workers (and thus machines).
    let mut task_worker = vec![WorkerId(0); topology.task_count()];
    let mut next_worker = 0usize;
    for component in topology.components() {
        for task in component.tasks() {
            task_worker[task.0] = WorkerId(next_worker % num_workers);
            next_worker += 1;
        }
    }

    Placement::from_assignments(task_worker, worker_machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Bolt, BoltOutput, Spout, SpoutOutput};
    use crate::topology::TopologyBuilder;
    use crate::tuple::Tuple;

    struct S;
    impl Spout for S {
        fn next_tuple(&mut self, _out: &mut SpoutOutput) -> bool {
            false
        }
    }
    struct B;
    impl Bolt for B {
        fn execute(&mut self, _t: &Tuple, _o: &mut BoltOutput) {}
    }

    fn topo(spouts: usize, bolts: usize) -> Topology {
        let mut b = TopologyBuilder::new("t");
        b.set_spout("s", spouts, || S).unwrap();
        b.set_bolt("b", bolts, || B)
            .unwrap()
            .shuffle_grouping("s")
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn even_spread_over_workers_and_machines() {
        let t = topo(2, 6);
        let cfg = EngineConfig::default().with_cluster(4, 2, 4);
        let p = even_placement(&t, &cfg).unwrap();
        assert_eq!(p.num_workers(), 8);
        assert_eq!(p.num_tasks(), 8);
        // 8 tasks over 8 workers: exactly one task per worker.
        for w in 0..8 {
            assert_eq!(p.tasks_of_worker(WorkerId(w)).len(), 1);
        }
        // 8 workers over 4 machines: two each.
        for m in 0..4 {
            assert_eq!(p.workers_of_machine(MachineId(m)).len(), 2);
        }
    }

    #[test]
    fn component_tasks_spread_across_machines() {
        let t = topo(1, 4);
        let cfg = EngineConfig::default().with_cluster(4, 1, 4);
        let p = even_placement(&t, &cfg).unwrap();
        let machines: std::collections::HashSet<_> =
            (1..5).map(|task| p.machine_of_task(TaskId(task))).collect();
        assert!(machines.len() >= 3, "bolt tasks should span machines");
    }

    #[test]
    fn more_tasks_than_workers_wraps_round() {
        let t = topo(2, 10);
        let cfg = EngineConfig::default().with_cluster(2, 2, 4);
        let p = even_placement(&t, &cfg).unwrap();
        let per_worker: Vec<usize> = (0..4)
            .map(|w| p.tasks_of_worker(WorkerId(w)).len())
            .collect();
        assert_eq!(per_worker.iter().sum::<usize>(), 12);
        assert!(per_worker.iter().all(|&n| n == 3));
    }

    #[test]
    fn from_assignments_rejects_unknown_worker() {
        let err = Placement::from_assignments(vec![WorkerId(5)], vec![MachineId(0)]);
        assert!(matches!(err, Err(Error::Scheduling(_))));
    }

    #[test]
    fn lookup_round_trips() {
        let p = Placement::from_assignments(
            vec![WorkerId(0), WorkerId(1), WorkerId(0)],
            vec![MachineId(0), MachineId(1)],
        )
        .unwrap();
        assert_eq!(p.worker_of(TaskId(2)), WorkerId(0));
        assert_eq!(p.machine_of_task(TaskId(1)), MachineId(1));
        assert_eq!(p.tasks_of_worker(WorkerId(0)), vec![TaskId(0), TaskId(2)]);
        assert_eq!(p.num_machines(), 2);
    }
}

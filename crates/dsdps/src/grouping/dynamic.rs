//! **Dynamic grouping** — the paper's flexible-control primitive.
//!
//! A dynamic grouping distributes tuples over the subscriber's tasks
//! according to a [`SplitRatio`] that can be replaced **while the topology
//! runs** through a shared [`DynamicGroupingHandle`].  The control framework
//! uses this to redirect tuples away from (predicted) misbehaving workers by
//! setting that worker's task weights to zero.
//!
//! ## Selection algorithm
//!
//! Each router uses *smooth weighted round-robin* (the algorithm nginx uses
//! for weighted upstreams): per task keep a credit; every tuple add each
//! task's weight to its credit, send to the task with the largest credit and
//! subtract the total weight from it.  This is deterministic, O(n) per
//! tuple for small n, and the realized split over any window of `W` tuples
//! deviates from the commanded ratio by at most `n/W` — far tighter than
//! random sampling, which matters for the paper's "dynamic grouping works as
//! expected" experiment (fig-dg-track).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::tuple::Tuple;

use super::Grouping;

/// A normalized split-ratio vector: one non-negative weight per subscriber
/// task, summing to 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitRatio {
    weights: Vec<f64>,
}

impl SplitRatio {
    /// Builds a ratio from raw weights, normalizing them to sum to 1.
    ///
    /// Errors if the vector is empty, any weight is negative or non-finite,
    /// or all weights are zero.
    pub fn new(weights: Vec<f64>) -> Result<Self> {
        if weights.is_empty() {
            return Err(Error::InvalidSplitRatio("empty weight vector".into()));
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(Error::InvalidSplitRatio(
                "weights must be finite and non-negative".into(),
            ));
        }
        let sum: f64 = weights.iter().sum();
        if sum <= 0.0 {
            return Err(Error::InvalidSplitRatio("all weights are zero".into()));
        }
        Ok(SplitRatio {
            weights: weights.into_iter().map(|w| w / sum).collect(),
        })
    }

    /// Uniform ratio over `n` tasks.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "cannot split over zero tasks");
        SplitRatio {
            weights: vec![1.0 / n as f64; n],
        }
    }

    /// A copy with task `idx`'s weight forced to zero (renormalized).
    ///
    /// Errors if `idx` is out of range or it was the only non-zero task.
    pub fn excluding(&self, idx: usize) -> Result<Self> {
        if idx >= self.weights.len() {
            return Err(Error::InvalidSplitRatio(format!(
                "task index {idx} out of range ({} tasks)",
                self.weights.len()
            )));
        }
        let mut w = self.weights.clone();
        w[idx] = 0.0;
        SplitRatio::new(w)
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True if there are no entries (never constructible; kept for API
    /// symmetry with `len`).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Weight of task `idx`.
    pub fn get(&self, idx: usize) -> f64 {
        self.weights[idx]
    }

    /// The normalized weights.
    pub fn as_slice(&self) -> &[f64] {
        &self.weights
    }

    /// Indices whose weight is exactly zero (bypassed tasks).
    pub fn zeroed_tasks(&self) -> Vec<usize> {
        self.weights
            .iter()
            .enumerate()
            .filter(|(_, w)| **w == 0.0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Largest absolute difference to another ratio (L∞), used by tests and
    /// the ratio-tracking experiment.
    pub fn max_abs_diff(&self, other: &SplitRatio) -> f64 {
        assert_eq!(self.len(), other.len());
        self.weights
            .iter()
            .zip(&other.weights)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

#[derive(Debug)]
struct HandleInner {
    ratio: RwLock<SplitRatio>,
    version: AtomicU64,
}

/// Shared, cloneable handle to a dynamic grouping edge.
///
/// The controller side calls [`set_ratio`](Self::set_ratio); every router
/// instance created from the same handle observes the change before routing
/// its next tuple.  Updates are atomic: a router never sees a half-written
/// ratio.
#[derive(Debug, Clone)]
pub struct DynamicGroupingHandle {
    inner: Arc<HandleInner>,
}

impl DynamicGroupingHandle {
    /// Creates a handle with an initial ratio.
    pub fn new(initial: SplitRatio) -> Self {
        DynamicGroupingHandle {
            inner: Arc::new(HandleInner {
                ratio: RwLock::new(initial),
                version: AtomicU64::new(0),
            }),
        }
    }

    /// Replaces the split ratio.  Errors if the arity differs from the
    /// current ratio (task count of an edge never changes at runtime).
    pub fn set_ratio(&self, ratio: SplitRatio) -> Result<()> {
        let mut guard = self.inner.ratio.write();
        if ratio.len() != guard.len() {
            return Err(Error::InvalidSplitRatio(format!(
                "expected {} weights, got {}",
                guard.len(),
                ratio.len()
            )));
        }
        *guard = ratio;
        self.inner.version.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// Current ratio (snapshot).
    pub fn ratio(&self) -> SplitRatio {
        self.inner.ratio.read().clone()
    }

    /// Monotone counter incremented on every `set_ratio`.
    pub fn version(&self) -> u64 {
        self.inner.version.load(Ordering::Acquire)
    }
}

/// Router state for one producer task on a dynamic edge.
#[derive(Debug)]
pub struct DynamicGrouping {
    handle: DynamicGroupingHandle,
    /// Locally cached weights, refreshed when `seen_version` falls behind.
    weights: Vec<f64>,
    credits: Vec<f64>,
    seen_version: u64,
}

impl DynamicGrouping {
    /// Creates a router bound to the edge's shared handle.
    pub fn new(handle: DynamicGroupingHandle) -> Self {
        let ratio = handle.ratio();
        let n = ratio.len();
        DynamicGrouping {
            seen_version: handle.version(),
            weights: ratio.weights,
            credits: vec![0.0; n],
            handle,
        }
    }

    fn refresh_if_stale(&mut self) {
        let v = self.handle.version();
        if v != self.seen_version {
            let ratio = self.handle.ratio();
            self.weights = ratio.weights;
            // Reset credits so the new ratio takes effect immediately rather
            // than paying off debt accumulated under the old ratio.
            self.credits.iter_mut().for_each(|c| *c = 0.0);
            self.seen_version = v;
        }
    }

    /// Smooth weighted round-robin step.
    fn pick(&mut self) -> usize {
        let mut best = 0usize;
        let mut best_credit = f64::NEG_INFINITY;
        for (i, (c, w)) in self.credits.iter_mut().zip(&self.weights).enumerate() {
            *c += *w;
            // Strictly-greater keeps ties deterministic (lowest index wins);
            // zero-weight tasks never accumulate credit and are never picked.
            if *w > 0.0 && *c > best_credit {
                best_credit = *c;
                best = i;
            }
        }
        // Weights are normalized to sum 1, so subtract 1 from the winner.
        self.credits[best] -= 1.0;
        best
    }
}

impl Grouping for DynamicGrouping {
    fn select(&mut self, _tuple: &Tuple, out: &mut Vec<usize>) {
        self.refresh_if_stale();
        out.push(self.pick());
    }

    fn fan_out(&self) -> usize {
        self.weights.len()
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // task indices are part of the assertions
mod tests {
    use super::*;
    use crate::tuple::Value;

    fn t() -> Tuple {
        Tuple::of([Value::from(1i64)])
    }

    fn route_n(g: &mut DynamicGrouping, n: usize) -> Vec<usize> {
        let tup = t();
        let mut out = Vec::new();
        (0..n)
            .map(|_| {
                out.clear();
                g.select(&tup, &mut out);
                out[0]
            })
            .collect()
    }

    fn counts(picks: &[usize], n: usize) -> Vec<usize> {
        let mut c = vec![0usize; n];
        for &p in picks {
            c[p] += 1;
        }
        c
    }

    #[test]
    fn ratio_normalizes() {
        let r = SplitRatio::new(vec![2.0, 2.0, 4.0]).unwrap();
        assert_eq!(r.as_slice(), &[0.25, 0.25, 0.5]);
    }

    #[test]
    fn ratio_rejects_bad_input() {
        assert!(SplitRatio::new(vec![]).is_err());
        assert!(SplitRatio::new(vec![-1.0, 2.0]).is_err());
        assert!(SplitRatio::new(vec![0.0, 0.0]).is_err());
        assert!(SplitRatio::new(vec![f64::NAN, 1.0]).is_err());
        assert!(SplitRatio::new(vec![f64::INFINITY, 1.0]).is_err());
    }

    #[test]
    fn excluding_zeroes_and_renormalizes() {
        let r = SplitRatio::uniform(4);
        let e = r.excluding(2).unwrap();
        assert_eq!(e.get(2), 0.0);
        assert!((e.get(0) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(e.zeroed_tasks(), vec![2]);
        assert!(r.excluding(9).is_err());
        let solo = SplitRatio::new(vec![1.0]).unwrap();
        assert!(solo.excluding(0).is_err(), "cannot zero the only task");
    }

    #[test]
    fn uniform_split_is_exact() {
        let h = DynamicGroupingHandle::new(SplitRatio::uniform(4));
        let mut g = DynamicGrouping::new(h);
        let picks = route_n(&mut g, 400);
        assert_eq!(counts(&picks, 4), vec![100, 100, 100, 100]);
    }

    #[test]
    fn skewed_split_tracks_ratio_tightly() {
        let ratio = SplitRatio::new(vec![0.5, 0.3, 0.15, 0.05]).unwrap();
        let h = DynamicGroupingHandle::new(ratio.clone());
        let mut g = DynamicGrouping::new(h);
        let n = 10_000;
        let picks = route_n(&mut g, n);
        let c = counts(&picks, 4);
        for i in 0..4 {
            let observed = c[i] as f64 / n as f64;
            assert!(
                (observed - ratio.get(i)).abs() < 0.001,
                "task {i}: observed {observed} vs commanded {}",
                ratio.get(i)
            );
        }
    }

    #[test]
    fn zero_weight_task_receives_nothing() {
        let ratio = SplitRatio::new(vec![1.0, 0.0, 1.0]).unwrap();
        let h = DynamicGroupingHandle::new(ratio);
        let mut g = DynamicGrouping::new(h);
        let picks = route_n(&mut g, 1000);
        assert!(picks.iter().all(|&p| p != 1));
        let c = counts(&picks, 3);
        assert_eq!(c[0], 500);
        assert_eq!(c[2], 500);
    }

    #[test]
    fn on_the_fly_update_takes_effect_immediately() {
        let h = DynamicGroupingHandle::new(SplitRatio::uniform(2));
        let mut g = DynamicGrouping::new(h.clone());
        route_n(&mut g, 100);
        h.set_ratio(SplitRatio::new(vec![1.0, 0.0]).unwrap())
            .unwrap();
        let picks = route_n(&mut g, 100);
        assert!(
            picks.iter().all(|&p| p == 0),
            "all tuples rerouted to task 0"
        );
        assert_eq!(h.version(), 1);
    }

    #[test]
    fn set_ratio_rejects_arity_change() {
        let h = DynamicGroupingHandle::new(SplitRatio::uniform(3));
        assert!(h.set_ratio(SplitRatio::uniform(2)).is_err());
        assert_eq!(h.version(), 0, "failed update must not bump the version");
    }

    #[test]
    fn multiple_routers_share_one_handle() {
        let h = DynamicGroupingHandle::new(SplitRatio::uniform(2));
        let mut g1 = DynamicGrouping::new(h.clone());
        let mut g2 = DynamicGrouping::new(h.clone());
        h.set_ratio(SplitRatio::new(vec![0.0, 1.0]).unwrap())
            .unwrap();
        assert!(route_n(&mut g1, 10).iter().all(|&p| p == 1));
        assert!(route_n(&mut g2, 10).iter().all(|&p| p == 1));
    }

    #[test]
    fn swrr_short_window_deviation_is_bounded() {
        // Over any prefix of length W the realized counts deviate from the
        // commanded ratio by at most n tuples (smooth WRR property).
        let ratio = SplitRatio::new(vec![0.7, 0.2, 0.1]).unwrap();
        let h = DynamicGroupingHandle::new(ratio.clone());
        let mut g = DynamicGrouping::new(h);
        let picks = route_n(&mut g, 300);
        for w in [10usize, 30, 100, 300] {
            let c = counts(&picks[..w], 3);
            for i in 0..3 {
                let expected = ratio.get(i) * w as f64;
                assert!(
                    (c[i] as f64 - expected).abs() <= 3.0,
                    "window {w}, task {i}: {} vs {expected}",
                    c[i]
                );
            }
        }
    }

    #[test]
    fn max_abs_diff() {
        let a = SplitRatio::uniform(2);
        let b = SplitRatio::new(vec![0.9, 0.1]).unwrap();
        assert!((a.max_abs_diff(&b) - 0.4).abs() < 1e-12);
    }
}

//! Partial Key Grouping (PKG) — "the power of both choices" (Nasir et al.,
//! ICDE 2015), the load-balancing strategy most closely related to the
//! paper's dynamic grouping.
//!
//! Each key hashes to *two* candidate tasks (two independent hash
//! functions); every tuple goes to whichever candidate has received fewer
//! tuples so far.  Key-splitting bounds the imbalance of skewed (Zipf)
//! streams while keeping each key on at most two tasks — a static
//! alternative to dynamic grouping that cannot, however, bypass a
//! misbehaving worker (its candidates are fixed by the hash).  The
//! evaluation uses it as a contrast point.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use crate::tuple::{Fields, Tuple};

use super::Grouping;

/// Partial key grouping router.
#[derive(Debug)]
pub struct PartialKeyGrouping {
    n_tasks: usize,
    field_indices: Vec<usize>,
    /// Tuples sent to each task so far (the "local load" estimate).
    sent: Vec<u64>,
}

impl PartialKeyGrouping {
    /// Resolves `fields` against the stream `schema`; `None` if any field
    /// is missing.
    pub fn new(n_tasks: usize, fields: &[String], schema: &Fields) -> Option<Self> {
        assert!(n_tasks > 0);
        let field_indices = fields
            .iter()
            .map(|f| schema.index_of(f))
            .collect::<Option<Vec<_>>>()?;
        Some(PartialKeyGrouping {
            n_tasks,
            field_indices,
            sent: vec![0; n_tasks],
        })
    }

    /// The two candidate tasks of a tuple's key.
    pub fn candidates(&self, tuple: &Tuple) -> (usize, usize) {
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        // Independent functions: salt the second hasher.
        0xC0FFEEu64.hash(&mut h2);
        for &i in &self.field_indices {
            tuple.values()[i].hash(&mut h1);
            tuple.values()[i].hash(&mut h2);
        }
        let a = (h1.finish() % self.n_tasks as u64) as usize;
        let b = (h2.finish() % self.n_tasks as u64) as usize;
        (a, b)
    }

    /// Tuples routed to each task so far.
    pub fn load(&self) -> &[u64] {
        &self.sent
    }
}

impl Grouping for PartialKeyGrouping {
    fn select(&mut self, tuple: &Tuple, out: &mut Vec<usize>) {
        let (a, b) = self.candidates(tuple);
        let pick = if self.sent[a] <= self.sent[b] { a } else { b };
        self.sent[pick] += 1;
        out.push(pick);
    }

    fn fan_out(&self) -> usize {
        self.n_tasks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Value;

    fn tup(key: &str) -> Tuple {
        Tuple::with_fields([Value::from(key)], Fields::new(["k"]))
    }

    fn route(g: &mut PartialKeyGrouping, key: &str) -> usize {
        let mut out = Vec::new();
        g.select(&tup(key), &mut out);
        out[0]
    }

    #[test]
    fn key_always_lands_on_one_of_two_candidates() {
        let schema = Fields::new(["k"]);
        let mut g = PartialKeyGrouping::new(8, &["k".into()], &schema).unwrap();
        for key in ["alpha", "beta", "gamma", "delta"] {
            let (a, b) = g.candidates(&tup(key));
            for _ in 0..50 {
                let pick = route(&mut g, key);
                assert!(
                    pick == a || pick == b,
                    "{key} went to {pick}, candidates ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn zipf_skew_is_balanced_better_than_fields_grouping() {
        // A heavy-hitter key takes 50 % of the stream: fields grouping puts
        // it all on one task; PKG splits it across its two candidates.
        let schema = Fields::new(["k"]);
        let mut pkg = PartialKeyGrouping::new(4, &["k".into()], &schema).unwrap();
        let mut counts = vec![0u64; 4];
        for i in 0..10_000 {
            let key = if i % 2 == 0 {
                "heavy".to_string()
            } else {
                format!("k{}", i % 97)
            };
            let mut out = Vec::new();
            pkg.select(&tup(&key), &mut out);
            counts[out[0]] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let mean = 10_000.0 / 4.0;
        assert!(
            max < mean * 1.35,
            "PKG imbalance too high: {counts:?} (max/mean {:.2})",
            max / mean
        );
    }

    #[test]
    fn load_tracking_counts_everything() {
        let schema = Fields::new(["k"]);
        let mut g = PartialKeyGrouping::new(3, &["k".into()], &schema).unwrap();
        for i in 0..500 {
            route(&mut g, &format!("k{i}"));
        }
        assert_eq!(g.load().iter().sum::<u64>(), 500);
        assert_eq!(g.fan_out(), 3);
    }

    #[test]
    fn missing_field_is_none() {
        let schema = Fields::new(["k"]);
        assert!(PartialKeyGrouping::new(2, &["missing".into()], &schema).is_none());
    }

    #[test]
    fn single_task_degenerates_gracefully() {
        let schema = Fields::new(["k"]);
        let mut g = PartialKeyGrouping::new(1, &["k".into()], &schema).unwrap();
        for i in 0..20 {
            assert_eq!(route(&mut g, &format!("k{i}")), 0);
        }
    }
}

//! Stream groupings: how a producer's tuples are distributed over the tasks
//! of a subscribing component.
//!
//! The classic Storm groupings (shuffle, fields, global, all, direct) are
//! implemented here; the paper's contribution, **dynamic grouping**, lives in
//! [`dynamic`].
//!
//! A [`GroupingSpec`] is the declarative form stored in the topology; the
//! runtime instantiates a [`Grouping`] router per producer-task × edge via
//! [`make_grouping`].

pub mod dynamic;
pub mod partial_key;

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use crate::tuple::{Fields, Tuple};
use dynamic::{DynamicGrouping, DynamicGroupingHandle, SplitRatio};

/// Declarative grouping choice attached to a subscription.
#[derive(Debug, Clone)]
pub enum GroupingSpec {
    /// Balanced distribution over subscriber tasks (round-robin).
    Shuffle,
    /// Hash partitioning on the listed fields: equal keys always reach the
    /// same task.
    Fields(Vec<String>),
    /// All tuples to the subscriber's first task.
    Global,
    /// Replicate every tuple to every subscriber task.
    All,
    /// Producer picks the target task explicitly per emission.
    Direct,
    /// Partial key grouping: each key hashes to two candidates, tuples go
    /// to the less-loaded one (bounds skew without losing key locality).
    PartialKey(Vec<String>),
    /// The paper's dynamic grouping: split by a live-updatable ratio vector.
    /// `None` starts uniform.
    Dynamic(Option<SplitRatio>),
}

impl GroupingSpec {
    /// Short human-readable name (used in metrics and experiment output).
    pub fn kind_name(&self) -> &'static str {
        match self {
            GroupingSpec::Shuffle => "shuffle",
            GroupingSpec::Fields(_) => "fields",
            GroupingSpec::Global => "global",
            GroupingSpec::All => "all",
            GroupingSpec::Direct => "direct",
            GroupingSpec::PartialKey(_) => "partial-key",
            GroupingSpec::Dynamic(_) => "dynamic",
        }
    }
}

/// A runtime router deciding which subscriber task(s) receive each tuple.
///
/// Implementations push **subscriber-local task indices** (`0..n_tasks`)
/// into `out`; the runtime maps them to global task ids.  `out` is reused
/// across calls to avoid per-tuple allocation.
pub trait Grouping: Send {
    /// Chooses target task indices for `tuple`.
    fn select(&mut self, tuple: &Tuple, out: &mut Vec<usize>);

    /// Number of subscriber tasks this grouping routes over.
    fn fan_out(&self) -> usize;
}

/// Round-robin shuffle grouping.
///
/// Storm's shuffle grouping randomizes; round-robin achieves the same
/// balance deterministically, which matters for reproducible experiments.
/// Distinct producer tasks start at different offsets so the aggregate is
/// not phase-locked.
#[derive(Debug)]
pub struct ShuffleGrouping {
    n_tasks: usize,
    next: usize,
}

impl ShuffleGrouping {
    /// Creates a shuffle router over `n_tasks` tasks, starting at `offset`.
    pub fn new(n_tasks: usize, offset: usize) -> Self {
        assert!(n_tasks > 0);
        ShuffleGrouping {
            n_tasks,
            next: offset % n_tasks,
        }
    }
}

impl Grouping for ShuffleGrouping {
    fn select(&mut self, _tuple: &Tuple, out: &mut Vec<usize>) {
        out.push(self.next);
        self.next = (self.next + 1) % self.n_tasks;
    }

    fn fan_out(&self) -> usize {
        self.n_tasks
    }
}

/// Hash partitioning on a subset of fields.
#[derive(Debug)]
pub struct FieldsGrouping {
    n_tasks: usize,
    /// Indices of the grouping fields within the stream schema.
    field_indices: Vec<usize>,
}

impl FieldsGrouping {
    /// Resolves `fields` against the stream `schema`.
    ///
    /// Returns `None` if any field is missing (the topology builder already
    /// validates this; the check here guards direct construction).
    pub fn new(n_tasks: usize, fields: &[String], schema: &Fields) -> Option<Self> {
        assert!(n_tasks > 0);
        let field_indices = fields
            .iter()
            .map(|f| schema.index_of(f))
            .collect::<Option<Vec<_>>>()?;
        Some(FieldsGrouping {
            n_tasks,
            field_indices,
        })
    }

    /// Hash of the grouping-key values of `tuple`.
    pub fn key_hash(&self, tuple: &Tuple) -> u64 {
        let mut h = DefaultHasher::new();
        for &i in &self.field_indices {
            tuple.values()[i].hash(&mut h);
        }
        h.finish()
    }
}

impl Grouping for FieldsGrouping {
    fn select(&mut self, tuple: &Tuple, out: &mut Vec<usize>) {
        out.push((self.key_hash(tuple) % self.n_tasks as u64) as usize);
    }

    fn fan_out(&self) -> usize {
        self.n_tasks
    }
}

/// Everything to task 0.
#[derive(Debug)]
pub struct GlobalGrouping {
    n_tasks: usize,
}

impl GlobalGrouping {
    /// Creates a global router over `n_tasks` tasks.
    pub fn new(n_tasks: usize) -> Self {
        assert!(n_tasks > 0);
        GlobalGrouping { n_tasks }
    }
}

impl Grouping for GlobalGrouping {
    fn select(&mut self, _tuple: &Tuple, out: &mut Vec<usize>) {
        out.push(0);
    }

    fn fan_out(&self) -> usize {
        self.n_tasks
    }
}

/// Replicate to every task.
#[derive(Debug)]
pub struct AllGrouping {
    n_tasks: usize,
}

impl AllGrouping {
    /// Creates a replicate-to-all router over `n_tasks` tasks.
    pub fn new(n_tasks: usize) -> Self {
        assert!(n_tasks > 0);
        AllGrouping { n_tasks }
    }
}

impl Grouping for AllGrouping {
    fn select(&mut self, _tuple: &Tuple, out: &mut Vec<usize>) {
        out.extend(0..self.n_tasks);
    }

    fn fan_out(&self) -> usize {
        self.n_tasks
    }
}

/// Direct grouping: the router never chooses; the emission's
/// `direct_task` does.  `select` therefore returns nothing.
#[derive(Debug)]
pub struct DirectGrouping {
    n_tasks: usize,
}

impl Grouping for DirectGrouping {
    fn select(&mut self, _tuple: &Tuple, _out: &mut Vec<usize>) {}

    fn fan_out(&self) -> usize {
        self.n_tasks
    }
}

/// Instantiates the runtime router for a grouping spec.
///
/// * `n_tasks` — subscriber task count.
/// * `schema` — the producer stream's schema (for fields grouping).
/// * `producer_offset` — producer task index, used to de-phase round-robin
///   shuffles across producer tasks.
/// * `handle` — the shared dynamic-grouping handle for this edge, required
///   iff the spec is [`GroupingSpec::Dynamic`].
pub fn make_grouping(
    spec: &GroupingSpec,
    n_tasks: usize,
    schema: &Fields,
    producer_offset: usize,
    handle: Option<DynamicGroupingHandle>,
) -> Box<dyn Grouping> {
    match spec {
        GroupingSpec::Shuffle => Box::new(ShuffleGrouping::new(n_tasks, producer_offset)),
        GroupingSpec::Fields(fields) => Box::new(
            FieldsGrouping::new(n_tasks, fields, schema)
                .expect("fields validated at topology build time"),
        ),
        GroupingSpec::Global => Box::new(GlobalGrouping { n_tasks }),
        GroupingSpec::All => Box::new(AllGrouping { n_tasks }),
        GroupingSpec::Direct => Box::new(DirectGrouping { n_tasks }),
        GroupingSpec::PartialKey(fields) => Box::new(
            partial_key::PartialKeyGrouping::new(n_tasks, fields, schema)
                .expect("fields validated at topology build time"),
        ),
        GroupingSpec::Dynamic(_) => {
            let handle = handle.expect("dynamic grouping requires the edge's shared handle");
            assert_eq!(handle.ratio().len(), n_tasks, "ratio arity mismatch");
            Box::new(DynamicGrouping::new(handle))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Value;

    fn tup(key: &str) -> Tuple {
        Tuple::with_fields(
            [Value::from(key), Value::from(1i64)],
            Fields::new(["url", "count"]),
        )
    }

    fn run(g: &mut dyn Grouping, tuples: &[Tuple]) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        tuples
            .iter()
            .map(|t| {
                out.clear();
                g.select(t, &mut out);
                out.clone()
            })
            .collect()
    }

    #[test]
    fn shuffle_is_balanced_round_robin() {
        let mut g = ShuffleGrouping::new(4, 0);
        let tuples: Vec<_> = (0..40).map(|i| tup(&format!("k{i}"))).collect();
        let picks = run(&mut g, &tuples);
        let mut counts = [0usize; 4];
        for p in &picks {
            assert_eq!(p.len(), 1);
            counts[p[0]] += 1;
        }
        assert_eq!(counts, [10, 10, 10, 10]);
    }

    #[test]
    fn shuffle_offset_dephases_producers() {
        let mut a = ShuffleGrouping::new(3, 0);
        let mut b = ShuffleGrouping::new(3, 1);
        let t = tup("x");
        let mut out = Vec::new();
        a.select(&t, &mut out);
        let first_a = out[0];
        out.clear();
        b.select(&t, &mut out);
        assert_ne!(first_a, out[0]);
    }

    #[test]
    fn fields_grouping_is_consistent_per_key() {
        let schema = Fields::new(["url", "count"]);
        let mut g = FieldsGrouping::new(5, &["url".into()], &schema).unwrap();
        for key in ["a", "b", "c", "longer-url"] {
            let picks = run(&mut g, &[tup(key), tup(key), tup(key)]);
            assert_eq!(picks[0], picks[1]);
            assert_eq!(picks[1], picks[2]);
        }
    }

    #[test]
    fn fields_grouping_spreads_keys() {
        let schema = Fields::new(["url", "count"]);
        let mut g = FieldsGrouping::new(8, &["url".into()], &schema).unwrap();
        let tuples: Vec<_> = (0..256).map(|i| tup(&format!("url-{i}"))).collect();
        let picks = run(&mut g, &tuples);
        let mut seen = std::collections::HashSet::new();
        for p in picks {
            seen.insert(p[0]);
        }
        assert!(
            seen.len() >= 6,
            "256 keys should hit most of 8 tasks, hit {}",
            seen.len()
        );
    }

    #[test]
    fn fields_grouping_missing_field_is_none() {
        let schema = Fields::new(["url"]);
        assert!(FieldsGrouping::new(2, &["nope".into()], &schema).is_none());
    }

    #[test]
    fn global_always_task_zero() {
        let mut g = GlobalGrouping { n_tasks: 7 };
        for p in run(&mut g, &[tup("a"), tup("b")]) {
            assert_eq!(p, vec![0]);
        }
    }

    #[test]
    fn all_replicates() {
        let mut g = AllGrouping { n_tasks: 3 };
        let picks = run(&mut g, &[tup("a")]);
        assert_eq!(picks[0], vec![0, 1, 2]);
    }

    #[test]
    fn direct_selects_nothing() {
        let mut g = DirectGrouping { n_tasks: 3 };
        let picks = run(&mut g, &[tup("a")]);
        assert!(picks[0].is_empty());
    }

    #[test]
    fn factory_builds_each_kind() {
        let schema = Fields::new(["url"]);
        let specs = [
            GroupingSpec::Shuffle,
            GroupingSpec::Fields(vec!["url".into()]),
            GroupingSpec::Global,
            GroupingSpec::All,
            GroupingSpec::Direct,
        ];
        for spec in &specs {
            let g = make_grouping(spec, 3, &schema, 0, None);
            assert_eq!(g.fan_out(), 3);
        }
        let h = DynamicGroupingHandle::new(SplitRatio::uniform(3));
        let g = make_grouping(&GroupingSpec::Dynamic(None), 3, &schema, 0, Some(h));
        assert_eq!(g.fan_out(), 3);
    }

    #[test]
    fn kind_names() {
        assert_eq!(GroupingSpec::Shuffle.kind_name(), "shuffle");
        assert_eq!(GroupingSpec::Dynamic(None).kind_name(), "dynamic");
        assert_eq!(GroupingSpec::Fields(vec![]).kind_name(), "fields");
    }
}

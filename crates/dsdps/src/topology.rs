//! Topology construction: spouts, bolts, streams, subscriptions.
//!
//! Mirrors Storm's `TopologyBuilder` API: declare components with a
//! parallelism hint, declare their output streams, and subscribe bolts to
//! upstream streams with a grouping.  [`TopologyBuilder::build`] validates
//! the graph (components exist, streams exist, fields-grouping fields are in
//! the stream schema, every bolt has an input, at least one spout) and
//! assigns global task ids.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::component::{Bolt, Spout};
use crate::error::{Error, Result};
use crate::grouping::dynamic::{DynamicGroupingHandle, SplitRatio};
use crate::grouping::GroupingSpec;
use crate::stream::{StreamDecl, StreamId};
use crate::tuple::Fields;

/// Index of a component within its topology.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct ComponentId(pub usize);

/// Global task index (unique across all components of a topology).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct TaskId(pub usize);

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Factory producing a fresh spout instance for each task.
pub type SpoutFactory = Arc<dyn Fn() -> Box<dyn Spout> + Send + Sync>;
/// Factory producing a fresh bolt instance for each task.
pub type BoltFactory = Arc<dyn Fn() -> Box<dyn Bolt> + Send + Sync>;

/// What kind of component this is, with its instance factory.
#[derive(Clone)]
pub enum ComponentKind {
    /// A stream source.
    Spout(SpoutFactory),
    /// A stream operator.
    Bolt(BoltFactory),
}

impl fmt::Debug for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComponentKind::Spout(_) => write!(f, "Spout"),
            ComponentKind::Bolt(_) => write!(f, "Bolt"),
        }
    }
}

/// Per-component cost parameters consumed by the simulated runtime.
///
/// The threaded runtime executes real code and ignores these.  In the
/// simulator the time to process one tuple is
/// `base_service_time_us * interference_multiplier * (1 + jitter)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Mean tuple service time in microseconds on an unloaded machine.
    pub base_service_time_us: f64,
    /// Relative (uniform) jitter applied per tuple, e.g. `0.1` = ±10 %.
    pub jitter: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            base_service_time_us: 100.0,
            jitter: 0.05,
        }
    }
}

/// A subscription of a bolt to an upstream stream.
#[derive(Debug, Clone)]
pub struct Subscription {
    /// The upstream component.
    pub from: ComponentId,
    /// The stream of that component.
    pub stream: StreamId,
    /// How tuples are distributed over the subscriber's tasks.
    pub grouping: GroupingSpec,
}

/// A declared component (spout or bolt) inside a [`Topology`].
#[derive(Debug, Clone)]
pub struct Component {
    /// Component id (stable index).
    pub id: ComponentId,
    /// User-facing name.
    pub name: String,
    /// Spout or bolt, with the instance factory.
    pub kind: ComponentKind,
    /// Number of tasks.
    pub parallelism: usize,
    /// Declared output streams.
    pub outputs: Vec<StreamDecl>,
    /// Inbound subscriptions (bolts only).
    pub subscriptions: Vec<Subscription>,
    /// First global task id; tasks are `base_task.0 .. base_task.0 + parallelism`.
    pub base_task: TaskId,
    /// Simulator cost model.
    pub cost: CostModel,
}

impl Component {
    /// Global task ids of this component.
    pub fn tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        (self.base_task.0..self.base_task.0 + self.parallelism).map(TaskId)
    }

    /// True if this component is a spout.
    pub fn is_spout(&self) -> bool {
        matches!(self.kind, ComponentKind::Spout(_))
    }

    /// Schema of the given output stream, if declared.
    pub fn stream_fields(&self, stream: &StreamId) -> Option<&Fields> {
        self.outputs
            .iter()
            .find(|d| &d.id == stream)
            .map(|d| &d.fields)
    }
}

/// A validated, immutable topology ready to hand to a runtime.
#[derive(Debug, Clone)]
pub struct Topology {
    name: String,
    components: Vec<Component>,
    by_name: HashMap<String, ComponentId>,
    task_count: usize,
    /// Handles for every dynamic grouping in the topology, keyed by
    /// `(producer name, stream, subscriber name)`.
    dynamic_handles: HashMap<(String, StreamId, String), DynamicGroupingHandle>,
}

impl Topology {
    /// The topology's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Iterates all components in declaration order.
    pub fn components(&self) -> impl Iterator<Item = &Component> {
        self.components.iter()
    }

    /// Looks up a component by id.
    pub fn component(&self, id: ComponentId) -> &Component {
        &self.components[id.0]
    }

    /// Looks up a component id by name.
    pub fn component_id(&self, name: &str) -> Option<ComponentId> {
        self.by_name.get(name).copied()
    }

    /// Looks up a component by name.
    pub fn component_by_name(&self, name: &str) -> Option<&Component> {
        self.component_id(name).map(|id| self.component(id))
    }

    /// Total number of tasks across all components.
    pub fn task_count(&self) -> usize {
        self.task_count
    }

    /// Maps a global task id to its component.
    pub fn component_of_task(&self, task: TaskId) -> ComponentId {
        // Components are contiguous in task space; linear scan is fine for
        // the handful of components real topologies have.
        for c in &self.components {
            if task.0 >= c.base_task.0 && task.0 < c.base_task.0 + c.parallelism {
                return c.id;
            }
        }
        panic!("task {task} out of range");
    }

    /// The dynamic grouping handle for the edge
    /// `producer --stream--> subscriber`, if that edge uses dynamic grouping.
    ///
    /// This is the actuation surface of the paper's control framework: the
    /// controller holds the handle and calls
    /// [`DynamicGroupingHandle::set_ratio`] while the topology runs.
    pub fn dynamic_handle(
        &self,
        producer: &str,
        stream: &StreamId,
        subscriber: &str,
    ) -> Option<DynamicGroupingHandle> {
        self.dynamic_handles
            .get(&(producer.to_owned(), stream.clone(), subscriber.to_owned()))
            .cloned()
    }

    /// All dynamic grouping handles: `((producer, stream, subscriber), handle)`.
    pub fn dynamic_handles(
        &self,
    ) -> impl Iterator<Item = (&(String, StreamId, String), &DynamicGroupingHandle)> {
        self.dynamic_handles.iter()
    }

    /// Components subscribing to `producer`'s `stream`, with their grouping.
    pub fn subscribers_of(
        &self,
        producer: ComponentId,
        stream: &StreamId,
    ) -> Vec<(&Component, &GroupingSpec)> {
        self.components
            .iter()
            .flat_map(|c| {
                c.subscriptions
                    .iter()
                    .filter(|s| s.from == producer && &s.stream == stream)
                    .map(move |s| (c, &s.grouping))
            })
            .collect()
    }
}

/// Builder for [`Topology`].
pub struct TopologyBuilder {
    name: String,
    components: Vec<Component>,
    by_name: HashMap<String, ComponentId>,
}

impl TopologyBuilder {
    /// Starts a new topology with the given name.
    pub fn new(name: &str) -> Self {
        TopologyBuilder {
            name: name.to_owned(),
            components: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    fn add_component(
        &mut self,
        name: &str,
        kind: ComponentKind,
        parallelism: usize,
    ) -> Result<ComponentId> {
        if parallelism == 0 {
            return Err(Error::InvalidParallelism(name.to_owned()));
        }
        if self.by_name.contains_key(name) {
            return Err(Error::DuplicateComponent(name.to_owned()));
        }
        let id = ComponentId(self.components.len());
        self.components.push(Component {
            id,
            name: name.to_owned(),
            kind,
            parallelism,
            outputs: vec![StreamDecl::default_stream(Fields::none())],
            subscriptions: Vec::new(),
            base_task: TaskId(0), // assigned in build()
            cost: CostModel::default(),
        });
        self.by_name.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Declares a spout with `parallelism` tasks.  `factory` is invoked once
    /// per task to create independent instances.
    pub fn set_spout<S, F>(
        &mut self,
        name: &str,
        parallelism: usize,
        factory: F,
    ) -> Result<SpoutDeclarer<'_>>
    where
        S: Spout + 'static,
        F: Fn() -> S + Send + Sync + 'static,
    {
        let factory: SpoutFactory = Arc::new(move || Box::new(factory()));
        let id = self.add_component(name, ComponentKind::Spout(factory), parallelism)?;
        Ok(SpoutDeclarer { builder: self, id })
    }

    /// Declares a bolt with `parallelism` tasks.
    pub fn set_bolt<B, F>(
        &mut self,
        name: &str,
        parallelism: usize,
        factory: F,
    ) -> Result<BoltDeclarer<'_>>
    where
        B: Bolt + 'static,
        F: Fn() -> B + Send + Sync + 'static,
    {
        let factory: BoltFactory = Arc::new(move || Box::new(factory()));
        let id = self.add_component(name, ComponentKind::Bolt(factory), parallelism)?;
        Ok(BoltDeclarer { builder: self, id })
    }

    /// Validates and freezes the topology.
    pub fn build(self) -> Result<Topology> {
        let mut components = self.components;
        if !components.iter().any(|c| c.is_spout()) {
            return Err(Error::InvalidTopology("topology has no spout".into()));
        }

        // Validate subscriptions against declared streams and schemas.
        let catalog: Vec<(String, Vec<StreamDecl>, bool)> = components
            .iter()
            .map(|c| (c.name.clone(), c.outputs.clone(), c.is_spout()))
            .collect();
        for c in &components {
            if c.is_spout() {
                if !c.subscriptions.is_empty() {
                    return Err(Error::SpoutCannotSubscribe(c.name.clone()));
                }
                continue;
            }
            if c.subscriptions.is_empty() {
                return Err(Error::InvalidTopology(format!(
                    "bolt `{}` has no inbound subscription",
                    c.name
                )));
            }
            for sub in &c.subscriptions {
                let (from_name, outputs, _) = &catalog[sub.from.0];
                let decl = outputs.iter().find(|d| d.id == sub.stream).ok_or_else(|| {
                    Error::UnknownStream {
                        component: from_name.clone(),
                        stream: sub.stream.as_str().to_owned(),
                    }
                })?;
                if let GroupingSpec::Fields(fields) | GroupingSpec::PartialKey(fields) =
                    &sub.grouping
                {
                    for f in fields {
                        if !decl.fields.contains(f) {
                            return Err(Error::UnknownField {
                                component: from_name.clone(),
                                stream: sub.stream.as_str().to_owned(),
                                field: f.clone(),
                            });
                        }
                    }
                }
                if let GroupingSpec::Dynamic(Some(r)) = &sub.grouping {
                    if r.len() != c.parallelism {
                        return Err(Error::InvalidSplitRatio(format!(
                            "ratio has {} entries but bolt `{}` has {} tasks",
                            r.len(),
                            c.name,
                            c.parallelism
                        )));
                    }
                }
            }
        }

        // Assign contiguous global task ids in declaration order.
        let mut next = 0usize;
        for c in &mut components {
            c.base_task = TaskId(next);
            next += c.parallelism;
        }

        // Materialize one shared handle per dynamic-grouping edge.
        let mut dynamic_handles = HashMap::new();
        for c in &components {
            for sub in &c.subscriptions {
                if let GroupingSpec::Dynamic(initial) = &sub.grouping {
                    let ratio = match initial {
                        Some(r) => r.clone(),
                        None => SplitRatio::uniform(c.parallelism),
                    };
                    let producer = components[sub.from.0].name.clone();
                    let handle = DynamicGroupingHandle::new(ratio);
                    dynamic_handles.insert((producer, sub.stream.clone(), c.name.clone()), handle);
                }
            }
        }

        Ok(Topology {
            name: self.name,
            by_name: self.by_name,
            task_count: next,
            components,
            dynamic_handles,
        })
    }
}

/// Fluent declarer returned by [`TopologyBuilder::set_spout`].
pub struct SpoutDeclarer<'a> {
    builder: &'a mut TopologyBuilder,
    id: ComponentId,
}

impl fmt::Debug for SpoutDeclarer<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SpoutDeclarer({})", self.id)
    }
}

impl SpoutDeclarer<'_> {
    /// Declares the schema of the default output stream.
    pub fn output_fields(&mut self, fields: Fields) -> &mut Self {
        self.builder.components[self.id.0].outputs[0].fields = fields;
        self
    }

    /// Declares an additional named output stream.
    pub fn output_stream(&mut self, stream: &str, fields: Fields) -> &mut Self {
        self.builder.components[self.id.0]
            .outputs
            .push(StreamDecl::named(stream, fields));
        self
    }

    /// Sets the simulator cost model (mean µs per `next_tuple` call).
    pub fn cost(&mut self, cost: CostModel) -> &mut Self {
        self.builder.components[self.id.0].cost = cost;
        self
    }

    /// The component id assigned to this spout.
    pub fn id(&self) -> ComponentId {
        self.id
    }
}

/// Fluent declarer returned by [`TopologyBuilder::set_bolt`].
pub struct BoltDeclarer<'a> {
    builder: &'a mut TopologyBuilder,
    id: ComponentId,
}

impl fmt::Debug for BoltDeclarer<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BoltDeclarer({})", self.id)
    }
}

impl BoltDeclarer<'_> {
    /// Declares the schema of the default output stream.
    pub fn output_fields(&mut self, fields: Fields) -> &mut Self {
        self.builder.components[self.id.0].outputs[0].fields = fields;
        self
    }

    /// Declares an additional named output stream.
    pub fn output_stream(&mut self, stream: &str, fields: Fields) -> &mut Self {
        self.builder.components[self.id.0]
            .outputs
            .push(StreamDecl::named(stream, fields));
        self
    }

    /// Sets the simulator cost model (mean µs per tuple).
    pub fn cost(&mut self, cost: CostModel) -> &mut Self {
        self.builder.components[self.id.0].cost = cost;
        self
    }

    fn subscribe(
        &mut self,
        from: &str,
        stream: StreamId,
        grouping: GroupingSpec,
    ) -> Result<&mut Self> {
        let from_id = self
            .builder
            .by_name
            .get(from)
            .copied()
            .ok_or_else(|| Error::UnknownComponent(from.to_owned()))?;
        self.builder.components[self.id.0]
            .subscriptions
            .push(Subscription {
                from: from_id,
                stream,
                grouping,
            });
        Ok(self)
    }

    /// Random uniform distribution over subscriber tasks.
    pub fn shuffle_grouping(&mut self, from: &str) -> Result<&mut Self> {
        self.subscribe(from, StreamId::default(), GroupingSpec::Shuffle)
    }

    /// Shuffle grouping on a named stream.
    pub fn shuffle_grouping_stream(&mut self, from: &str, stream: &str) -> Result<&mut Self> {
        self.subscribe(from, StreamId::new(stream), GroupingSpec::Shuffle)
    }

    /// Hash partitioning on the given fields of the default stream.
    pub fn fields_grouping(&mut self, from: &str, fields: &[&str]) -> Result<&mut Self> {
        self.subscribe(
            from,
            StreamId::default(),
            GroupingSpec::Fields(fields.iter().map(|s| s.to_string()).collect()),
        )
    }

    /// Fields grouping on a named stream.
    pub fn fields_grouping_stream(
        &mut self,
        from: &str,
        stream: &str,
        fields: &[&str],
    ) -> Result<&mut Self> {
        self.subscribe(
            from,
            StreamId::new(stream),
            GroupingSpec::Fields(fields.iter().map(|s| s.to_string()).collect()),
        )
    }

    /// All tuples go to the subscriber's lowest task.
    pub fn global_grouping(&mut self, from: &str) -> Result<&mut Self> {
        self.subscribe(from, StreamId::default(), GroupingSpec::Global)
    }

    /// Every tuple is replicated to every subscriber task.
    pub fn all_grouping(&mut self, from: &str) -> Result<&mut Self> {
        self.subscribe(from, StreamId::default(), GroupingSpec::All)
    }

    /// The producer chooses the target task via
    /// [`crate::component::BoltOutput::emit_direct`].
    pub fn direct_grouping(&mut self, from: &str, stream: &str) -> Result<&mut Self> {
        self.subscribe(from, StreamId::new(stream), GroupingSpec::Direct)
    }

    /// Partial key grouping on the given fields of the default stream:
    /// each key's tuples split across two hash-chosen candidate tasks,
    /// whichever is less loaded.
    pub fn partial_key_grouping(&mut self, from: &str, fields: &[&str]) -> Result<&mut Self> {
        self.subscribe(
            from,
            StreamId::default(),
            GroupingSpec::PartialKey(fields.iter().map(|s| s.to_string()).collect()),
        )
    }

    /// The paper's **dynamic grouping** with a uniform initial split ratio.
    ///
    /// After `build()`, fetch the live handle with
    /// [`Topology::dynamic_handle`] to change the ratio on the fly.
    pub fn dynamic_grouping(&mut self, from: &str) -> Result<&mut Self> {
        self.subscribe(from, StreamId::default(), GroupingSpec::Dynamic(None))
    }

    /// Dynamic grouping with an explicit initial split ratio (one weight per
    /// subscriber task).
    pub fn dynamic_grouping_with(&mut self, from: &str, initial: SplitRatio) -> Result<&mut Self> {
        self.subscribe(
            from,
            StreamId::default(),
            GroupingSpec::Dynamic(Some(initial)),
        )
    }

    /// Dynamic grouping on a named stream.
    pub fn dynamic_grouping_stream(&mut self, from: &str, stream: &str) -> Result<&mut Self> {
        self.subscribe(from, StreamId::new(stream), GroupingSpec::Dynamic(None))
    }

    /// The component id assigned to this bolt.
    pub fn id(&self) -> ComponentId {
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{BoltOutput, SpoutOutput};
    use crate::tuple::{Tuple, Value};

    struct NullSpout;
    impl Spout for NullSpout {
        fn next_tuple(&mut self, _out: &mut SpoutOutput) -> bool {
            false
        }
    }

    struct NullBolt;
    impl Bolt for NullBolt {
        fn execute(&mut self, _tuple: &Tuple, _out: &mut BoltOutput) {}
    }

    fn two_stage() -> TopologyBuilder {
        let mut b = TopologyBuilder::new("t");
        b.set_spout("spout", 2, || NullSpout)
            .unwrap()
            .output_fields(Fields::new(["url", "ts"]));
        b
    }

    #[test]
    fn builds_and_assigns_task_ids() {
        let mut b = two_stage();
        b.set_bolt("count", 3, || NullBolt)
            .unwrap()
            .fields_grouping("spout", &["url"])
            .unwrap();
        let t = b.build().unwrap();
        assert_eq!(t.task_count(), 5);
        let spout = t.component_by_name("spout").unwrap();
        let count = t.component_by_name("count").unwrap();
        assert_eq!(
            spout.tasks().collect::<Vec<_>>(),
            vec![TaskId(0), TaskId(1)]
        );
        assert_eq!(
            count.tasks().collect::<Vec<_>>(),
            vec![TaskId(2), TaskId(3), TaskId(4)]
        );
        assert_eq!(t.component_of_task(TaskId(3)), count.id);
        assert_eq!(t.component_of_task(TaskId(0)), spout.id);
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut b = two_stage();
        let err = b.set_spout("spout", 1, || NullSpout).unwrap_err();
        assert_eq!(err, Error::DuplicateComponent("spout".into()));
    }

    #[test]
    fn rejects_zero_parallelism() {
        let mut b = TopologyBuilder::new("t");
        let err = b.set_spout("s", 0, || NullSpout).unwrap_err();
        assert_eq!(err, Error::InvalidParallelism("s".into()));
    }

    #[test]
    fn rejects_unknown_upstream() {
        let mut b = two_stage();
        let err = b
            .set_bolt("b", 1, || NullBolt)
            .unwrap()
            .shuffle_grouping("nope")
            .unwrap_err();
        assert_eq!(err, Error::UnknownComponent("nope".into()));
    }

    #[test]
    fn rejects_unknown_stream() {
        let mut b = two_stage();
        b.set_bolt("b", 1, || NullBolt)
            .unwrap()
            .shuffle_grouping_stream("spout", "ghost")
            .unwrap();
        let err = b.build().unwrap_err();
        assert!(matches!(err, Error::UnknownStream { .. }));
    }

    #[test]
    fn rejects_unknown_field() {
        let mut b = two_stage();
        b.set_bolt("b", 1, || NullBolt)
            .unwrap()
            .fields_grouping("spout", &["missing"])
            .unwrap();
        let err = b.build().unwrap_err();
        assert!(matches!(err, Error::UnknownField { .. }));
    }

    #[test]
    fn rejects_topology_without_spout() {
        let b = TopologyBuilder::new("t");
        assert!(matches!(b.build(), Err(Error::InvalidTopology(_))));
    }

    #[test]
    fn rejects_bolt_without_input() {
        let mut b = two_stage();
        b.set_bolt("orphan", 1, || NullBolt).unwrap();
        assert!(matches!(b.build(), Err(Error::InvalidTopology(_))));
    }

    #[test]
    fn rejects_wrong_ratio_arity() {
        let mut b = two_stage();
        b.set_bolt("b", 3, || NullBolt)
            .unwrap()
            .dynamic_grouping_with("spout", SplitRatio::new(vec![0.5, 0.5]).unwrap())
            .unwrap();
        assert!(matches!(b.build(), Err(Error::InvalidSplitRatio(_))));
    }

    #[test]
    fn dynamic_handle_exposed_after_build() {
        let mut b = two_stage();
        b.set_bolt("b", 4, || NullBolt)
            .unwrap()
            .dynamic_grouping("spout")
            .unwrap();
        let t = b.build().unwrap();
        let h = t
            .dynamic_handle("spout", &StreamId::default(), "b")
            .expect("handle exists");
        assert_eq!(h.ratio().len(), 4);
        assert_eq!(t.dynamic_handles().count(), 1);
        assert!(t
            .dynamic_handle("spout", &StreamId::default(), "zzz")
            .is_none());
    }

    #[test]
    fn subscribers_of_lists_groupings() {
        let mut b = two_stage();
        b.set_bolt("b1", 1, || NullBolt)
            .unwrap()
            .shuffle_grouping("spout")
            .unwrap();
        b.set_bolt("b2", 2, || NullBolt)
            .unwrap()
            .fields_grouping("spout", &["url"])
            .unwrap();
        let t = b.build().unwrap();
        let spout_id = t.component_id("spout").unwrap();
        let subs = t.subscribers_of(spout_id, &StreamId::default());
        assert_eq!(subs.len(), 2);
        let names: Vec<_> = subs.iter().map(|(c, _)| c.name.as_str()).collect();
        assert!(names.contains(&"b1") && names.contains(&"b2"));
    }

    #[test]
    fn multi_stream_declaration() {
        let mut b = TopologyBuilder::new("t");
        b.set_spout("s", 1, || NullSpout)
            .unwrap()
            .output_fields(Fields::new(["a"]))
            .output_stream("late", Fields::new(["a", "lateness"]));
        b.set_bolt("b", 1, || NullBolt)
            .unwrap()
            .shuffle_grouping_stream("s", "late")
            .unwrap();
        let t = b.build().unwrap();
        let s = t.component_by_name("s").unwrap();
        assert_eq!(s.outputs.len(), 2);
        assert!(s
            .stream_fields(&StreamId::new("late"))
            .unwrap()
            .contains("lateness"));
    }

    #[test]
    fn spout_factories_produce_independent_instances() {
        struct CountingSpout(i64);
        impl Spout for CountingSpout {
            fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
                self.0 += 1;
                out.emit(Tuple::of([Value::from(self.0)]));
                true
            }
        }
        let mut b = TopologyBuilder::new("t");
        b.set_spout("s", 2, || CountingSpout(0)).unwrap();
        b.set_bolt("b", 1, || NullBolt)
            .unwrap()
            .shuffle_grouping("s")
            .unwrap();
        let t = b.build().unwrap();
        let c = t.component_by_name("s").unwrap();
        if let ComponentKind::Spout(factory) = &c.kind {
            let mut a = factory();
            let mut b2 = factory();
            let mut out = SpoutOutput::new();
            a.next_tuple(&mut out);
            a.next_tuple(&mut out);
            b2.next_tuple(&mut out);
            let e = out.drain();
            assert_eq!(e[1].tuple.get(0).unwrap().as_i64(), Some(2));
            assert_eq!(e[2].tuple.get(0).unwrap().as_i64(), Some(1), "fresh state");
        } else {
            panic!("expected spout");
        }
    }
}

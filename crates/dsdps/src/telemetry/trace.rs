//! Sampled per-tuple-tree tracing: spans, ring buffers, and exporters.
//!
//! A tuple tree is sampled by a deterministic hash test on its root id, so
//! every thread — the spout that tracks the tree, each bolt that executes a
//! hop, and whichever thread delivers the terminal outcome — reaches the
//! same decision with no shared state and no coordination.  Sampled spans
//! go into the recording task's own fixed-capacity buffer (one uncontended
//! mutex per task); when a buffer fills, *new* spans are rejected and
//! counted, so early spans (the tree roots) survive overload.

use std::collections::VecDeque;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, JsonValue, Serialize};

use crate::acker::{splitmix64, RootId};
use crate::hash::FxHashMap;

/// The role a [`Span`] plays within its tuple tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// The spout emission that started (or replayed) the tree.
    SpoutEmit,
    /// One bolt execution of a tuple belonging to the tree.
    Hop,
    /// Terminal event: the tree fully acked.
    Ack,
    /// Terminal event: the tree failed.
    Fail,
    /// Terminal event: the tree timed out on the acker.
    Timeout,
}

impl SpanKind {
    /// True for the ack/fail/timeout terminal events.
    pub fn is_terminal(self) -> bool {
        matches!(self, SpanKind::Ack | SpanKind::Fail | SpanKind::Timeout)
    }
}

/// One traced hop or terminal event of a sampled tuple tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Trace id of the tree: `splitmix64(root)`.
    pub trace_id: u64,
    /// Root id of the tree on the acker.
    pub root: u64,
    /// What this span records.
    pub kind: SpanKind,
    /// Component the recording task runs.
    pub component: String,
    /// Global task id of the recording task.
    pub task: usize,
    /// Worker hosting the recording task.
    pub worker: usize,
    /// Span start, µs since runtime start.
    pub start_us: u64,
    /// Time the tuple waited in the inbound queue, µs (hops only).
    pub queue_wait_us: u64,
    /// Execution time, µs; for terminal events the tree's complete latency.
    pub exec_us: u64,
    /// Sequence number of the delivering batch within the executing task.
    pub batch_id: u64,
    /// Replay attempt of the tree's spout emission (0 = first emission).
    pub replay_attempt: u32,
    /// Spout message id (spout-emit and terminal spans).
    pub message_id: Option<u64>,
    /// OS process id of the recording process (0 = single-process run; the
    /// distributed coordinator stamps real pids when merging worker spans).
    pub pid: u32,
    /// Worker connection generation the span was recorded under (0 before
    /// the first respawn and for single-process runs).
    pub generation: u64,
}

/// Trace id of a tuple tree (shared with the acker's edge-id scrambler).
pub fn trace_id(root: RootId) -> u64 {
    splitmix64(root)
}

struct SpanBuf {
    spans: VecDeque<Span>,
    dropped: u64,
}

/// Per-task metadata the tracer stamps into each span.
#[derive(Debug, Clone)]
struct TaskMeta {
    component: Arc<str>,
    worker: usize,
}

/// Sampling decision plus per-task span ring buffers.
///
/// Slots are indexed by recording task id; one extra trailing slot belongs
/// to the metrics thread (which delivers timeout outcomes), mirroring the
/// runtime's latency-slot layout.
pub struct Tracer {
    /// Sample iff `splitmix64(root) < threshold`; `0` disables, `u64::MAX`
    /// samples everything.
    threshold: u64,
    slots: Vec<Mutex<SpanBuf>>,
    meta: Vec<TaskMeta>,
    capacity: usize,
}

/// Per-task span buffer capacity.  At sample rate 1.0 a chaos-test run
/// stays well under this; overload rejects new spans and counts them.
pub const SPAN_BUF_CAPACITY: usize = 1 << 16;

impl Tracer {
    /// A tracer with `slots` buffers (pass `n_tasks + 1`; the last slot is
    /// for the metrics thread) and per-task metadata `(component, worker)`
    /// indexed by task id.
    pub fn new(sample_rate: f64, slots: usize, meta: Vec<(String, usize)>) -> Self {
        let threshold = if sample_rate.is_nan() || sample_rate <= 0.0 {
            0
        } else if sample_rate >= 1.0 {
            u64::MAX
        } else {
            (sample_rate * u64::MAX as f64) as u64
        };
        Tracer {
            threshold,
            slots: (0..slots)
                .map(|_| {
                    Mutex::new(SpanBuf {
                        spans: VecDeque::new(),
                        dropped: 0,
                    })
                })
                .collect(),
            meta: meta
                .into_iter()
                .map(|(component, worker)| TaskMeta {
                    component: Arc::from(component),
                    worker,
                })
                .collect(),
            capacity: SPAN_BUF_CAPACITY,
        }
    }

    /// A disabled tracer with no buffers (used when the runtime has no
    /// telemetry wiring at all, e.g. in unit tests).
    pub fn disabled() -> Self {
        Tracer::new(0.0, 0, Vec::new())
    }

    /// True when any tree can be sampled (and hot-path telemetry is
    /// compiled in).  Data-plane call sites branch on this once per batch.
    #[inline]
    pub fn enabled(&self) -> bool {
        super::HOT_PATH_TELEMETRY && self.threshold != 0
    }

    /// Deterministic per-tree sampling decision.
    #[inline]
    pub fn sampled(&self, root: RootId) -> bool {
        self.threshold == u64::MAX || (self.threshold != 0 && splitmix64(root) < self.threshold)
    }

    fn component_of(&self, task: usize) -> String {
        self.meta
            .get(task)
            .map(|m| m.component.to_string())
            .unwrap_or_default()
    }

    fn worker_of(&self, task: usize) -> usize {
        self.meta.get(task).map(|m| m.worker).unwrap_or_default()
    }

    fn push(&self, slot: usize, span: Span) {
        if let Some(buf) = self.slots.get(slot) {
            let mut buf = buf.lock();
            if buf.spans.len() >= self.capacity {
                buf.dropped += 1;
            } else {
                buf.spans.push_back(span);
            }
        }
    }

    /// Records the spout emission that started (or replayed) a sampled tree.
    #[allow(clippy::too_many_arguments)]
    pub fn record_emit(
        &self,
        slot: usize,
        root: RootId,
        task: usize,
        start_us: u64,
        replay_attempt: u32,
        message_id: u64,
    ) {
        self.push(
            slot,
            Span {
                trace_id: trace_id(root),
                root,
                kind: SpanKind::SpoutEmit,
                component: self.component_of(task),
                task,
                worker: self.worker_of(task),
                start_us,
                queue_wait_us: 0,
                exec_us: 0,
                batch_id: 0,
                replay_attempt,
                message_id: Some(message_id),
                pid: 0,
                generation: 0,
            },
        );
    }

    /// Records one bolt execution of a tuple from a sampled tree.
    #[allow(clippy::too_many_arguments)]
    pub fn record_hop(
        &self,
        slot: usize,
        root: RootId,
        task: usize,
        start_us: u64,
        queue_wait_us: u64,
        exec_us: u64,
        batch_id: u64,
    ) {
        self.push(
            slot,
            Span {
                trace_id: trace_id(root),
                root,
                kind: SpanKind::Hop,
                component: self.component_of(task),
                task,
                worker: self.worker_of(task),
                start_us,
                queue_wait_us,
                exec_us,
                batch_id,
                replay_attempt: 0,
                message_id: None,
                pid: 0,
                generation: 0,
            },
        );
    }

    /// Records the terminal ack/fail/timeout event of a sampled tree.
    #[allow(clippy::too_many_arguments)]
    pub fn record_terminal(
        &self,
        slot: usize,
        root: RootId,
        kind: SpanKind,
        spout_task: usize,
        start_us: u64,
        complete_us: u64,
        message_id: u64,
    ) {
        debug_assert!(kind.is_terminal());
        self.push(
            slot,
            Span {
                trace_id: trace_id(root),
                root,
                kind,
                component: self.component_of(spout_task),
                task: spout_task,
                worker: self.worker_of(spout_task),
                start_us,
                queue_wait_us: 0,
                exec_us: complete_us,
                batch_id: 0,
                replay_attempt: 0,
                message_id: Some(message_id),
                pid: 0,
                generation: 0,
            },
        );
    }

    /// Merges all buffers into one span list ordered by `(trace_id,
    /// start_us)`, plus the number of spans rejected on overflow.  Buffers
    /// are left intact so this can run mid-flight and again at shutdown.
    pub fn snapshot(&self) -> (Vec<Span>, u64) {
        let mut spans = Vec::new();
        let mut dropped = 0;
        for slot in &self.slots {
            let buf = slot.lock();
            spans.extend(buf.spans.iter().cloned());
            dropped += buf.dropped;
        }
        spans.sort_by_key(|a| (a.trace_id, a.start_us));
        (spans, dropped)
    }

    /// Takes all buffered spans and resets the dropped counters, returning
    /// `(spans, dropped_since_last_drain)`.  Unlike [`Tracer::snapshot`]
    /// this empties the buffers — the distributed worker drains its local
    /// tracer on every [`SpanBatch`](crate::dist::codec::Frame::SpanBatch)
    /// push so spans ship incrementally instead of accumulating.
    pub fn drain(&self) -> (Vec<Span>, u64) {
        let mut spans = Vec::new();
        let mut dropped = 0;
        for slot in &self.slots {
            let mut buf = slot.lock();
            spans.extend(buf.spans.drain(..));
            dropped += buf.dropped;
            buf.dropped = 0;
        }
        spans.sort_by_key(|a| (a.trace_id, a.start_us));
        (spans, dropped)
    }
}

/// Shifts every span's `start_us` by `offset_us` (saturating at zero), the
/// clock re-basing the distributed coordinator applies to worker spans.
/// The offset is estimated at the `Hello` handshake as
/// `coordinator_now_us − worker_clock_us`, so after the shift all spans of
/// a merged trace share the coordinator's clock to within one socket
/// one-way latency.
pub fn normalize_start_us(spans: &mut [Span], offset_us: i64) {
    for s in spans {
        s.start_us = if offset_us >= 0 {
            s.start_us.saturating_add(offset_us as u64)
        } else {
            s.start_us.saturating_sub(offset_us.unsigned_abs())
        };
    }
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Renders spans as Chrome `trace_event` JSON — the format `chrome://tracing`
/// and [Perfetto](https://ui.perfetto.dev) open directly.  Hops and spout
/// emissions become `"ph":"X"` complete events (pid = the span's OS pid
/// when stamped, else its logical worker; tid = task); terminal events
/// become `"ph":"i"` instants.
pub fn chrome_trace_json(spans: &[Span]) -> String {
    chrome_trace_json_named(spans, &[])
}

/// The Chrome `pid` track a span renders under: the real OS pid when the
/// distributed coordinator stamped one, else the logical worker index.
fn chrome_pid(s: &Span) -> u64 {
    if s.pid != 0 {
        u64::from(s.pid)
    } else {
        s.worker as u64
    }
}

/// Like [`chrome_trace_json`], but prefixes `process_name` metadata records
/// (`"ph":"M"`) so each process renders as its own named track: one record
/// per distinct pid appearing in `spans`, named from `process_names`
/// (`(pid, name)` pairs) with a `"process <pid>"` fallback.  The
/// distributed runtime passes the coordinator's and every worker
/// generation's pid here so cross-process traces stay readable.
pub fn chrome_trace_json_named(spans: &[Span], process_names: &[(u64, String)]) -> String {
    let mut events: Vec<JsonValue> = Vec::new();
    if !process_names.is_empty() {
        let mut seen: Vec<u64> = Vec::new();
        for s in spans {
            let pid = chrome_pid(s);
            if !seen.contains(&pid) {
                seen.push(pid);
            }
        }
        seen.sort_unstable();
        for pid in seen {
            let name = process_names
                .iter()
                .find(|(p, _)| *p == pid)
                .map(|(_, n)| n.clone())
                .unwrap_or_else(|| format!("process {pid}"));
            events.push(obj(vec![
                ("name", JsonValue::Str("process_name".to_string())),
                ("ph", JsonValue::Str("M".to_string())),
                ("pid", JsonValue::U64(pid)),
                ("args", obj(vec![("name", JsonValue::Str(name))])),
            ]));
        }
    }
    events.extend(spans.iter().map(|s| {
        let args = obj(vec![
            ("trace_id", JsonValue::Str(format!("{:016x}", s.trace_id))),
            ("root", JsonValue::U64(s.root)),
            ("queue_wait_us", JsonValue::U64(s.queue_wait_us)),
            ("batch_id", JsonValue::U64(s.batch_id)),
            ("replay_attempt", JsonValue::U64(s.replay_attempt as u64)),
        ]);
        let mut fields = vec![
            (
                "name",
                JsonValue::Str(match s.kind {
                    SpanKind::SpoutEmit => format!("emit:{}", s.component),
                    SpanKind::Hop => s.component.clone(),
                    SpanKind::Ack => "ack".to_string(),
                    SpanKind::Fail => "fail".to_string(),
                    SpanKind::Timeout => "timeout".to_string(),
                }),
            ),
            (
                "cat",
                JsonValue::Str(
                    match s.kind {
                        SpanKind::SpoutEmit => "spout",
                        SpanKind::Hop => "hop",
                        _ => "terminal",
                    }
                    .to_string(),
                ),
            ),
            ("ts", JsonValue::U64(s.start_us)),
            ("pid", JsonValue::U64(chrome_pid(s))),
            ("tid", JsonValue::U64(s.task as u64)),
        ];
        if s.kind.is_terminal() {
            fields.push(("ph", JsonValue::Str("i".to_string())));
            fields.push(("s", JsonValue::Str("p".to_string())));
        } else {
            fields.push(("ph", JsonValue::Str("X".to_string())));
            fields.push(("dur", JsonValue::U64(s.exec_us.max(1))));
        }
        fields.push(("args", args));
        obj(fields)
    }));
    let doc = obj(vec![
        ("traceEvents", JsonValue::Array(events)),
        ("displayTimeUnit", JsonValue::Str("ms".to_string())),
    ]);
    serde_json::to_string(&doc).expect("trace serialization cannot fail")
}

/// Renders spans as JSONL: one JSON span object per line.
pub fn spans_jsonl(spans: &[Span]) -> String {
    let mut out = String::new();
    for s in spans {
        out.push_str(&serde_json::to_string(s).expect("span serialization cannot fail"));
        out.push('\n');
    }
    out
}

/// Writes [`chrome_trace_json`] output to `path`.
pub fn write_chrome_trace(path: &Path, spans: &[Span]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(chrome_trace_json(spans).as_bytes())
}

/// Writes [`spans_jsonl`] output to `path`.
pub fn write_spans_jsonl(path: &Path, spans: &[Span]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(spans_jsonl(spans).as_bytes())
}

// ---------------------------------------------------------------------------
// Consistency checking
// ---------------------------------------------------------------------------

/// Aggregate shape of a span set, as checked by [`validate_spans`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Distinct sampled tuple trees (distinct roots).
    pub trees: usize,
    /// Trees with a terminal ack/fail/timeout event.
    pub terminated_trees: usize,
    /// Trees with no terminal event (in flight when the snapshot was taken).
    pub open_trees: usize,
    /// Trees whose spout emission has `replay_attempt > 0`.
    pub replayed_trees: usize,
    /// Total hop spans.
    pub hop_spans: usize,
}

/// Checks per-tree structural consistency of a span set and summarizes it.
///
/// Every root must have exactly one spout-emit span and at most one
/// terminal event, and hop/terminal spans must not appear for a root that
/// never recorded its emission.  Violations return `Err` with a
/// description; trees that are merely unterminated (still in flight) are
/// legal and reported via [`TraceSummary::open_trees`].
pub fn validate_spans(spans: &[Span]) -> Result<TraceSummary, String> {
    #[derive(Default)]
    struct Tree {
        emits: usize,
        terminals: usize,
        hops: usize,
        replayed: bool,
    }
    let mut trees: FxHashMap<u64, Tree> = FxHashMap::default();
    for s in spans {
        let t = trees.entry(s.root).or_default();
        match s.kind {
            SpanKind::SpoutEmit => {
                t.emits += 1;
                t.replayed |= s.replay_attempt > 0;
            }
            SpanKind::Hop => t.hops += 1,
            _ => t.terminals += 1,
        }
        if s.trace_id != splitmix64(s.root) {
            return Err(format!(
                "span for root {} carries trace id {:#x}, expected {:#x}",
                s.root,
                s.trace_id,
                splitmix64(s.root)
            ));
        }
    }
    let mut summary = TraceSummary {
        trees: trees.len(),
        ..TraceSummary::default()
    };
    for (root, t) in &trees {
        if t.emits == 0 {
            return Err(format!("root {root} has spans but no spout-emit span"));
        }
        if t.emits > 1 {
            return Err(format!("root {root} has {} spout-emit spans", t.emits));
        }
        if t.terminals > 1 {
            return Err(format!("root {root} has {} terminal events", t.terminals));
        }
        if t.terminals == 1 {
            summary.terminated_trees += 1;
        } else {
            summary.open_trees += 1;
        }
        if t.replayed {
            summary.replayed_trees += 1;
        }
        summary.hop_spans += t.hops;
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracer() -> Tracer {
        Tracer::new(1.0, 3, vec![("src".into(), 0), ("work".into(), 1)])
    }

    #[test]
    fn sampling_thresholds() {
        let none = Tracer::new(0.0, 1, vec![]);
        let all = Tracer::new(1.0, 1, vec![]);
        assert!(!none.enabled());
        assert!(all.enabled());
        for root in 1..100 {
            assert!(!none.sampled(root));
            assert!(all.sampled(root));
        }
        let half = Tracer::new(0.5, 1, vec![]);
        let hits = (1..10_000u64).filter(|&r| half.sampled(r)).count();
        assert!(
            (3_500..6_500).contains(&hits),
            "0.5 sampling hit {hits}/9999"
        );
    }

    #[test]
    fn spans_validate_and_roundtrip() {
        let t = tracer();
        t.record_emit(0, 7, 0, 10, 0, 99);
        t.record_hop(1, 7, 1, 20, 5, 30, 2);
        t.record_terminal(2, 7, SpanKind::Ack, 0, 60, 50, 99);
        t.record_emit(0, 8, 0, 70, 1, 99);
        let (spans, dropped) = t.snapshot();
        assert_eq!(spans.len(), 4);
        assert_eq!(dropped, 0);
        let summary = validate_spans(&spans).unwrap();
        assert_eq!(summary.trees, 2);
        assert_eq!(summary.terminated_trees, 1);
        assert_eq!(summary.open_trees, 1);
        assert_eq!(summary.replayed_trees, 1);
        assert_eq!(summary.hop_spans, 1);

        // JSONL round-trips through serde.
        let jsonl = spans_jsonl(&spans);
        let back: Vec<Span> = jsonl
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(back, spans);
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let t = tracer();
        t.record_emit(0, 7, 0, 10, 0, 1);
        t.record_hop(1, 7, 1, 20, 5, 30, 0);
        t.record_terminal(2, 7, SpanKind::Timeout, 0, 60, 50, 1);
        let (spans, _) = t.snapshot();
        let doc = serde_json::parse(&chrome_trace_json(&spans)).unwrap();
        let events = doc
            .as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == "traceEvents"))
            .and_then(|(_, v)| v.as_array())
            .expect("traceEvents array");
        assert_eq!(events.len(), 3);
        let phases: Vec<&str> = events
            .iter()
            .map(|e| {
                e.as_object()
                    .and_then(|o| o.iter().find(|(k, _)| k == "ph"))
                    .and_then(|(_, v)| v.as_str())
                    .unwrap()
            })
            .collect();
        assert_eq!(phases, ["X", "X", "i"]);
    }

    #[test]
    fn named_chrome_trace_emits_process_metadata() {
        let t = tracer();
        t.record_emit(0, 7, 0, 10, 0, 1);
        t.record_hop(1, 7, 1, 20, 5, 30, 0);
        let (mut spans, _) = t.snapshot();
        // Stamp the hop as coming from a separate worker process.
        for s in &mut spans {
            if s.kind == SpanKind::Hop {
                s.pid = 4711;
                s.generation = 1;
            }
        }
        let names = vec![(4711u64, "worker 0 gen 1".to_string())];
        let doc = serde_json::parse(&chrome_trace_json_named(&spans, &names)).unwrap();
        let events = doc
            .as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == "traceEvents"))
            .and_then(|(_, v)| v.as_array())
            .expect("traceEvents array");
        // Two distinct pids (coordinator track 0, worker 4711) => two
        // metadata records ahead of the two span events.
        assert_eq!(events.len(), 4);
        let metas: Vec<_> = events
            .iter()
            .filter(|e| {
                e.as_object()
                    .and_then(|o| o.iter().find(|(k, _)| k == "ph"))
                    .and_then(|(_, v)| v.as_str())
                    == Some("M")
            })
            .collect();
        assert_eq!(metas.len(), 2);
        let text = chrome_trace_json_named(&spans, &names);
        assert!(text.contains("worker 0 gen 1"));
        assert!(text.contains("process_name"));
    }

    #[test]
    fn normalize_shifts_span_clocks() {
        let t = tracer();
        t.record_emit(0, 7, 0, 1_000, 0, 1);
        let (mut spans, _) = t.snapshot();
        normalize_start_us(&mut spans, 500);
        assert_eq!(spans[0].start_us, 1_500);
        normalize_start_us(&mut spans, -700);
        assert_eq!(spans[0].start_us, 800);
        normalize_start_us(&mut spans, -10_000);
        assert_eq!(spans[0].start_us, 0, "shifts saturate at zero");
    }

    #[test]
    fn inconsistent_span_sets_are_rejected() {
        let t = tracer();
        t.record_hop(1, 7, 1, 20, 5, 30, 0);
        let (spans, _) = t.snapshot();
        assert!(validate_spans(&spans)
            .unwrap_err()
            .contains("no spout-emit"));

        let t = tracer();
        t.record_emit(0, 7, 0, 10, 0, 1);
        t.record_terminal(2, 7, SpanKind::Ack, 0, 60, 50, 1);
        t.record_terminal(2, 7, SpanKind::Timeout, 0, 61, 51, 1);
        let (spans, _) = t.snapshot();
        assert!(validate_spans(&spans)
            .unwrap_err()
            .contains("terminal events"));
    }

    #[test]
    fn buffer_overflow_rejects_and_counts() {
        let t = Tracer::new(1.0, 1, vec![("s".into(), 0)]);
        for i in 0..(SPAN_BUF_CAPACITY as u64 + 10) {
            t.record_emit(0, i + 1, 0, i, 0, i);
        }
        let (spans, dropped) = t.snapshot();
        assert_eq!(spans.len(), SPAN_BUF_CAPACITY);
        assert_eq!(dropped, 10);
    }
}

//! Live metrics registry with Prometheus text exposition.
//!
//! Instruments are registered once by name + labels and accessed through
//! cached handles ([`Counter`], [`Gauge`], [`Summary`]); updates through a
//! handle are single atomic stores — no lock, no map lookup, no
//! allocation.  The registry itself is sharded by key hash so concurrent
//! registration from many task threads does not serialize on one mutex.
//!
//! Three instrument kinds cover the runtime's needs:
//!
//! * [`Counter`] — monotonically increasing `u64`;
//! * [`Gauge`] — arbitrary `f64` (stored as bits in an `AtomicU64`);
//! * [`Summary`] — a [`LatencyHistogram`] rendered as φ-quantiles.
//!
//! [`Registry::render`] produces the Prometheus text exposition format
//! (version 0.0.4), served live by [`super::MetricsServer`] or dumped to a
//! file for tests.

use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::hash::FxBuildHasher;
use crate::metrics::LatencyHistogram;

/// Handle to a monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the count (used to mirror an externally maintained
    /// cumulative total; keep it monotone).
    pub fn set(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Handle to a gauge (an arbitrary instantaneous `f64`).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Handle to a latency summary backed by a [`LatencyHistogram`].
#[derive(Debug, Clone)]
pub struct Summary(Arc<Mutex<LatencyHistogram>>);

impl Summary {
    /// Records one observation (µs).
    pub fn observe(&self, us: f64) {
        self.0.lock().record(us);
    }

    /// Replaces the whole histogram (used to mirror a merged snapshot).
    pub fn replace(&self, h: LatencyHistogram) {
        *self.0.lock() = h;
    }

    /// Clone of the current histogram.
    pub fn snapshot(&self) -> LatencyHistogram {
        self.0.lock().clone()
    }
}

#[derive(Debug, Clone)]
enum Cell {
    Counter(Counter),
    Gauge(Gauge),
    Summary(Summary),
}

impl Cell {
    fn type_name(&self) -> &'static str {
        match self {
            Cell::Counter(_) => "counter",
            Cell::Gauge(_) => "gauge",
            Cell::Summary(_) => "summary",
        }
    }
}

#[derive(Debug)]
struct Entry {
    family: String,
    labels: String,
    cell: Cell,
}

/// Sharded name+labels → instrument registry.
#[derive(Debug)]
pub struct Registry {
    shards: Box<[Mutex<Vec<Entry>>]>,
    hasher: FxBuildHasher,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::with_shards(8)
    }
}

impl Registry {
    /// A registry with the default shard count.
    pub fn new() -> Self {
        Registry::default()
    }

    /// A registry with `shards` independently locked shards (≥ 1).
    pub fn with_shards(shards: usize) -> Self {
        Registry {
            shards: (0..shards.max(1)).map(|_| Mutex::new(Vec::new())).collect(),
            hasher: FxBuildHasher::default(),
        }
    }

    fn shard_of(&self, family: &str, labels: &str) -> usize {
        use std::hash::{BuildHasher, Hash, Hasher};
        let mut h = self.hasher.build_hasher();
        family.hash(&mut h);
        labels.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    fn get_or_insert(
        &self,
        family: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Cell,
    ) -> Cell {
        let labels = render_labels(labels);
        let mut shard = self.shards[self.shard_of(family, &labels)].lock();
        if let Some(e) = shard
            .iter()
            .find(|e| e.family == family && e.labels == labels)
        {
            return e.cell.clone();
        }
        let cell = make();
        shard.push(Entry {
            family: family.to_string(),
            labels,
            cell: cell.clone(),
        });
        cell
    }

    /// Registers (or retrieves) a counter.  Panics if the same name+labels
    /// was registered as a different instrument kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(name, labels, || {
            Cell::Counter(Counter(Arc::new(AtomicU64::new(0))))
        }) {
            Cell::Counter(c) => c,
            other => panic!(
                "metric `{name}` already registered as {}",
                other.type_name()
            ),
        }
    }

    /// Registers (or retrieves) a gauge.  Panics on kind mismatch.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_insert(name, labels, || {
            Cell::Gauge(Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
        }) {
            Cell::Gauge(g) => g,
            other => panic!(
                "metric `{name}` already registered as {}",
                other.type_name()
            ),
        }
    }

    /// Registers (or retrieves) a latency summary.  Panics on kind mismatch.
    pub fn summary(&self, name: &str, labels: &[(&str, &str)]) -> Summary {
        match self.get_or_insert(name, labels, || {
            Cell::Summary(Summary(Arc::new(Mutex::new(LatencyHistogram::new()))))
        }) {
            Cell::Summary(s) => s,
            other => panic!(
                "metric `{name}` already registered as {}",
                other.type_name()
            ),
        }
    }

    /// Number of registered instruments.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the registry in Prometheus text exposition format
    /// (`text/plain; version=0.0.4`): one `# TYPE` line per metric family,
    /// samples sorted by name then labels, summaries as φ-quantiles plus a
    /// `_count` sample.
    pub fn render(&self) -> String {
        let mut rows: Vec<(String, String, Cell)> = Vec::new();
        for shard in self.shards.iter() {
            for e in shard.lock().iter() {
                rows.push((e.family.clone(), e.labels.clone(), e.cell.clone()));
            }
        }
        rows.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));

        let mut out = String::new();
        let mut last_family = String::new();
        for (family, labels, cell) in rows {
            if family != last_family {
                out.push_str(&format!("# TYPE {family} {}\n", cell.type_name()));
                last_family = family.clone();
            }
            match cell {
                Cell::Counter(c) => {
                    out.push_str(&sample_line(&family, &labels, &[], &format!("{}", c.get())));
                }
                Cell::Gauge(g) => {
                    out.push_str(&sample_line(&family, &labels, &[], &format!("{}", g.get())));
                }
                Cell::Summary(s) => {
                    let h = s.snapshot();
                    for q in [0.5, 0.9, 0.99] {
                        let v = h.quantile(q).unwrap_or(0.0);
                        out.push_str(&sample_line(
                            &family,
                            &labels,
                            &[("quantile", &format!("{q}"))],
                            &format!("{v}"),
                        ));
                    }
                    out.push_str(&sample_line(
                        &format!("{family}_count"),
                        &labels,
                        &[],
                        &format!("{}", h.count()),
                    ));
                }
            }
        }
        out
    }

    /// Writes [`Registry::render`] output to `path`.
    pub fn write_to_file(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.render().as_bytes())
    }

    /// Structured export of every counter and gauge as
    /// `(family, rendered_labels, value)`, sorted by family then labels.
    /// Summaries are skipped — they do not aggregate across processes by
    /// value.  The distributed worker walks this to build its
    /// `MetricsPush` frame; the coordinator re-registers each sample under
    /// `worker`/`generation` labels.
    pub fn export_samples(&self) -> Vec<(String, String, SampleValue)> {
        let mut rows: Vec<(String, String, SampleValue)> = Vec::new();
        for shard in self.shards.iter() {
            for e in shard.lock().iter() {
                let v = match &e.cell {
                    Cell::Counter(c) => SampleValue::Counter(c.get()),
                    Cell::Gauge(g) => SampleValue::Gauge(g.get()),
                    Cell::Summary(_) => continue,
                };
                rows.push((e.family.clone(), e.labels.clone(), v));
            }
        }
        rows.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        rows
    }
}

/// One exported counter or gauge value (see [`Registry::export_samples`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SampleValue {
    /// Cumulative counter total.
    Counter(u64),
    /// Instantaneous gauge value.
    Gauge(f64),
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    parts.sort();
    parts.join(",")
}

fn sample_line(name: &str, labels: &str, extra: &[(&str, &str)], value: &str) -> String {
    let mut all = labels.to_string();
    for (k, v) in extra {
        if !all.is_empty() {
            all.push(',');
        }
        all.push_str(&format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if all.is_empty() {
        format!("{name} {value}\n")
    } else {
        format!("{name}{{{all}}} {value}\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_cached_and_shared() {
        let r = Registry::new();
        let a = r.counter("dsdps_acked_total", &[]);
        let b = r.counter("dsdps_acked_total", &[]);
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(r.len(), 1);

        let g = r.gauge("dsdps_in_flight", &[]);
        g.set(17.5);
        assert_eq!(r.gauge("dsdps_in_flight", &[]).get(), 17.5);
    }

    #[test]
    fn labels_distinguish_instruments_and_are_sorted() {
        let r = Registry::new();
        let t0 = r.counter("task_executed", &[("task", "0"), ("component", "src")]);
        let t1 = r.counter("task_executed", &[("component", "work"), ("task", "1")]);
        t0.add(5);
        t1.add(7);
        assert_eq!(r.len(), 2);
        let text = r.render();
        assert!(text.contains("# TYPE task_executed counter"));
        // Label keys render sorted regardless of registration order.
        assert!(text.contains("task_executed{component=\"src\",task=\"0\"} 5"));
        assert!(text.contains("task_executed{component=\"work\",task=\"1\"} 7"));
        // One TYPE line per family.
        assert_eq!(text.matches("# TYPE task_executed").count(), 1);
    }

    #[test]
    fn summary_renders_quantiles_and_count() {
        let r = Registry::new();
        let s = r.summary("complete_latency_us", &[]);
        for us in [100.0, 200.0, 400.0, 800.0, 1600.0] {
            s.observe(us);
        }
        let text = r.render();
        assert!(text.contains("# TYPE complete_latency_us summary"));
        assert!(text.contains("complete_latency_us{quantile=\"0.5\"}"));
        assert!(text.contains("complete_latency_us{quantile=\"0.99\"}"));
        assert!(text.contains("complete_latency_us_count 5"));
    }

    #[test]
    fn export_samples_covers_counters_and_gauges() {
        let r = Registry::new();
        r.counter("b_total", &[]).add(9);
        r.gauge("a_up", &[("worker", "1")]).set(2.5);
        r.summary("lat_us", &[]).observe(10.0);
        let rows = r.export_samples();
        assert_eq!(rows.len(), 2, "summaries are skipped");
        assert_eq!(
            rows[0],
            (
                "a_up".into(),
                "worker=\"1\"".into(),
                SampleValue::Gauge(2.5)
            )
        );
        assert_eq!(
            rows[1],
            ("b_total".into(), "".into(), SampleValue::Counter(9))
        );
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x", &[]);
        let _ = r.gauge("x", &[]);
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("weird", &[("msg", "a\"b\\c\nd")]).inc();
        let text = r.render();
        assert!(text.contains(r#"msg="a\"b\\c\nd""#));
    }
}

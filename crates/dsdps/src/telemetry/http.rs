//! Minimal HTTP responder serving the metrics registry.
//!
//! The workspace builds offline with no HTTP crate, so this is a
//! hand-rolled `std::net::TcpListener` loop: accept a connection, read the
//! request head (the path is ignored — every request gets the scrape), and
//! write one `HTTP/1.1 200` response with the Prometheus text exposition
//! body.  The listener is non-blocking so the serving thread can poll a
//! stop flag and shut down promptly; a scrape endpoint at metrics-interval
//! cadence needs nothing faster.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use super::registry::Registry;

/// A background thread serving [`Registry::render`] over HTTP.
#[derive(Debug)]
pub struct MetricsServer {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
    handle: Option<thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (port 0 picks a free port; see [`Self::local_addr`])
    /// and starts serving `registry` until [`Self::shutdown`] or drop.
    pub fn bind(addr: SocketAddr, registry: Arc<Registry>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_thread = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("dsdps-metrics-http".to_string())
            .spawn(move || serve_loop(listener, registry, stop_thread))
            .expect("failed to spawn metrics server thread");
        Ok(MetricsServer {
            stop,
            addr,
            handle: Some(handle),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the serving thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_loop(listener: TcpListener, registry: Arc<Registry>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Scrape errors (client hung up mid-response) are not worth
                // tearing the server down for.
                let _ = respond(stream, &registry);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(20));
            }
            Err(_) => break,
        }
    }
}

fn respond(mut stream: TcpStream, registry: &Registry) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    // Read until the end of the request head (or a size/time cap); the
    // request line and headers are irrelevant — every path is a scrape.
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let body = registry.render();
    let response = format!(
        "HTTP/1.1 200 OK\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{}",
        body.len(),
        body
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(addr: SocketAddr) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_registry_text() {
        let registry = Arc::new(Registry::new());
        registry.counter("dsdps_acked_total", &[]).add(42);
        let server =
            MetricsServer::bind("127.0.0.1:0".parse().unwrap(), Arc::clone(&registry)).unwrap();
        let addr = server.local_addr();

        let response = scrape(addr);
        assert!(response.starts_with("HTTP/1.1 200 OK"));
        assert!(response.contains("text/plain; version=0.0.4"));
        assert!(response.contains("dsdps_acked_total 42"));

        // A second scrape sees a live update.
        registry.counter("dsdps_acked_total", &[]).add(1);
        assert!(scrape(addr).contains("dsdps_acked_total 43"));

        server.shutdown();
        assert!(TcpStream::connect(addr).is_err() || scrape_fails(addr));
    }

    fn scrape_fails(addr: SocketAddr) -> bool {
        // After shutdown the listener is closed; a connect may still race
        // the OS teardown, but writing + reading must fail.
        match TcpStream::connect(addr) {
            Err(_) => true,
            Ok(mut s) => {
                let _ = s.write_all(b"GET / HTTP/1.1\r\n\r\n");
                let mut out = String::new();
                s.read_to_string(&mut out).map(|n| n == 0).unwrap_or(true)
            }
        }
    }
}

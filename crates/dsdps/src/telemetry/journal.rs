//! Append-only control-plane event journal.
//!
//! Every decision the control plane makes — routing-ratio updates from the
//! controller, supervisor restarts, replay/backoff scheduling, fault
//! injections — appends one timestamped [`JournalEvent`].  Events carry the
//! ids needed to cross-reference the other telemetry pillars: replay
//! events carry the fresh tree's root and trace id, restart events the
//! task and generation.  The journal serializes to JSONL (one event per
//! line) so a run's decisions can be read back next to its span log.
//!
//! Appends take one uncontended mutex at control-plane rate (a handful of
//! events per second); nothing here touches the tuple hot path.

use std::io::Write;
use std::path::Path;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// One timestamped control-plane decision.
///
/// All timestamps are seconds on the runtime clock (`time_s`), matching
/// `MetricsSnapshot::time_s`; trace ids match the span log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalEvent {
    /// The controller applied a new split ratio to a dynamic-grouping edge.
    RatioApplied {
        /// Runtime clock, seconds.
        time_s: f64,
        /// Edge label, `"upstream->downstream"`.
        edge: String,
        /// Normalized per-task weights that were applied.
        ratio: Vec<f64>,
    },
    /// The detector flagged a worker as misbehaving.
    WorkerFlagged {
        /// Runtime clock, seconds.
        time_s: f64,
        /// Flagged worker id.
        worker: usize,
        /// Observed / predicted per-tuple latency that tripped the detector, µs.
        latency_us: f64,
    },
    /// The detector cleared a previously flagged worker.
    WorkerRecovered {
        /// Runtime clock, seconds.
        time_s: f64,
        /// Recovered worker id.
        worker: usize,
    },
    /// The supervisor restarted a dead task or superseded a hung one.
    TaskRestart {
        /// Runtime clock, seconds.
        time_s: f64,
        /// Restarted task id.
        task: usize,
        /// Generation the task was restarted into.
        generation: u64,
        /// Why: `"dead"` (panicked/exited) or `"hung"` (heartbeat stale).
        reason: String,
    },
    /// A failed or timed-out message was scheduled for replay.
    ReplayScheduled {
        /// Runtime clock, seconds.
        time_s: f64,
        /// Spout message id.
        message_id: u64,
        /// Attempt number this schedule will become (1 = first replay).
        attempt: u32,
        /// Backoff delay before re-emission, milliseconds.
        delay_ms: f64,
    },
    /// A scheduled replay was re-emitted under a fresh tuple tree.
    ReplayEmitted {
        /// Runtime clock, seconds.
        time_s: f64,
        /// Spout message id.
        message_id: u64,
        /// Attempt number of this re-emission (1 = first replay).
        attempt: u32,
        /// Root id of the fresh tree.
        root: u64,
        /// Trace id of the fresh tree (`splitmix64(root)`).
        trace_id: u64,
    },
    /// The replay budget was exhausted; the message permanently failed.
    ReplayExhausted {
        /// Runtime clock, seconds.
        time_s: f64,
        /// Spout message id.
        message_id: u64,
        /// Replay attempts consumed before giving up.
        attempts: u32,
    },
    /// A fault from the injection plan was armed at submit time.
    FaultPlanned {
        /// Runtime clock, seconds (0 at submit).
        time_s: f64,
        /// Debug rendering of the planned fault.
        description: String,
    },
    /// A one-shot fault (panic/hang) actually fired in a task.
    FaultInjected {
        /// Runtime clock, seconds.
        time_s: f64,
        /// Task the fault fired in.
        task: usize,
        /// Fault kind, `"panic"` or `"hang"`.
        kind: String,
    },
    /// Flow-control credits were granted to a task's pool (initial window
    /// at submit, or a window grow).  Per-batch re-grants are data plane
    /// and are *not* journaled — only window-level decisions are.
    CreditGranted {
        /// Runtime clock, seconds.
        time_s: f64,
        /// Consumer task whose pool was credited.
        task: usize,
        /// Credits granted.
        amount: u64,
    },
    /// Flow-control credits were revoked from a task's pool (window
    /// shrink).
    CreditRevoked {
        /// Runtime clock, seconds.
        time_s: f64,
        /// Consumer task whose pool was debited.
        task: usize,
        /// Credits actually taken (never more than were available).
        amount: u64,
    },
    /// The spout rate cap changed (adaptive AIMD step, controller
    /// actuation, or a manual handle call).
    ThrottleChanged {
        /// Runtime clock, seconds.
        time_s: f64,
        /// New cap in tuples/s across all spouts; `None` means uncapped.
        rate_cap: Option<f64>,
        /// What changed it: `"aimd"`, `"controller"` or `"manual"`.
        reason: String,
    },
    /// The runtime was submitted with checkpoints enabled under the given
    /// recovery guarantee.
    RecoveryMode {
        /// Runtime clock, seconds (0 at submit).
        time_s: f64,
        /// Guarantee name: `"exactly_once_effect"`, `"at_least_once"` or
        /// `"approximate"`.
        mode: String,
    },
    /// A stateful task deposited a checkpoint.
    CheckpointTaken {
        /// Runtime clock, seconds.
        time_s: f64,
        /// Checkpointing task id.
        task: usize,
        /// Supervisor generation of the depositing incarnation.
        generation: u64,
        /// `"full"` or `"delta"`.
        kind: String,
        /// Snapshot payload size, bytes.
        bytes: u64,
        /// Time spent snapshotting and depositing, microseconds.
        duration_us: u64,
    },
    /// A restarted task restored state from its latest checkpoint.
    StateRestored {
        /// Runtime clock, seconds.
        time_s: f64,
        /// Restored task id.
        task: usize,
        /// Generation the task was restarted into.
        generation: u64,
        /// Age of the restored snapshot at restore time, seconds; `None`
        /// when only the input log existed (no snapshot yet).
        snapshot_age_s: Option<f64>,
        /// Restore latency (load + decode + re-execution), microseconds.
        latency_us: u64,
    },
    /// A restarted task had no state to restore: it was stateless,
    /// checkpoints were off, or nothing had been deposited yet.  Also
    /// covers hang supersession — the superseded thread's in-memory state
    /// is abandoned either way.
    StateLost {
        /// Runtime clock, seconds.
        time_s: f64,
        /// Restarted task id.
        task: usize,
        /// Generation the task was restarted into.
        generation: u64,
        /// Age of the newest (unrestorable or absent) snapshot, seconds;
        /// `None` when no snapshot existed.
        snapshot_age_s: Option<f64>,
    },
    /// The metrics-history window hit its retention cap
    /// (`EngineConfig::metrics_history_cap`) and began evicting its oldest
    /// snapshots.  Journaled once per run, the first time it trips.
    HistoryTruncated {
        /// Runtime clock, seconds.
        time_s: f64,
        /// Snapshots retained from that point on.
        retained: usize,
    },
    /// The distributed coordinator spawned (or respawned) a worker
    /// process.
    WorkerSpawned {
        /// Runtime clock, seconds.
        time_s: f64,
        /// Worker slot index.
        worker: usize,
        /// OS process id of the spawned worker.
        pid: u32,
        /// Connection generation the spawn begins (0 = first launch).
        generation: u64,
    },
    /// A worker process connected and completed its hello/assign
    /// handshake.
    WorkerConnected {
        /// Runtime clock, seconds.
        time_s: f64,
        /// Worker slot index.
        worker: usize,
        /// OS process id the worker reported in its hello.
        pid: u32,
    },
    /// A worker connection died (process exit, kill, or socket error);
    /// its in-flight deliveries were failed into replay.
    WorkerDisconnected {
        /// Runtime clock, seconds.
        time_s: f64,
        /// Worker slot index.
        worker: usize,
        /// Human-readable cause.
        reason: String,
        /// Trace ids of sampled tuple trees whose in-flight deliveries
        /// were lost with the connection (capped; cross-references the
        /// span log so a broken trace points at its disconnect).
        lost_trace_ids: Vec<u64>,
    },
    /// A worker completed its hello/assign/restore handshake and is
    /// serving tuples.  Decomposes the bring-up so respawn cost is
    /// attributable: handshake (hello → assign sent) vs restore (state
    /// replayed into the fresh process).
    WorkerAssigned {
        /// Runtime clock, seconds.
        time_s: f64,
        /// Worker slot index.
        worker: usize,
        /// OS process id of the assigned worker.
        pid: u32,
        /// Connection generation the assignment begins.
        generation: u64,
        /// Number of tasks assigned.
        tasks: usize,
        /// Estimated worker-clock offset (`coordinator_now_us −
        /// worker_clock_us` at hello receipt) used to normalize the
        /// worker's span timestamps.
        clock_offset_us: i64,
        /// Hello-read → assign-sent duration, microseconds.
        handshake_us: u64,
        /// State-restore duration (all tasks), microseconds; 0 on a first
        /// launch with nothing to restore.
        restore_us: u64,
    },
    /// The supervisor reaped a dead worker process.  `cause` carries the
    /// worker's structured last words when it managed to emit them
    /// (panic payload, decode error) — otherwise the exit status.
    WorkerDied {
        /// Runtime clock, seconds.
        time_s: f64,
        /// Worker slot index.
        worker: usize,
        /// OS process id of the dead worker.
        pid: u32,
        /// Connection generation that died.
        generation: u64,
        /// Best known cause of death.
        cause: String,
    },
    /// A connected worker went quiet: no frame received for longer than
    /// the heartbeat-lag threshold (twice the metrics push interval).
    /// Journaled once per silence; a fresh frame re-arms the detector.
    WorkerHeartbeatLag {
        /// Runtime clock, seconds.
        time_s: f64,
        /// Worker slot index.
        worker: usize,
        /// Observed silence, seconds.
        lag_s: f64,
    },
}

impl JournalEvent {
    /// The event's timestamp on the runtime clock, seconds.
    pub fn time_s(&self) -> f64 {
        match self {
            JournalEvent::RatioApplied { time_s, .. }
            | JournalEvent::WorkerFlagged { time_s, .. }
            | JournalEvent::WorkerRecovered { time_s, .. }
            | JournalEvent::TaskRestart { time_s, .. }
            | JournalEvent::ReplayScheduled { time_s, .. }
            | JournalEvent::ReplayEmitted { time_s, .. }
            | JournalEvent::ReplayExhausted { time_s, .. }
            | JournalEvent::FaultPlanned { time_s, .. }
            | JournalEvent::FaultInjected { time_s, .. }
            | JournalEvent::CreditGranted { time_s, .. }
            | JournalEvent::CreditRevoked { time_s, .. }
            | JournalEvent::ThrottleChanged { time_s, .. }
            | JournalEvent::RecoveryMode { time_s, .. }
            | JournalEvent::CheckpointTaken { time_s, .. }
            | JournalEvent::StateRestored { time_s, .. }
            | JournalEvent::StateLost { time_s, .. }
            | JournalEvent::HistoryTruncated { time_s, .. }
            | JournalEvent::WorkerSpawned { time_s, .. }
            | JournalEvent::WorkerConnected { time_s, .. }
            | JournalEvent::WorkerDisconnected { time_s, .. }
            | JournalEvent::WorkerAssigned { time_s, .. }
            | JournalEvent::WorkerDied { time_s, .. }
            | JournalEvent::WorkerHeartbeatLag { time_s, .. } => *time_s,
        }
    }

    /// Short kind tag, handy for filtering and assertions.
    pub fn kind(&self) -> &'static str {
        match self {
            JournalEvent::RatioApplied { .. } => "ratio_applied",
            JournalEvent::WorkerFlagged { .. } => "worker_flagged",
            JournalEvent::WorkerRecovered { .. } => "worker_recovered",
            JournalEvent::TaskRestart { .. } => "task_restart",
            JournalEvent::ReplayScheduled { .. } => "replay_scheduled",
            JournalEvent::ReplayEmitted { .. } => "replay_emitted",
            JournalEvent::ReplayExhausted { .. } => "replay_exhausted",
            JournalEvent::FaultPlanned { .. } => "fault_planned",
            JournalEvent::FaultInjected { .. } => "fault_injected",
            JournalEvent::CreditGranted { .. } => "credit_granted",
            JournalEvent::CreditRevoked { .. } => "credit_revoked",
            JournalEvent::ThrottleChanged { .. } => "throttle_changed",
            JournalEvent::RecoveryMode { .. } => "recovery_mode",
            JournalEvent::CheckpointTaken { .. } => "checkpoint_taken",
            JournalEvent::StateRestored { .. } => "state_restored",
            JournalEvent::StateLost { .. } => "state_lost",
            JournalEvent::HistoryTruncated { .. } => "history_truncated",
            JournalEvent::WorkerSpawned { .. } => "worker_spawned",
            JournalEvent::WorkerConnected { .. } => "worker_connected",
            JournalEvent::WorkerDisconnected { .. } => "worker_disconnected",
            JournalEvent::WorkerAssigned { .. } => "worker_assigned",
            JournalEvent::WorkerDied { .. } => "worker_died",
            JournalEvent::WorkerHeartbeatLag { .. } => "worker_heartbeat_lag",
        }
    }
}

/// Thread-safe append-only event log.
#[derive(Default)]
pub struct Journal {
    events: Mutex<Vec<JournalEvent>>,
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Self {
        Journal::default()
    }

    /// Appends one event.
    pub fn append(&self, event: JournalEvent) {
        self.events.lock().push(event);
    }

    /// Snapshot of all events in append order.
    pub fn events(&self) -> Vec<JournalEvent> {
        self.events.lock().clone()
    }

    /// Number of events appended so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Renders the journal as JSONL.
    pub fn to_jsonl(&self) -> String {
        events_jsonl(&self.events())
    }

    /// Writes the journal as JSONL to `path`.
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_jsonl().as_bytes())
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal").field("len", &self.len()).finish()
    }
}

/// Renders a slice of events as JSONL (one event per line).
pub fn events_jsonl(events: &[JournalEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&serde_json::to_string(e).expect("journal serialization cannot fail"));
        out.push('\n');
    }
    out
}

/// Writes a slice of events as JSONL to `path` (the free-function
/// counterpart of [`Journal::write_jsonl`], for drained
/// [`ThreadedReport::journal`](crate::rt::ThreadedReport) slices).
pub fn write_events_jsonl(path: &Path, events: &[JournalEvent]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(events_jsonl(events).as_bytes())
}

/// Parses a JSONL journal back into events (inverse of [`events_jsonl`]).
pub fn parse_jsonl(text: &str) -> Result<Vec<JournalEvent>, serde_json::Error> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(serde_json::from_str)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<JournalEvent> {
        vec![
            JournalEvent::FaultPlanned {
                time_s: 0.0,
                description: "WorkerSlowdown { worker: 2, factor: 10.0 }".into(),
            },
            JournalEvent::WorkerFlagged {
                time_s: 1.25,
                worker: 2,
                latency_us: 312.5,
            },
            JournalEvent::RatioApplied {
                time_s: 1.25,
                edge: "src->work".into(),
                ratio: vec![0.5, 0.0, 0.5],
            },
            JournalEvent::TaskRestart {
                time_s: 2.0,
                task: 3,
                generation: 1,
                reason: "dead".into(),
            },
            JournalEvent::ReplayScheduled {
                time_s: 2.1,
                message_id: 17,
                attempt: 1,
                delay_ms: 100.0,
            },
            JournalEvent::ReplayEmitted {
                time_s: 2.2,
                message_id: 17,
                attempt: 1,
                root: 99,
                trace_id: crate::acker::splitmix64(99),
            },
            JournalEvent::CreditGranted {
                time_s: 2.5,
                task: 3,
                amount: 64,
            },
            JournalEvent::CreditRevoked {
                time_s: 2.6,
                task: 3,
                amount: 16,
            },
            JournalEvent::ThrottleChanged {
                time_s: 2.75,
                rate_cap: Some(1500.0),
                reason: "aimd".into(),
            },
            JournalEvent::RecoveryMode {
                time_s: 2.8,
                mode: "exactly_once_effect".into(),
            },
            JournalEvent::CheckpointTaken {
                time_s: 3.0,
                task: 3,
                generation: 1,
                kind: "full".into(),
                bytes: 4096,
                duration_us: 180,
            },
            JournalEvent::StateRestored {
                time_s: 3.5,
                task: 3,
                generation: 2,
                snapshot_age_s: Some(0.5),
                latency_us: 240,
            },
            JournalEvent::StateLost {
                time_s: 3.6,
                task: 4,
                generation: 1,
                snapshot_age_s: None,
            },
            JournalEvent::HistoryTruncated {
                time_s: 4.0,
                retained: 4096,
            },
            JournalEvent::WorkerAssigned {
                time_s: 4.2,
                worker: 1,
                pid: 4711,
                generation: 1,
                tasks: 3,
                clock_offset_us: -1_250,
                handshake_us: 800,
                restore_us: 2_400,
            },
            JournalEvent::WorkerHeartbeatLag {
                time_s: 4.5,
                worker: 1,
                lag_s: 2.5,
            },
            JournalEvent::WorkerDisconnected {
                time_s: 4.8,
                worker: 1,
                reason: "connection closed".into(),
                lost_trace_ids: vec![crate::acker::splitmix64(99)],
            },
            JournalEvent::WorkerDied {
                time_s: 4.9,
                worker: 1,
                pid: 4711,
                generation: 1,
                cause: "panic: bolt exploded".into(),
            },
        ]
    }

    #[test]
    fn jsonl_round_trips() {
        let journal = Journal::new();
        for e in sample_events() {
            journal.append(e);
        }
        assert_eq!(journal.len(), 18);
        let back = parse_jsonl(&journal.to_jsonl()).unwrap();
        assert_eq!(back, journal.events());
    }

    #[test]
    fn kinds_and_timestamps() {
        let events = sample_events();
        assert_eq!(events[0].kind(), "fault_planned");
        assert_eq!(events[2].kind(), "ratio_applied");
        assert!((events[1].time_s() - 1.25).abs() < 1e-12);
        // Append order is chronological for a well-behaved writer.
        let times: Vec<f64> = events.iter().map(|e| e.time_s()).collect();
        let mut sorted = times.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(times, sorted);
    }
}

//! Observability for the threaded runtime: sampled distributed tracing, a
//! live metrics registry, and a control-plane event journal.
//!
//! The interval-level [`crate::metrics::MetricsSnapshot`]s answer *what* the
//! topology did; this module answers *why*.  Three pillars:
//!
//! * **Sampled tracing** ([`trace`]): every tuple tree already has a 64-bit
//!   root id; `splitmix64(root)` doubles as its trace id.  A configurable
//!   fraction of trees (`RtConfig::trace_sample_rate`) records one
//!   [`Span`] per hop — component, task, worker, queue wait, execute time,
//!   batch id, replay attempt — plus the terminal ack/fail/timeout event.
//!   Spans land in per-task ring buffers and are merged at shutdown into
//!   Chrome `trace_event` JSON (viewable in `chrome://tracing` / Perfetto)
//!   and a JSONL span log.
//! * **Metrics registry** ([`registry`]): counters, gauges, and log2-bucket
//!   latency summaries registered by name + labels.  Updates are plain
//!   atomic stores through cached handles (no lock, no lookup); the
//!   registry renders Prometheus text exposition, served live by the
//!   minimal [`MetricsServer`] (`RtConfig::metrics_addr`) or dumped to a
//!   file for tests.
//! * **Event journal** ([`journal`]): an append-only timestamped log of
//!   control-plane decisions — routing-ratio updates, supervisor restarts,
//!   replay/backoff decisions, fault injections — serialized to JSONL and
//!   cross-referencable with trace ids.
//!
//! The disabled path (sample rate 0, no registry address) costs one branch
//! per batch on the data plane and allocates nothing; the `strip-telemetry`
//! cargo feature compiles even that out so the bench overhead gate can
//! measure the instrumented-but-disabled runtime against a truly
//! uninstrumented build.  See `DESIGN.md` §11.

pub mod http;
pub mod journal;
pub mod registry;
pub mod trace;

pub use http::MetricsServer;
pub use journal::{Journal, JournalEvent};
pub use registry::{Counter, Gauge, Registry, SampleValue, Summary};
pub use trace::{
    chrome_trace_json, chrome_trace_json_named, normalize_start_us, spans_jsonl, validate_spans,
    write_chrome_trace, write_spans_jsonl, Span, SpanKind, TraceSummary, Tracer,
};

/// Compile-time master switch for hot-path instrumentation.
///
/// `true` in normal builds; the `strip-telemetry` feature turns it into
/// `false`, letting the optimizer delete every tracing branch from the data
/// plane.  The bench overhead gate compares the two builds.
pub const HOT_PATH_TELEMETRY: bool = cfg!(not(feature = "strip-telemetry"));

//! Tuples: the unit of data flowing through a topology.
//!
//! A [`Tuple`] is an ordered list of dynamically typed [`Value`]s together
//! with the schema ([`Fields`]) of the stream it was emitted on.  This
//! mirrors Storm's `backtype.storm.tuple.Tuple`.

use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize};

/// A dynamically typed value carried inside a [`Tuple`].
///
/// Values are cheap to clone: strings are reference counted and byte blobs
/// use [`bytes::Bytes`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Absence of a value.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed 64-bit integer.
    I64(i64),
    /// 64-bit float.  `NaN` compares equal to `NaN` for grouping purposes.
    F64(f64),
    /// Immutable shared string.
    Str(Arc<str>),
    /// Raw bytes payload.
    Bytes(bytes::Bytes),
    /// Nested list of values.
    List(Vec<Value>),
}

impl Value {
    /// Returns the boolean if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer if this is an `I64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float if this is an `F64` (or a lossless widening of `I64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the string slice if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the byte slice if this is a `Bytes`.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b.as_ref()),
            _ => None,
        }
    }

    /// Returns the list if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// True if this value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Approximate in-memory size of the value payload in bytes, used by the
    /// simulator's network-transfer model.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::I64(_) | Value::F64(_) => 8,
            Value::Str(s) => s.len(),
            Value::Bytes(b) => b.len(),
            Value::List(l) => l.iter().map(Value::size_bytes).sum::<usize>() + 8,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::I64(a), Value::I64(b)) => a == b,
            // Bitwise comparison: NaN == NaN, and +0.0 != -0.0.  This gives a
            // total equivalence relation so F64 keys behave deterministically
            // in fields groupings.
            (Value::F64(a), Value::F64(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bytes(a), Value::Bytes(b)) => a == b,
            (Value::List(a), Value::List(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Discriminant first so e.g. I64(0) and Bool(false) hash differently.
        std::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::I64(v) => v.hash(state),
            Value::F64(v) => v.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Bytes(b) => b.hash(state),
            Value::List(l) => l.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(v as i64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::I64(v as i64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::I64(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}
impl From<Arc<str>> for Value {
    fn from(v: Arc<str>) -> Self {
        Value::Str(v)
    }
}
impl From<bytes::Bytes> for Value {
    fn from(v: bytes::Bytes) -> Self {
        Value::Bytes(v)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::List(v)
    }
}

/// The ordered field names (schema) of a stream.
///
/// `Fields` is cheap to clone (`Arc` internally) because every tuple on a
/// stream shares the stream's schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fields {
    names: Arc<[String]>,
}

impl Fields {
    /// Builds a schema from field names.  Order is significant.
    pub fn new<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Fields {
            names: names.into_iter().map(Into::into).collect(),
        }
    }

    /// An empty schema (for tuples addressed positionally only).  Returns
    /// clones of one interned allocation: `Tuple::of` attaches this per
    /// tuple on the runtime's hot path, so it must be a refcount bump, not
    /// a fresh `Arc` — and interning makes all empty schemas pointer-equal,
    /// which lets the router skip rekeying schema-less streams entirely.
    pub fn none() -> Self {
        static EMPTY: OnceLock<Fields> = OnceLock::new();
        EMPTY
            .get_or_init(|| Fields {
                names: Arc::from([]),
            })
            .clone()
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Index of `field`, if present.
    pub fn index_of(&self, field: &str) -> Option<usize> {
        self.names.iter().position(|n| n == field)
    }

    /// True if the schema contains `field`.
    pub fn contains(&self, field: &str) -> bool {
        self.index_of(field).is_some()
    }

    /// Iterates field names in schema order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }

    /// True when both schemas share one allocation.  O(1), so the runtime
    /// can skip re-attaching a schema a tuple already carries; `false` for
    /// equal-content schemas from different declarations is fine (callers
    /// fall back to the by-value path).
    pub fn ptr_eq(&self, other: &Fields) -> bool {
        Arc::ptr_eq(&self.names, &other.names)
    }
}

/// An immutable data record: a list of [`Value`]s plus the stream schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tuple {
    values: Arc<[Value]>,
    fields: Fields,
}

impl Tuple {
    /// Builds a tuple from values with an empty schema.
    pub fn of<I>(values: I) -> Self
    where
        I: IntoIterator<Item = Value>,
    {
        Tuple {
            values: values.into_iter().collect(),
            fields: Fields::none(),
        }
    }

    /// Builds a tuple with an explicit schema.  The number of values must
    /// match the number of fields (checked in debug builds).
    pub fn with_fields<I>(values: I, fields: Fields) -> Self
    where
        I: IntoIterator<Item = Value>,
    {
        let values: Arc<[Value]> = values.into_iter().collect();
        debug_assert!(
            fields.is_empty() || values.len() == fields.len(),
            "tuple arity {} != schema arity {}",
            values.len(),
            fields.len()
        );
        Tuple { values, fields }
    }

    /// Re-attaches a schema (used by the runtime when routing a tuple onto a
    /// declared stream).
    pub fn rekeyed(&self, fields: Fields) -> Self {
        Tuple {
            values: Arc::clone(&self.values),
            fields,
        }
    }

    /// Like [`rekeyed`](Self::rekeyed) but consumes the tuple, moving the
    /// shared values instead of bumping their refcount.  Use when routing
    /// the last (or only) copy of a tuple instance.
    pub fn into_rekeyed(self, fields: Fields) -> Self {
        Tuple {
            values: self.values,
            fields,
        }
    }

    /// The tuple's values in order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The schema of the stream this tuple was emitted on.
    pub fn fields(&self) -> &Fields {
        &self.fields
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Value at position `idx`.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Value of the named field, if the schema declares it.
    pub fn get_by_field(&self, field: &str) -> Option<&Value> {
        self.fields.index_of(field).and_then(|i| self.values.get(i))
    }

    /// Field-name → value map, mainly for debugging/tests.
    pub fn as_map(&self) -> BTreeMap<String, Value> {
        self.fields
            .iter()
            .zip(self.values.iter())
            .map(|(k, v)| (k.to_owned(), v.clone()))
            .collect()
    }

    /// Approximate serialized size of the tuple, used by the simulator's
    /// transfer-cost model.
    pub fn size_bytes(&self) -> usize {
        self.values.iter().map(Value::size_bytes).sum::<usize>() + 16
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match self.fields.names.get(i) {
                Some(name) => write!(f, "{name}={v}")?,
                None => write!(f, "{v}")?,
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn value_conversions_round_trip() {
        assert_eq!(Value::from(5i64).as_i64(), Some(5));
        assert_eq!(Value::from(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from("abc").as_str(), Some("abc"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(7i64).as_f64(), Some(7.0), "i64 widens to f64");
        assert_eq!(Value::from("abc").as_i64(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn nan_equals_nan_for_grouping() {
        let a = Value::F64(f64::NAN);
        let b = Value::F64(f64::NAN);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn same_numeric_value_different_type_not_equal() {
        assert_ne!(Value::I64(0), Value::Bool(false));
        assert_ne!(Value::I64(1), Value::F64(1.0));
        assert_ne!(hash_of(&Value::I64(0)), hash_of(&Value::Bool(false)));
    }

    #[test]
    fn equal_values_hash_equal() {
        let pairs = [
            (Value::from(42i64), Value::from(42i64)),
            (Value::from("url"), Value::from(String::from("url"))),
            (
                Value::List(vec![Value::from(1i64), Value::from("x")]),
                Value::List(vec![Value::from(1i64), Value::from("x")]),
            ),
        ];
        for (a, b) in pairs {
            assert_eq!(a, b);
            assert_eq!(hash_of(&a), hash_of(&b));
        }
    }

    #[test]
    fn fields_index_and_contains() {
        let f = Fields::new(["url", "ts", "user"]);
        assert_eq!(f.len(), 3);
        assert_eq!(f.index_of("ts"), Some(1));
        assert!(f.contains("user"));
        assert!(!f.contains("missing"));
        assert_eq!(f.iter().collect::<Vec<_>>(), vec!["url", "ts", "user"]);
    }

    #[test]
    fn tuple_field_access() {
        let t = Tuple::with_fields(
            [Value::from("http://a"), Value::from(100i64)],
            Fields::new(["url", "ts"]),
        );
        assert_eq!(t.get_by_field("url").unwrap().as_str(), Some("http://a"));
        assert_eq!(t.get_by_field("ts").unwrap().as_i64(), Some(100));
        assert!(t.get_by_field("nope").is_none());
        assert_eq!(t.arity(), 2);
        assert_eq!(t.get(1).unwrap().as_i64(), Some(100));
        assert!(t.get(2).is_none());
    }

    #[test]
    fn tuple_as_map_and_display() {
        let t = Tuple::with_fields(
            [Value::from("a"), Value::from(1i64)],
            Fields::new(["k", "v"]),
        );
        let m = t.as_map();
        assert_eq!(m["k"].as_str(), Some("a"));
        assert_eq!(format!("{t}"), "(k=a, v=1)");
        let bare = Tuple::of([Value::from(3i64)]);
        assert_eq!(format!("{bare}"), "(3)");
    }

    #[test]
    fn size_bytes_reflects_payload() {
        let small = Tuple::of([Value::from(1i64)]);
        let big = Tuple::of([Value::Bytes(bytes::Bytes::from(vec![0u8; 1000]))]);
        assert!(big.size_bytes() > small.size_bytes() + 900);
    }

    #[test]
    fn rekeyed_shares_values() {
        let t = Tuple::of([Value::from("x")]);
        let r = t.rekeyed(Fields::new(["url"]));
        assert_eq!(r.get_by_field("url").unwrap().as_str(), Some("x"));
        assert_eq!(t.values(), r.values());
    }

    #[test]
    fn display_list_and_bytes() {
        let v = Value::List(vec![Value::from(1i64), Value::from("a")]);
        assert_eq!(format!("{v}"), "[1, a]");
        let b = Value::Bytes(bytes::Bytes::from_static(b"xyz"));
        assert_eq!(format!("{b}"), "<3 bytes>");
    }
}

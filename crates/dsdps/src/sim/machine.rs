//! Machine model: capacity, co-location interference, external load and
//! worker slowdown faults.
//!
//! This is the simulator's substitute for the physical-cluster interference
//! the paper measures: the time a task needs for one tuple grows as the
//! machine's CPU pressure — from co-located stream workers *and* from
//! external (injected) load — approaches and exceeds capacity.

use serde::{Deserialize, Serialize};

/// Parameters of the interference (service-time inflation) model.
///
/// At service start the simulator computes the machine pressure
/// `p = (busy_executors + external_load_cores) / cores` and multiplies the
/// base service time by
///
/// ```text
/// mult(p) = 1 + softness * p           for p <= 1
/// mult(p) = (1 + softness) * p^gamma   for p >  1
/// ```
///
/// The linear low-load term models cache/memory-bandwidth contention that
/// exists even below saturation; the super-linear high-load term models CPU
/// time-slicing once the machine is oversubscribed.  Both effects are what
/// make per-worker performance a *nonlinear function of co-located load* —
/// precisely the signal the paper's DRNN features capture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterferenceModel {
    /// Sub-saturation contention slope (default 0.3).
    pub softness: f64,
    /// Oversubscription exponent (default 1.8).
    pub gamma: f64,
}

impl Default for InterferenceModel {
    fn default() -> Self {
        InterferenceModel {
            softness: 0.3,
            gamma: 1.8,
        }
    }
}

impl InterferenceModel {
    /// Service-time multiplier for pressure `p >= 0`.
    pub fn multiplier(&self, pressure: f64) -> f64 {
        let p = pressure.max(0.0);
        if p <= 1.0 {
            1.0 + self.softness * p
        } else {
            (1.0 + self.softness) * p.powf(self.gamma)
        }
    }
}

/// Live state of one simulated machine.
#[derive(Debug, Clone)]
pub struct MachineState {
    /// Core count.
    pub cores: usize,
    /// Number of executors currently in service on this machine.
    pub busy_executors: usize,
    /// Cores consumed by injected external load (faults, foreign jobs).
    pub external_load_cores: f64,
    /// Interference model parameters.
    pub model: InterferenceModel,
    /// Accumulated busy core-seconds in the current metrics interval.
    pub busy_core_seconds: f64,
}

impl MachineState {
    /// A machine with `cores` cores and the given interference model.
    pub fn new(cores: usize, model: InterferenceModel) -> Self {
        MachineState {
            cores,
            busy_executors: 0,
            external_load_cores: 0.0,
            model,
            busy_core_seconds: 0.0,
        }
    }

    /// CPU pressure right now: busy executors plus external load, relative
    /// to capacity.
    pub fn pressure(&self) -> f64 {
        (self.busy_executors as f64 + self.external_load_cores) / self.cores as f64
    }

    /// Service-time multiplier for a task starting service now.
    pub fn interference_multiplier(&self) -> f64 {
        self.model.multiplier(self.pressure())
    }
}

/// A scheduled disturbance in the simulated cluster.
///
/// These model the paper's "misbehaving workers": processes on shared
/// machines that hog resources, or workers whose own service rate collapses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Fault {
    /// Adds `cores` of external CPU load to a machine between `from_s` and
    /// `until_s` (a resource-hogging co-located process).
    ExternalLoad {
        /// Target machine index.
        machine: usize,
        /// Cores of load to add.
        cores: f64,
        /// Start time (virtual seconds).
        from_s: f64,
        /// End time (virtual seconds).
        until_s: f64,
    },
    /// Multiplies the service time of every task in a worker by `factor`
    /// between `from_s` and `until_s` (a degraded/misbehaving worker).
    WorkerSlowdown {
        /// Target worker index.
        worker: usize,
        /// Service-time multiplier (> 1 slows the worker down).
        factor: f64,
        /// Start time (virtual seconds).
        from_s: f64,
        /// End time (virtual seconds).
        until_s: f64,
    },
}

impl Fault {
    /// The time the fault begins.
    pub fn from_s(&self) -> f64 {
        match self {
            Fault::ExternalLoad { from_s, .. } | Fault::WorkerSlowdown { from_s, .. } => *from_s,
        }
    }

    /// The time the fault ends.
    pub fn until_s(&self) -> f64 {
        match self {
            Fault::ExternalLoad { until_s, .. } | Fault::WorkerSlowdown { until_s, .. } => *until_s,
        }
    }

    /// Validates the time window.
    pub fn is_valid(&self) -> bool {
        self.from_s() >= 0.0 && self.until_s() > self.from_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_is_one_plus_softness_at_idle_and_saturation() {
        let m = InterferenceModel::default();
        assert!((m.multiplier(0.0) - 1.0).abs() < 1e-12);
        assert!((m.multiplier(1.0) - 1.3).abs() < 1e-12);
    }

    #[test]
    fn multiplier_is_monotone_and_continuous_at_saturation() {
        let m = InterferenceModel::default();
        let mut last = 0.0;
        for i in 0..60 {
            let p = i as f64 * 0.05;
            let v = m.multiplier(p);
            assert!(v >= last, "multiplier must be monotone in pressure");
            last = v;
        }
        // Continuity at p = 1.
        let below = m.multiplier(1.0 - 1e-9);
        let above = m.multiplier(1.0 + 1e-9);
        assert!((below - above).abs() < 1e-6);
    }

    #[test]
    fn oversubscription_is_superlinear() {
        let m = InterferenceModel::default();
        let at2 = m.multiplier(2.0);
        let at4 = m.multiplier(4.0);
        assert!(
            at4 / at2 > 2.0,
            "doubling pressure should more than double the multiplier"
        );
    }

    #[test]
    fn negative_pressure_clamped() {
        let m = InterferenceModel::default();
        assert_eq!(m.multiplier(-3.0), 1.0);
    }

    #[test]
    fn machine_pressure_counts_external_load() {
        let mut s = MachineState::new(4, InterferenceModel::default());
        assert_eq!(s.pressure(), 0.0);
        s.busy_executors = 2;
        s.external_load_cores = 2.0;
        assert!((s.pressure() - 1.0).abs() < 1e-12);
        assert!((s.interference_multiplier() - 1.3).abs() < 1e-12);
        s.external_load_cores = 6.0;
        assert!(s.interference_multiplier() > 2.0);
    }

    #[test]
    fn fault_validation() {
        let ok = Fault::ExternalLoad {
            machine: 0,
            cores: 3.0,
            from_s: 10.0,
            until_s: 20.0,
        };
        assert!(ok.is_valid());
        assert_eq!(ok.from_s(), 10.0);
        assert_eq!(ok.until_s(), 20.0);
        let bad = Fault::WorkerSlowdown {
            worker: 1,
            factor: 4.0,
            from_s: 20.0,
            until_s: 10.0,
        };
        assert!(!bad.is_valid());
    }
}

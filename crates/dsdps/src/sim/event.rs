//! Deterministic event queue for the discrete-event simulator.
//!
//! Events are ordered by `(time, sequence)`: ties in virtual time break by
//! insertion order, which makes simulation runs bit-for-bit reproducible for
//! a given seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled occurrence in virtual time.
#[derive(Debug)]
pub struct Scheduled<E> {
    /// Virtual time in seconds.
    pub time: f64,
    /// Insertion sequence (tie-break).
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse both keys: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap event queue keyed by `(time, insertion order)`.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at absolute virtual time `time` (seconds).
    pub fn schedule(&mut self, time: f64, event: E) {
        debug_assert!(time.is_finite() && time >= 0.0, "bad event time {time}");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop()
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "first");
        q.schedule(1.0, "second");
        q.schedule(1.0, "third");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(5.0, ());
        assert_eq!(q.peek_time(), Some(5.0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(4.0, 4);
        assert_eq!(q.pop().unwrap().event, 1);
        q.schedule(2.0, 2);
        q.schedule(3.0, 3);
        assert_eq!(q.pop().unwrap().event, 2);
        assert_eq!(q.pop().unwrap().event, 3);
        assert_eq!(q.pop().unwrap().event, 4);
    }
}

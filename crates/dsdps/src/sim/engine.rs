//! The discrete-event simulated runtime.
//!
//! [`SimRuntime`] executes a [`Topology`] under a virtual clock.  Every task
//! is a simulated executor placed on a worker process on a machine
//! ([`crate::scheduler`]); processing one tuple takes
//! `base_service_time × interference × worker_slowdown × (1 ± jitter)`
//! where the interference multiplier comes from the hosting machine's
//! current CPU pressure ([`super::machine`]).  Runs are deterministic for a
//! given seed.
//!
//! # Event executor
//!
//! The engine is built for scenario sweeps that advance tens of millions of
//! tuples per second of wall time:
//!
//! * **Lean heap events.**  Events are small copyable records on a binary
//!   heap ([`super::event::EventQueue`]), strictly time-ordered with a
//!   deterministic FIFO tie-break on sequence number.  Handlers yield
//!   successor events; no event carries a tuple payload.
//! * **Slab-indexed tuple instances.**  In-flight tuple instances live in an
//!   indexed slab with a free-list; queues and transit buffers hold compact
//!   `u32` indices, and forwarding a tuple between tasks moves an index, not
//!   a [`Tuple`] clone.
//! * **Batch-granular coalescing.**  One service event advances up to
//!   [`RtConfig::batch_size`] queued tuples at a task, mirroring the
//!   threaded runtime's batching.  The default batch size of 1 reproduces
//!   per-tuple semantics exactly.
//! * **Wake events instead of polling.**  A spout throttled by
//!   `max_spout_pending` or backpressure parks until a completed tuple tree
//!   or a backpressure-clear wakes it, instead of re-polling on a timer.
//!   (Only a *voluntarily idle* spout — one that returned no tuple while
//!   alive, e.g. a rate-paced source — is re-polled after a short delay,
//!   because the [`Spout`] trait has no next-emission-time hint.)
//! * **Shared data plane.**  Grouping ([`make_grouping`]), acking
//!   ([`Acker`], single-shard) and latency statistics
//!   ([`OnlineStats`]/[`LatencyHistogram`]) are the same components the
//!   threaded runtime runs, driven from the same [`EngineConfig`] and
//!   [`RtConfig`] knobs, so sim and rt stay behaviorally comparable by
//!   construction.
//!
//! The engine exposes the two surfaces the paper's control framework needs:
//! a [`crate::metrics::MetricsSnapshot`] stream via the
//! control hook (observation), and the topology's
//! [`DynamicGroupingHandle`](crate::grouping::dynamic::DynamicGroupingHandle)s
//! (actuation).

use std::collections::VecDeque;

use crate::acker::{splitmix64, Acker, Completion, RootId, TreeOutcome};
use crate::component::{Bolt, BoltOutput, Emission, Spout, SpoutOutput, TopologyContext};
use crate::config::EngineConfig;
use crate::error::{Error, Result};
use crate::grouping::{make_grouping, Grouping, GroupingSpec};
use crate::metrics::{
    LatencyHistogram, MachineStats, MetricsHistory, MetricsSnapshot, OnlineStats, TaskStats,
    TopologyStats, WorkerStats,
};
use crate::rt::RtConfig;
use crate::scheduler::{even_placement, MachineId, Placement, WorkerId};
use crate::stream::StreamId;
use crate::telemetry::journal::{Journal, JournalEvent};
use crate::topology::{ComponentKind, TaskId, Topology};
use crate::tuple::{Fields, Tuple};

use super::event::EventQueue;
use super::machine::{Fault, InterferenceModel, MachineState};

/// Delay before re-polling a spout that volunteered no tuple while alive
/// (seconds).  This is the only timer-based poll left: the [`Spout`] trait
/// cannot tell the engine when the next tuple becomes due, so a rate-paced
/// source is re-asked on this cadence.  Throttled spouts do **not** use it —
/// they park and are woken by tree completions or backpressure clears.
const IDLE_REPOLL_S: f64 = 0.001;

enum TaskKind {
    Spout(Box<dyn Spout>),
    Bolt(Box<dyn Bolt>),
}

/// One outbound edge of a producer task.
struct OutRoute {
    stream: StreamId,
    fields: Fields,
    subscriber_base: usize,
    grouping: Box<dyn Grouping>,
    is_direct: bool,
}

#[derive(Debug, Default, Clone)]
struct TaskCounters {
    executed: u64,
    emitted: u64,
    acked: u64,
    failed: u64,
    latency_sum_us: f64,
    busy_s: f64,
}

#[derive(Debug, Default, Clone)]
struct WorkerCounters {
    tuples_in: u64,
    tuples_out: u64,
}

#[derive(Debug, Default)]
struct TopoCounters {
    spout_emitted: u64,
    acked: u64,
    failed: u64,
    timed_out: u64,
    complete_us: OnlineStats,
    complete_hist_us: LatencyHistogram,
}

/// One in-flight tuple instance.  `root == 0` marks an untracked instance;
/// real roots start at 1 (see `next_root`).
struct Instance {
    tuple: Tuple,
    root: RootId,
    edge: u64,
}

/// Indexed storage for in-flight tuple instances.  Freed slots keep their
/// last instance until reuse (the overwrite on the next alloc drops it), so
/// the steady-state path never allocates.
#[derive(Default)]
struct Slab {
    slots: Vec<Instance>,
    free: Vec<u32>,
}

impl Slab {
    fn alloc(&mut self, tuple: Tuple, root: RootId, edge: u64) -> u32 {
        if let Some(i) = self.free.pop() {
            let slot = &mut self.slots[i as usize];
            slot.tuple = tuple;
            slot.root = root;
            slot.edge = edge;
            i
        } else {
            self.slots.push(Instance { tuple, root, edge });
            (self.slots.len() - 1) as u32
        }
    }
}

struct TaskRuntime {
    component_name: String,
    kind: TaskKind,
    /// Queued tuple instances (slab indices) awaiting service (bolts).
    queue: VecDeque<u32>,
    /// Instances popped for the batch currently in service (bolts).
    in_flight: Vec<u32>,
    /// Emissions staged between a spout's wake and its `SpoutFinish`.
    staged: Vec<Emission>,
    /// In-transit instances from same-worker producers, `(ready, idx)`.
    /// Ready times are non-decreasing by construction: producers push in
    /// virtual-time order and the per-class transfer latency is constant.
    transit_local: VecDeque<(f64, u32)>,
    /// In-transit instances from remote-worker producers, `(ready, idx)`.
    transit_remote: VecDeque<(f64, u32)>,
    /// Generation of the currently scheduled `DeliveryWake`; stale wakes
    /// (scheduled before an earlier arrival superseded them) are dropped.
    wake_gen: u32,
    /// Time of the scheduled delivery wake; `INFINITY` when none is pending.
    wake_time: f64,
    busy: bool,
    /// Spouts: parked until a tree completion or backpressure clear.
    blocked: bool,
    /// Spouts: true once `next_tuple` returned `false`.
    exhausted: bool,
    /// Spouts: tracked tuple trees in flight.
    pending_roots: usize,
    /// Service duration of the batch currently in service.
    in_service_s: f64,
    /// Tuples the scheduled `Finish` will advance.
    in_service_k: u32,
    routes: Vec<OutRoute>,
    base_cost_us: f64,
    jitter: f64,
    ctr: TaskCounters,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    SpoutWake { task: u32 },
    SpoutFinish { task: u32 },
    DeliveryWake { dest: u32, gen: u32 },
    Finish { task: u32 },
    MetricsTick,
    BoltTick,
    ApplyFault { index: u32, starting: bool },
}

/// Summary of a completed simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Final virtual time (seconds).
    pub end_time_s: f64,
    /// Events processed.
    pub events: u64,
    /// Total tuples emitted by spouts.
    pub spout_emitted: u64,
    /// Tuple trees fully acked.
    pub acked: u64,
    /// Tuple trees explicitly failed.
    pub failed: u64,
    /// Tuple trees timed out.
    pub timed_out: u64,
    /// Mean complete latency over the whole run (ms).
    pub avg_complete_latency_ms: f64,
    /// p99 complete latency over the whole run (ms).
    pub p99_complete_latency_ms: f64,
    /// Mean acked throughput (trees/s).
    pub avg_throughput: f64,
    /// Metrics snapshots produced.
    pub snapshots: usize,
}

/// Callback invoked at every metrics interval — the control framework's
/// entry point.
pub type ControlHook = Box<dyn FnMut(&MetricsSnapshot) + Send>;

/// Discrete-event simulated runtime for a topology.
pub struct SimRuntime {
    topology: Topology,
    config: EngineConfig,
    rt_config: RtConfig,
    placement: Placement,
    tasks: Vec<TaskRuntime>,
    task_worker: Vec<WorkerId>,
    task_machine: Vec<MachineId>,
    spout_tasks: Vec<u32>,
    machines: Vec<MachineState>,
    worker_slowdown: Vec<f64>,
    worker_ctr: Vec<WorkerCounters>,
    events: EventQueue<Event>,
    now: f64,
    acker: Acker,
    next_root: RootId,
    /// Highest root id already registered with the acker.  A root above this
    /// is a tree whose spout fan-out is still routing; its child edges XOR
    /// into [`tree_xor`](Self::tree_xor) and the tree is tracked once.
    tracked_below: RootId,
    /// XOR accumulator of child edges for the tree currently being routed.
    tree_xor: u64,
    /// Counter state for the splitmix64 jitter stream.
    rng_state: u64,
    slab: Slab,
    /// Tuples advanced per service event (`RtConfig::batch_size`, min 1).
    batch: usize,
    /// Per-task queue bound in tuples (`RtConfig::effective_queue_bound`).
    bound: usize,
    half_bound: usize,
    /// Tasks whose queue currently exceeds `half_bound`; backpressure
    /// clears when this count returns to zero.
    over_half: usize,
    backpressure: bool,
    interval_ctr: TopoCounters,
    total_ctr: TopoCounters,
    history: MetricsHistory,
    history_truncated: bool,
    journal: Journal,
    hooks: Vec<ControlHook>,
    faults: Vec<Fault>,
    events_processed: u64,
    interval_index: u64,
    spout_out: SpoutOutput,
    bolt_out: BoltOutput,
    select_buf: Vec<usize>,
    /// Scratch `(local task, route index)` pairs for the routing fan-out.
    deliver_buf: Vec<(u32, u32)>,
    emit_buf: Vec<Emission>,
    outcome_buf: Vec<TreeOutcome>,
}

impl SimRuntime {
    /// Builds a runtime with the even scheduler and default runtime knobs.
    pub fn new(topology: Topology, config: EngineConfig) -> Result<Self> {
        Self::with_rt_config(topology, config, RtConfig::default())
    }

    /// Builds a runtime with an explicit placement and default runtime knobs.
    pub fn with_placement(
        topology: Topology,
        config: EngineConfig,
        placement: Placement,
    ) -> Result<Self> {
        Self::with_placement_and_rt(topology, config, RtConfig::default(), placement)
    }

    /// Builds a runtime with the even scheduler, driving the simulator from
    /// the same [`RtConfig`] knobs the threaded runtime uses (batch size,
    /// credit window).
    pub fn with_rt_config(
        topology: Topology,
        config: EngineConfig,
        rt_config: RtConfig,
    ) -> Result<Self> {
        let placement = even_placement(&topology, &config)?;
        Self::with_placement_and_rt(topology, config, rt_config, placement)
    }

    /// Builds a runtime with an explicit placement and [`RtConfig`] knobs.
    pub fn with_placement_and_rt(
        topology: Topology,
        config: EngineConfig,
        rt_config: RtConfig,
        placement: Placement,
    ) -> Result<Self> {
        config.validate()?;
        rt_config.validate()?;
        if placement.num_tasks() != topology.task_count() {
            return Err(Error::Scheduling(format!(
                "placement covers {} tasks, topology has {}",
                placement.num_tasks(),
                topology.task_count()
            )));
        }

        let interference = InterferenceModel::default();
        let machines = (0..config.num_machines)
            .map(|_| MachineState::new(config.machine_cores, interference))
            .collect();

        let batch = rt_config.batch_size.max(1);
        let bound = rt_config.effective_queue_bound(&config);

        let mut tasks = Vec::with_capacity(topology.task_count());
        let mut task_worker = Vec::with_capacity(topology.task_count());
        let mut task_machine = Vec::with_capacity(topology.task_count());
        let mut spout_tasks = Vec::new();

        for component in topology.components() {
            for (task_index, task) in component.tasks().enumerate() {
                let ctx = TopologyContext {
                    component: component.name.clone(),
                    task_index,
                    parallelism: component.parallelism,
                };
                let kind = match &component.kind {
                    ComponentKind::Spout(f) => {
                        let mut s = f();
                        s.open(&ctx);
                        spout_tasks.push(tasks.len() as u32);
                        TaskKind::Spout(s)
                    }
                    ComponentKind::Bolt(f) => {
                        let mut b = f();
                        b.prepare(&ctx);
                        TaskKind::Bolt(b)
                    }
                };

                // One router per outbound (stream, subscriber) edge.
                let mut routes = Vec::new();
                for decl in &component.outputs {
                    for (sub, spec) in topology.subscribers_of(component.id, &decl.id) {
                        let handle = match spec {
                            GroupingSpec::Dynamic(_) => {
                                topology.dynamic_handle(&component.name, &decl.id, &sub.name)
                            }
                            _ => None,
                        };
                        routes.push(OutRoute {
                            stream: decl.id.clone(),
                            fields: decl.fields.clone(),
                            subscriber_base: sub.base_task.0,
                            grouping: make_grouping(
                                spec,
                                sub.parallelism,
                                &decl.fields,
                                task_index,
                                handle,
                            ),
                            is_direct: matches!(spec, GroupingSpec::Direct),
                        });
                    }
                }

                task_worker.push(placement.worker_of(task));
                task_machine.push(placement.machine_of_task(task));
                tasks.push(TaskRuntime {
                    component_name: component.name.clone(),
                    kind,
                    queue: VecDeque::new(),
                    in_flight: Vec::with_capacity(batch),
                    staged: Vec::with_capacity(batch),
                    transit_local: VecDeque::new(),
                    transit_remote: VecDeque::new(),
                    wake_gen: 0,
                    wake_time: f64::INFINITY,
                    busy: false,
                    blocked: false,
                    exhausted: false,
                    pending_roots: 0,
                    in_service_s: 0.0,
                    in_service_k: 0,
                    routes,
                    base_cost_us: component.cost.base_service_time_us,
                    jitter: component.cost.jitter,
                    ctr: TaskCounters::default(),
                });
            }
        }

        let num_workers = placement.num_workers();
        let mut engine = SimRuntime {
            rng_state: config.seed,
            worker_slowdown: vec![1.0; num_workers],
            worker_ctr: vec![WorkerCounters::default(); num_workers],
            machines,
            tasks,
            task_worker,
            task_machine,
            spout_tasks,
            topology,
            placement,
            events: EventQueue::new(),
            now: 0.0,
            acker: Acker::new(),
            next_root: 0,
            tracked_below: 0,
            tree_xor: 0,
            slab: Slab::default(),
            batch,
            bound,
            half_bound: bound / 2,
            over_half: 0,
            backpressure: false,
            interval_ctr: TopoCounters::default(),
            total_ctr: TopoCounters::default(),
            history: MetricsHistory::new(config.metrics_history_cap),
            history_truncated: false,
            journal: Journal::new(),
            hooks: Vec::new(),
            faults: Vec::new(),
            events_processed: 0,
            interval_index: 0,
            spout_out: SpoutOutput::new(),
            bolt_out: BoltOutput::new(),
            select_buf: Vec::new(),
            deliver_buf: Vec::new(),
            emit_buf: Vec::new(),
            outcome_buf: Vec::new(),
            config,
            rt_config,
        };

        // Prime the event queue.
        for i in 0..engine.spout_tasks.len() {
            let task = engine.spout_tasks[i];
            engine.events.schedule(0.0, Event::SpoutWake { task });
        }
        engine
            .events
            .schedule(engine.config.metrics_interval_s, Event::MetricsTick);
        if engine.config.tick_interval_s > 0.0 {
            engine
                .events
                .schedule(engine.config.tick_interval_s, Event::BoltTick);
        }
        Ok(engine)
    }

    /// The topology under execution (e.g. to fetch dynamic-grouping handles).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The runtime knobs the simulator mirrors (batch size, credit window).
    pub fn rt_config(&self) -> &RtConfig {
        &self.rt_config
    }

    /// The task placement in effect.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Metrics history collected so far, bounded by
    /// [`EngineConfig::metrics_history_cap`].
    pub fn history(&self) -> &MetricsHistory {
        &self.history
    }

    /// Control-plane journal (currently `history_truncated` notices).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Current virtual time (seconds).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Registers a control hook called after every metrics snapshot.
    pub fn add_control_hook(&mut self, hook: ControlHook) {
        self.hooks.push(hook);
    }

    /// Snapshot of the cumulative complete-latency histogram (µs).  Diff two
    /// snapshots (see [`LatencyHistogram::diff`]) to get the distribution of
    /// a time window.
    pub fn complete_latency_histogram(&self) -> LatencyHistogram {
        self.total_ctr.complete_hist_us.clone()
    }

    /// Schedules a fault.  Must be called before [`run_until`](Self::run_until).
    pub fn inject_fault(&mut self, fault: Fault) -> Result<()> {
        if !fault.is_valid() {
            return Err(Error::Config(format!("invalid fault window: {fault:?}")));
        }
        match &fault {
            Fault::ExternalLoad { machine, .. } => {
                if *machine >= self.machines.len() {
                    return Err(Error::Config(format!("no machine {machine}")));
                }
            }
            Fault::WorkerSlowdown { worker, factor, .. } => {
                if *worker >= self.worker_slowdown.len() {
                    return Err(Error::Config(format!("no worker {worker}")));
                }
                if *factor <= 0.0 {
                    return Err(Error::Config("slowdown factor must be positive".into()));
                }
            }
        }
        let index = self.faults.len() as u32;
        self.events.schedule(
            fault.from_s(),
            Event::ApplyFault {
                index,
                starting: true,
            },
        );
        self.events.schedule(
            fault.until_s(),
            Event::ApplyFault {
                index,
                starting: false,
            },
        );
        self.faults.push(fault);
        Ok(())
    }

    /// Runs the simulation until virtual time `t_end` (seconds) and returns
    /// a summary.  Can be called repeatedly to continue the same run.
    pub fn run_until(&mut self, t_end: f64) -> RunReport {
        while let Some(time) = self.events.peek_time() {
            if time > t_end {
                break;
            }
            let scheduled = self.events.pop().expect("peeked event exists");
            self.now = scheduled.time;
            self.events_processed += 1;
            self.dispatch(scheduled.event);
        }
        self.now = self.now.max(t_end);
        self.report()
    }

    /// Builds the run summary so far.
    pub fn report(&self) -> RunReport {
        let t = &self.total_ctr;
        RunReport {
            end_time_s: self.now,
            events: self.events_processed,
            spout_emitted: t.spout_emitted,
            acked: t.acked,
            failed: t.failed,
            timed_out: t.timed_out,
            avg_complete_latency_ms: t.complete_us.mean() / 1000.0,
            p99_complete_latency_ms: t.complete_hist_us.quantile(0.99).unwrap_or(0.0) / 1000.0,
            avg_throughput: if self.now > 0.0 {
                t.acked as f64 / self.now
            } else {
                0.0
            },
            snapshots: self.history.len(),
        }
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::SpoutWake { task } => self.on_spout_wake(task as usize),
            Event::SpoutFinish { task } => self.on_spout_finish(task as usize),
            Event::DeliveryWake { dest, gen } => self.on_delivery_wake(dest as usize, gen),
            Event::Finish { task } => self.on_finish(task as usize),
            Event::MetricsTick => self.on_metrics_tick(),
            Event::BoltTick => self.on_bolt_tick(),
            Event::ApplyFault { index, starting } => self.on_fault(index as usize, starting),
        }
    }

    /// Service time in seconds for one tuple at `task`, sampled now.
    ///
    /// Jitter draws come from the splitmix64 counter stream (the acker's
    /// fast path), not a heavyweight RNG: one add and four shift-multiply
    /// rounds per draw, deterministic per seed.
    fn sample_service_s(&mut self, task: usize) -> f64 {
        let machine = self.task_machine[task].0;
        let worker = self.task_worker[task].0;
        let t = &self.tasks[task];
        let mult = self.machines[machine].interference_multiplier() * self.worker_slowdown[worker];
        let jitter = if t.jitter > 0.0 {
            self.rng_state = self.rng_state.wrapping_add(1);
            let u = (splitmix64(self.rng_state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            1.0 + (2.0 * u - 1.0) * t.jitter
        } else {
            1.0
        };
        (t.base_cost_us * mult * jitter).max(0.01) * 1e-6
    }

    fn machine_busy_start(&mut self, task: usize) {
        self.machines[self.task_machine[task].0].busy_executors += 1;
    }

    fn machine_busy_end(&mut self, task: usize, duration_s: f64) {
        let m = &mut self.machines[self.task_machine[task].0];
        m.busy_executors = m.busy_executors.saturating_sub(1);
        m.busy_core_seconds += duration_s;
    }

    fn on_spout_wake(&mut self, task: usize) {
        if self.tasks[task].exhausted || self.tasks[task].busy {
            return;
        }
        let throttled = (self.config.ack_enabled
            && self.tasks[task].pending_roots >= self.config.max_spout_pending)
            || self.backpressure;
        if throttled {
            // Park: a tree completion (ack/fail/timeout) or a backpressure
            // clear schedules the next wake.
            self.tasks[task].blocked = true;
            return;
        }
        self.tasks[task].blocked = false;

        self.spout_out.set_now(self.now);
        let mut staged = std::mem::take(&mut self.tasks[task].staged);
        staged.clear();
        loop {
            let keep_going = match &mut self.tasks[task].kind {
                TaskKind::Spout(s) => s.next_tuple(&mut self.spout_out),
                TaskKind::Bolt(_) => unreachable!("wake on bolt task"),
            };
            let before = staged.len();
            self.spout_out.drain_into(&mut staged);
            let produced = staged.len() - before;
            if !keep_going {
                self.tasks[task].exhausted = true;
                break;
            }
            if produced == 0 || staged.len() >= self.batch {
                break;
            }
        }
        let n = staged.len();
        self.tasks[task].staged = staged;
        if n == 0 {
            if !self.tasks[task].exhausted {
                // Alive but voluntarily idle (e.g. rate-paced): short re-poll.
                self.events.schedule(
                    self.now + IDLE_REPOLL_S,
                    Event::SpoutWake { task: task as u32 },
                );
            }
            return;
        }
        let per_tuple = self.sample_service_s(task);
        let service = per_tuple * n as f64;
        self.tasks[task].busy = true;
        self.tasks[task].in_service_s = service;
        self.machine_busy_start(task);
        self.events
            .schedule(self.now + service, Event::SpoutFinish { task: task as u32 });
    }

    fn on_spout_finish(&mut self, task: usize) {
        let service = self.tasks[task].in_service_s;
        self.machine_busy_end(task, service);
        let mut staged = std::mem::take(&mut self.tasks[task].staged);
        let n = staged.len() as u64;
        {
            let c = &mut self.tasks[task].ctr;
            c.executed += n;
            c.busy_s += service;
            c.latency_sum_us += service * 1e6;
        }
        self.interval_ctr.spout_emitted += n;
        self.total_ctr.spout_emitted += n;

        for emission in staged.drain(..) {
            let tracked = match emission.message_id {
                Some(message_id) if self.config.ack_enabled => {
                    self.next_root += 1;
                    Some((self.next_root, message_id))
                }
                _ => None,
            };
            // Child edges XOR into `tree_xor` during routing and the tree is
            // registered once with the settled accumulator, instead of one
            // acker update per child edge (Storm's batched ack-init).
            self.tree_xor = 0;
            let delivered = self.route_one(task, emission, tracked.map(|(root, _)| root));
            if let Some((root, message_id)) = tracked {
                self.acker
                    .track(root, self.tree_xor, TaskId(task), message_id, self.now);
                self.tracked_below = root;
                self.tasks[task].pending_roots += 1;
                if delivered == 0 {
                    // Tree with no subscribers completes immediately.
                    self.acker.on_ack(root, 0, self.now);
                }
            }
        }
        self.tasks[task].staged = staged;
        self.drain_outcomes();
        self.tasks[task].busy = false;
        if !self.tasks[task].exhausted {
            self.events
                .schedule(self.now, Event::SpoutWake { task: task as u32 });
        }
    }

    /// Stages a delivery into `dest`'s transit buffer and (re)schedules its
    /// delivery wake if this arrival is due before the pending one.
    fn stage_delivery(&mut self, dest: usize, ready: f64, idx: u32, remote: bool) {
        let t = &mut self.tasks[dest];
        if remote {
            t.transit_remote.push_back((ready, idx));
        } else {
            t.transit_local.push_back((ready, idx));
        }
        if ready < t.wake_time {
            t.wake_gen = t.wake_gen.wrapping_add(1);
            t.wake_time = ready;
            let gen = t.wake_gen;
            self.events.schedule(
                ready,
                Event::DeliveryWake {
                    dest: dest as u32,
                    gen,
                },
            );
        }
    }

    fn on_delivery_wake(&mut self, dest: usize, gen: u32) {
        if self.tasks[dest].wake_gen != gen {
            return; // Superseded by an earlier arrival's wake.
        }
        self.tasks[dest].wake_time = f64::INFINITY;
        // Move every due transit entry into the task queue, merging the two
        // classes by ready time (each class is sorted by construction).
        loop {
            let t = &self.tasks[dest];
            let lf = t.transit_local.front().map(|&(r, _)| r);
            let rf = t.transit_remote.front().map(|&(r, _)| r);
            let (ready, remote) = match (lf, rf) {
                (None, None) => break,
                (Some(l), None) => (l, false),
                (None, Some(r)) => (r, true),
                (Some(l), Some(r)) => {
                    if l <= r {
                        (l, false)
                    } else {
                        (r, true)
                    }
                }
            };
            if ready > self.now {
                // Chain the wake for the next pending arrival.
                let t = &mut self.tasks[dest];
                if ready < t.wake_time {
                    t.wake_gen = t.wake_gen.wrapping_add(1);
                    t.wake_time = ready;
                    let gen = t.wake_gen;
                    self.events.schedule(
                        ready,
                        Event::DeliveryWake {
                            dest: dest as u32,
                            gen,
                        },
                    );
                }
                break;
            }
            let t = &mut self.tasks[dest];
            let (_, idx) = if remote {
                t.transit_remote.pop_front().expect("checked front")
            } else {
                t.transit_local.pop_front().expect("checked front")
            };
            if remote {
                self.worker_ctr[self.task_worker[dest].0].tuples_in += 1;
            }
            let t = &mut self.tasks[dest];
            t.queue.push_back(idx);
            let len = t.queue.len();
            if len == self.half_bound + 1 {
                self.over_half += 1;
            }
            if len > self.bound {
                self.backpressure = true;
            }
        }
        if !self.tasks[dest].busy && !self.tasks[dest].queue.is_empty() {
            self.start_service(dest);
        }
    }

    fn start_service(&mut self, task: usize) {
        let before = self.tasks[task].queue.len();
        let k = before.min(self.batch);
        if k == 0 {
            return;
        }
        {
            let t = &mut self.tasks[task];
            for _ in 0..k {
                let idx = t.queue.pop_front().expect("len checked");
                t.in_flight.push(idx);
            }
        }
        let after = before - k;
        if before > self.half_bound && after <= self.half_bound {
            self.over_half -= 1;
            if self.over_half == 0 && self.backpressure {
                self.backpressure = false;
                self.wake_blocked_spouts();
            }
        }
        let per_tuple = self.sample_service_s(task);
        let service = per_tuple * k as f64;
        let t = &mut self.tasks[task];
        t.busy = true;
        t.in_service_s = service;
        t.in_service_k = k as u32;
        self.machine_busy_start(task);
        self.events
            .schedule(self.now + service, Event::Finish { task: task as u32 });
    }

    fn on_finish(&mut self, task: usize) {
        let service = self.tasks[task].in_service_s;
        let k = self.tasks[task].in_service_k as usize;
        self.machine_busy_end(task, service);
        let per_tuple = service / k as f64;

        self.bolt_out.set_now(self.now);
        for j in 0..k {
            let idx = self.tasks[task].in_flight[j];
            let (root, edge) = {
                let inst = &self.slab.slots[idx as usize];
                match &mut self.tasks[task].kind {
                    TaskKind::Bolt(b) => b.execute(&inst.tuple, &mut self.bolt_out),
                    TaskKind::Spout(_) => unreachable!("finish on spout task"),
                }
                (inst.root, inst.edge)
            };
            let failed = self.bolt_out.drain_into(&mut self.emit_buf);

            {
                let c = &mut self.tasks[task].ctr;
                c.executed += 1;
                c.busy_s += per_tuple;
                c.latency_sum_us += per_tuple * 1e6;
                if failed {
                    c.failed += 1;
                } else {
                    c.acked += 1;
                }
            }

            let anchor_root = if root != 0 { Some(root) } else { None };
            let mut emits = std::mem::take(&mut self.emit_buf);
            for emission in emits.drain(..) {
                let anchor = if emission.anchored { anchor_root } else { None };
                self.route_one(task, emission, anchor);
            }
            self.emit_buf = emits;

            if root != 0 {
                if failed {
                    self.acker.on_fail(root, self.now);
                } else {
                    self.acker.on_ack(root, edge, self.now);
                }
            }
            self.slab.free.push(idx);
        }
        self.tasks[task].in_flight.clear();
        self.drain_outcomes();

        self.tasks[task].busy = false;
        if !self.tasks[task].queue.is_empty() {
            self.start_service(task);
        }
    }

    /// Routes one emission from `src` to all matching subscriber tasks.
    /// Returns the number of delivered instances.
    ///
    /// Consumes the emission: the last delivery moves the tuple's shared
    /// values into the slab instead of bumping their refcount.
    fn route_one(&mut self, src: usize, emission: Emission, root: Option<RootId>) -> usize {
        let src_worker = self.task_worker[src];
        // Pass 1: resolve every (local task, route) pair this emission
        // reaches.  Split borrows: routes belong to the source task;
        // deliveries go through per-destination transit buffers, touched
        // only in pass 2 after the route borrows end.
        self.deliver_buf.clear();
        let n_routes = self.tasks[src].routes.len();
        for r in 0..n_routes {
            {
                let route = &self.tasks[src].routes[r];
                if route.stream != emission.stream {
                    continue;
                }
                match (emission.direct_task, route.is_direct) {
                    (Some(_), false) | (None, true) => continue,
                    _ => {}
                }
            }
            match emission.direct_task {
                Some(idx) => self.deliver_buf.push((idx as u32, r as u32)),
                None => {
                    self.select_buf.clear();
                    let mut buf = std::mem::take(&mut self.select_buf);
                    self.tasks[src].routes[r]
                        .grouping
                        .select(&emission.tuple, &mut buf);
                    self.select_buf = buf;
                    for i in 0..self.select_buf.len() {
                        self.deliver_buf.push((self.select_buf[i] as u32, r as u32));
                    }
                }
            }
        }
        let delivered = self.deliver_buf.len();
        if delivered == 0 {
            return 0;
        }

        // Pass 2: allocate instances and stage deliveries.
        let deliver = std::mem::take(&mut self.deliver_buf);
        let mut last_tuple = Some(emission.tuple);
        for (i, &(local, r)) in deliver.iter().enumerate() {
            let (base, fields) = {
                let route = &self.tasks[src].routes[r as usize];
                (route.subscriber_base, route.fields.clone())
            };
            let dest = base + local as usize;
            let tuple = if i + 1 == delivered {
                last_tuple
                    .take()
                    .expect("one move per emission")
                    .into_rekeyed(fields)
            } else {
                last_tuple
                    .as_ref()
                    .expect("moved only on last")
                    .rekeyed(fields)
            };
            let (root_id, edge) = match root {
                Some(root) => {
                    let edge = self.acker.new_edge_id();
                    if root > self.tracked_below {
                        // Tree not registered yet (spout fan-out in
                        // progress): accumulate instead of an acker update.
                        self.tree_xor ^= edge;
                    } else {
                        self.acker.on_emit(root, edge);
                    }
                    (root, edge)
                }
                None => (0, 0),
            };
            let dest_worker = self.task_worker[dest];
            let remote = dest_worker != src_worker;
            let transfer_us = if remote {
                self.config.remote_transfer_us
            } else {
                self.config.local_transfer_us
            };
            if remote {
                self.worker_ctr[src_worker.0].tuples_out += 1;
            }
            let idx = self.slab.alloc(tuple, root_id, edge);
            self.stage_delivery(dest, self.now + transfer_us * 1e-6, idx, remote);
        }
        self.deliver_buf = deliver;
        self.tasks[src].ctr.emitted += delivered as u64;
        delivered
    }

    fn drain_outcomes(&mut self) {
        let mut buf = std::mem::take(&mut self.outcome_buf);
        self.acker.drain_outcomes_into(&mut buf);
        for outcome in buf.drain(..) {
            let spout = outcome.spout_task.0;
            self.tasks[spout].pending_roots = self.tasks[spout].pending_roots.saturating_sub(1);
            let latency_us = outcome.complete_latency() * 1e6;
            match outcome.completion {
                Completion::Acked => {
                    self.interval_ctr.acked += 1;
                    self.total_ctr.acked += 1;
                    self.interval_ctr.complete_us.update(latency_us);
                    self.interval_ctr.complete_hist_us.record(latency_us);
                    self.total_ctr.complete_us.update(latency_us);
                    self.total_ctr.complete_hist_us.record(latency_us);
                    self.tasks[spout].ctr.acked += 1;
                    if let TaskKind::Spout(s) = &mut self.tasks[spout].kind {
                        s.ack(outcome.message_id);
                    }
                }
                Completion::Failed | Completion::TimedOut => {
                    if outcome.completion == Completion::Failed {
                        self.interval_ctr.failed += 1;
                        self.total_ctr.failed += 1;
                    } else {
                        self.interval_ctr.timed_out += 1;
                        self.total_ctr.timed_out += 1;
                    }
                    self.tasks[spout].ctr.failed += 1;
                    if let TaskKind::Spout(s) = &mut self.tasks[spout].kind {
                        s.fail(outcome.message_id);
                    }
                }
            }
            // A spout parked on max_spout_pending can resume now that a tree
            // left flight (unless backpressure still holds it).
            if self.tasks[spout].blocked
                && !self.backpressure
                && self.tasks[spout].pending_roots < self.config.max_spout_pending
            {
                self.tasks[spout].blocked = false;
                self.events
                    .schedule(self.now, Event::SpoutWake { task: spout as u32 });
            }
        }
        self.outcome_buf = buf;
    }

    /// Wakes every spout parked on throttle/backpressure; each wake
    /// re-evaluates its own throttle condition and may re-park.
    fn wake_blocked_spouts(&mut self) {
        for si in 0..self.spout_tasks.len() {
            let s = self.spout_tasks[si] as usize;
            if self.tasks[s].blocked && !self.tasks[s].exhausted && !self.tasks[s].busy {
                self.tasks[s].blocked = false;
                self.events
                    .schedule(self.now, Event::SpoutWake { task: s as u32 });
            }
        }
    }

    fn on_bolt_tick(&mut self) {
        for task in 0..self.tasks.len() {
            if !matches!(self.tasks[task].kind, TaskKind::Bolt(_)) {
                continue;
            }
            self.bolt_out.set_now(self.now);
            if let TaskKind::Bolt(b) = &mut self.tasks[task].kind {
                b.tick(&mut self.bolt_out);
            }
            self.bolt_out.drain_into(&mut self.emit_buf);
            let mut emits = std::mem::take(&mut self.emit_buf);
            for emission in emits.drain(..) {
                // Tick output has no input tuple to anchor to.
                self.route_one(task, emission, None);
            }
            self.emit_buf = emits;
        }
        self.events
            .schedule(self.now + self.config.tick_interval_s, Event::BoltTick);
    }

    fn on_fault(&mut self, index: usize, starting: bool) {
        match self.faults[index].clone() {
            Fault::ExternalLoad { machine, cores, .. } => {
                let m = &mut self.machines[machine];
                if starting {
                    m.external_load_cores += cores;
                } else {
                    m.external_load_cores = (m.external_load_cores - cores).max(0.0);
                }
            }
            Fault::WorkerSlowdown { worker, factor, .. } => {
                self.worker_slowdown[worker] = if starting { factor } else { 1.0 };
            }
        }
    }

    fn on_metrics_tick(&mut self) {
        if self.config.ack_enabled {
            self.acker.expire(self.now, self.config.message_timeout_s);
            self.drain_outcomes();
        }
        let snapshot = self.build_snapshot();
        for hook in &mut self.hooks {
            hook(&snapshot);
        }
        let cap = self.config.metrics_history_cap;
        if cap > 0 && self.history.len() >= cap && !self.history_truncated {
            self.history_truncated = true;
            self.journal.append(JournalEvent::HistoryTruncated {
                time_s: self.now,
                retained: cap,
            });
        }
        self.history.push(snapshot);
        self.reset_interval();
        self.interval_index += 1;
        self.events.schedule(
            self.now + self.config.metrics_interval_s,
            Event::MetricsTick,
        );
    }

    fn build_snapshot(&self) -> MetricsSnapshot {
        let interval_s = self.config.metrics_interval_s;
        let tasks: Vec<TaskStats> = self
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| TaskStats {
                task: TaskId(i),
                component: t.component_name.clone(),
                worker: self.task_worker[i],
                executed: t.ctr.executed,
                emitted: t.ctr.emitted,
                acked: t.ctr.acked,
                failed: t.ctr.failed,
                avg_execute_latency_us: if t.ctr.executed > 0 {
                    t.ctr.latency_sum_us / t.ctr.executed as f64
                } else {
                    0.0
                },
                queue_len: t.queue.len(),
                capacity: t.ctr.busy_s / interval_s,
                // The simulator models batching via service coalescing and
                // runs no threads; flush accounting, panics and restarts are
                // threaded-runtime concerns.
                batches_flushed: 0,
                linger_flushes: 0,
                panics: 0,
                restarts: 0,
                last_panic: None,
                // Checkpointing is a threaded-runtime concern; the
                // deterministic simulator never snapshots.
                checkpoints_taken: 0,
                restores: 0,
                snapshot_bytes: 0,
            })
            .collect();

        let workers: Vec<WorkerStats> = (0..self.worker_ctr.len())
            .map(|w| {
                let wid = WorkerId(w);
                let mut executed = 0u64;
                let mut lat_sum = 0.0;
                let mut cores = 0.0;
                let mut mem = 100.0;
                let mut num_tasks = 0usize;
                for (i, t) in self.tasks.iter().enumerate() {
                    if self.task_worker[i] != wid {
                        continue;
                    }
                    num_tasks += 1;
                    executed += t.ctr.executed;
                    lat_sum += t.ctr.latency_sum_us;
                    cores += t.ctr.busy_s / interval_s;
                    mem += t.queue.len() as f64 * 0.004;
                }
                WorkerStats {
                    worker: wid,
                    machine: self.placement.machine_of(wid),
                    cpu_cores_used: cores,
                    memory_mb: mem,
                    executed,
                    tuples_in: self.worker_ctr[w].tuples_in,
                    tuples_out: self.worker_ctr[w].tuples_out,
                    avg_execute_latency_us: if executed > 0 {
                        lat_sum / executed as f64
                    } else {
                        0.0
                    },
                    num_tasks,
                }
            })
            .collect();

        let machines: Vec<MachineStats> = self
            .machines
            .iter()
            .enumerate()
            .map(|(m, state)| MachineStats {
                machine: MachineId(m),
                cpu_cores_used: state.busy_core_seconds / interval_s,
                external_load_cores: state.external_load_cores,
                cores: state.cores,
                num_workers: self.placement.workers_of_machine(MachineId(m)).len(),
            })
            .collect();

        let c = &self.interval_ctr;
        let topology = TopologyStats {
            spout_emitted: c.spout_emitted,
            acked: c.acked,
            failed: c.failed,
            timed_out: c.timed_out,
            avg_complete_latency_ms: c.complete_us.mean() / 1000.0,
            p99_complete_latency_ms: c.complete_hist_us.quantile(0.99).unwrap_or(0.0) / 1000.0,
            throughput: c.acked as f64 / interval_s,
        };

        MetricsSnapshot {
            interval: self.interval_index,
            time_s: self.now,
            interval_s,
            tasks,
            workers,
            machines,
            topology,
        }
    }

    fn reset_interval(&mut self) {
        for t in &mut self.tasks {
            t.ctr = TaskCounters::default();
        }
        for w in &mut self.worker_ctr {
            *w = WorkerCounters::default();
        }
        for m in &mut self.machines {
            m.busy_core_seconds = 0.0;
        }
        self.interval_ctr = TopoCounters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{CostModel, TopologyBuilder};
    use crate::tuple::Value;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Spout emitting `rate` tuples/s with reliability ids.
    struct RateSpout {
        rate: f64,
        emitted: u64,
        next_id: u64,
        failed_replays: u64,
    }

    impl RateSpout {
        fn new(rate: f64) -> Self {
            RateSpout {
                rate,
                emitted: 0,
                next_id: 0,
                failed_replays: 0,
            }
        }
    }

    impl Spout for RateSpout {
        fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
            let due = (out.now_s() * self.rate) as u64;
            if self.emitted < due {
                self.emitted += 1;
                self.next_id += 1;
                out.emit_with_id(Tuple::of([Value::from(self.next_id as i64)]), self.next_id);
            }
            true
        }

        fn fail(&mut self, _id: u64) {
            self.failed_replays += 1;
        }
    }

    struct CountBolt {
        seen: Arc<AtomicU64>,
    }

    impl Bolt for CountBolt {
        fn execute(&mut self, _t: &Tuple, _o: &mut BoltOutput) {
            self.seen.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn linear_topology(
        rate: f64,
        bolt_cost_us: f64,
        bolt_par: usize,
        seen: Arc<AtomicU64>,
    ) -> Topology {
        let mut b = TopologyBuilder::new("test");
        b.set_spout("spout", 1, move || RateSpout::new(rate))
            .unwrap()
            .output_fields(Fields::new(["v"]))
            .cost(CostModel {
                base_service_time_us: 10.0,
                jitter: 0.0,
            });
        b.set_bolt("sink", bolt_par, move || CountBolt { seen: seen.clone() })
            .unwrap()
            .shuffle_grouping("spout")
            .unwrap()
            .cost(CostModel {
                base_service_time_us: bolt_cost_us,
                jitter: 0.0,
            });
        b.build().unwrap()
    }

    fn small_config() -> EngineConfig {
        EngineConfig::default().with_cluster(2, 2, 4)
    }

    #[test]
    fn tuples_flow_and_ack() {
        let seen = Arc::new(AtomicU64::new(0));
        let topo = linear_topology(1000.0, 50.0, 2, seen.clone());
        let mut engine = SimRuntime::new(topo, small_config()).unwrap();
        let report = engine.run_until(10.0);
        let processed = seen.load(Ordering::Relaxed);
        // ~1000 t/s for 10 s = ~10k tuples; allow slack for startup.
        assert!(processed > 9_000, "processed {processed}");
        assert!(report.acked > 9_000, "acked {}", report.acked);
        assert_eq!(report.failed, 0);
        assert_eq!(report.timed_out, 0);
        assert!(report.avg_complete_latency_ms > 0.0);
        assert!(report.spout_emitted >= report.acked);
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let run = |seed| {
            let seen = Arc::new(AtomicU64::new(0));
            let topo = linear_topology(500.0, 80.0, 2, seen.clone());
            let mut engine = SimRuntime::new(topo, small_config().with_seed(seed)).unwrap();
            let r = engine.run_until(5.0);
            (
                r.acked,
                r.spout_emitted,
                r.avg_complete_latency_ms,
                seen.load(Ordering::Relaxed),
            )
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b);
        let c = run(8);
        // Different seed changes jitterless run only via placement/rng use;
        // with zero jitter results may coincide, so just sanity-check totals.
        assert!(c.0 > 0);
    }

    #[test]
    fn metrics_snapshots_produced_each_interval() {
        let seen = Arc::new(AtomicU64::new(0));
        let topo = linear_topology(200.0, 100.0, 1, seen);
        let mut engine = SimRuntime::new(topo, small_config()).unwrap();
        engine.run_until(5.0);
        assert_eq!(engine.history().len(), 5);
        let snap = engine.history().latest().unwrap();
        assert_eq!(snap.tasks.len(), 2);
        assert_eq!(snap.workers.len(), 4);
        assert_eq!(snap.machines.len(), 2);
        assert!(snap.topology.throughput > 150.0);
        // Executing task has positive latency and capacity.
        let sink = snap.tasks.iter().find(|t| t.component == "sink").unwrap();
        assert!(sink.avg_execute_latency_us >= 99.0);
        assert!(sink.capacity > 0.0 && sink.capacity <= 1.0);
    }

    #[test]
    fn control_hook_called_per_interval() {
        let seen = Arc::new(AtomicU64::new(0));
        let topo = linear_topology(100.0, 50.0, 1, seen);
        let mut engine = SimRuntime::new(topo, small_config()).unwrap();
        let calls = Arc::new(AtomicU64::new(0));
        let c2 = calls.clone();
        engine.add_control_hook(Box::new(move |_snap| {
            c2.fetch_add(1, Ordering::Relaxed);
        }));
        engine.run_until(8.0);
        assert_eq!(calls.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn worker_slowdown_inflates_latency() {
        let baseline = {
            let seen = Arc::new(AtomicU64::new(0));
            let topo = linear_topology(500.0, 100.0, 1, seen);
            let mut e = SimRuntime::new(topo, small_config()).unwrap();
            e.run_until(10.0);
            e.history().latest().unwrap().tasks[1].avg_execute_latency_us
        };
        let degraded = {
            let seen = Arc::new(AtomicU64::new(0));
            let topo = linear_topology(500.0, 100.0, 1, seen);
            let mut e = SimRuntime::new(topo, small_config()).unwrap();
            // Bolt is task 1; find its worker and slow it 5x.
            let w = e.placement().worker_of(TaskId(1)).0;
            e.inject_fault(Fault::WorkerSlowdown {
                worker: w,
                factor: 5.0,
                from_s: 1.0,
                until_s: 10.0,
            })
            .unwrap();
            e.run_until(10.0);
            e.history().latest().unwrap().tasks[1].avg_execute_latency_us
        };
        assert!(
            degraded > baseline * 3.0,
            "slowdown should inflate latency: {baseline} -> {degraded}"
        );
    }

    #[test]
    fn external_load_inflates_service_time() {
        let run = |load: f64| {
            let seen = Arc::new(AtomicU64::new(0));
            let topo = linear_topology(500.0, 100.0, 1, seen);
            let mut e = SimRuntime::new(topo, small_config()).unwrap();
            let m = e.placement().machine_of_task(TaskId(1)).0;
            if load > 0.0 {
                e.inject_fault(Fault::ExternalLoad {
                    machine: m,
                    cores: load,
                    from_s: 0.0,
                    until_s: 10.0,
                })
                .unwrap();
            }
            e.run_until(10.0);
            e.history().latest().unwrap().tasks[1].avg_execute_latency_us
        };
        let idle = run(0.0);
        let loaded = run(8.0); // 2x oversubscription on 4 cores
        assert!(
            loaded > idle * 1.5,
            "external load must slow tasks: {idle} -> {loaded}"
        );
    }

    #[test]
    fn external_load_visible_in_machine_stats() {
        let seen = Arc::new(AtomicU64::new(0));
        let topo = linear_topology(100.0, 50.0, 1, seen);
        let mut e = SimRuntime::new(topo, small_config()).unwrap();
        e.inject_fault(Fault::ExternalLoad {
            machine: 0,
            cores: 3.0,
            from_s: 2.0,
            until_s: 4.0,
        })
        .unwrap();
        e.run_until(6.0);
        let history: Vec<_> = e.history().iter().collect();
        assert_eq!(history[0].machines[0].external_load_cores, 0.0);
        assert_eq!(history[2].machines[0].external_load_cores, 3.0);
        assert_eq!(history[5].machines[0].external_load_cores, 0.0);
    }

    #[test]
    fn overload_triggers_backpressure_not_unbounded_queues() {
        let seen = Arc::new(AtomicU64::new(0));
        // Offered load 10k t/s, bolt can do 1k t/s: queue must be bounded by
        // backpressure + max_spout_pending.
        let topo = linear_topology(10_000.0, 1000.0, 1, seen);
        let mut cfg = small_config();
        cfg.queue_capacity = 100;
        cfg.max_spout_pending = 200;
        let mut e = SimRuntime::new(topo, cfg).unwrap();
        e.run_until(10.0);
        let max_queue = e
            .history()
            .iter()
            .flat_map(|s| s.tasks.iter().map(|t| t.queue_len))
            .max()
            .unwrap();
        assert!(max_queue <= 250, "queue grew to {max_queue}");
    }

    #[test]
    fn fields_grouping_routes_by_key_in_engine() {
        struct KeySpout {
            i: u64,
        }
        impl Spout for KeySpout {
            fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
                self.i += 1;
                let key = format!("k{}", self.i % 4);
                out.emit(Tuple::of([Value::from(key.as_str())]));
                self.i < 200
            }
        }
        #[derive(Default)]
        struct KeyCollector {
            keys: std::collections::HashSet<String>,
            log: Arc<parking_lot::Mutex<Vec<std::collections::HashSet<String>>>>,
            registered: bool,
        }
        impl Bolt for KeyCollector {
            fn execute(&mut self, t: &Tuple, _o: &mut BoltOutput) {
                self.keys
                    .insert(t.get_by_field("url").unwrap().as_str().unwrap().to_owned());
                if !self.registered {
                    self.registered = true;
                }
                let mut log = self.log.lock();
                log.push(self.keys.clone());
            }
        }
        let log: Arc<parking_lot::Mutex<Vec<std::collections::HashSet<String>>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let log2 = log.clone();
        let mut b = TopologyBuilder::new("fields");
        b.set_spout("s", 1, || KeySpout { i: 0 })
            .unwrap()
            .output_fields(Fields::new(["url"]));
        b.set_bolt("c", 2, move || KeyCollector {
            log: log2.clone(),
            ..Default::default()
        })
        .unwrap()
        .fields_grouping("s", &["url"])
        .unwrap();
        let topo = b.build().unwrap();
        let mut e = SimRuntime::new(topo, small_config()).unwrap();
        e.run_until(5.0);
        // Each key must appear in exactly one task's key set.
        let final_sets = log.lock();
        let last_by_size: Vec<_> = final_sets.iter().rev().take(2).collect();
        if last_by_size.len() == 2 {
            let intersection: Vec<_> = last_by_size[0].intersection(last_by_size[1]).collect();
            assert!(
                intersection.is_empty() || last_by_size[0] == last_by_size[1],
                "a key reached two different tasks: {intersection:?}"
            );
        }
    }

    #[test]
    fn dynamic_grouping_reroute_during_run() {
        struct TaskCounterBolt {
            counts: Arc<AtomicU64>,
        }
        impl Bolt for TaskCounterBolt {
            fn execute(&mut self, _t: &Tuple, _o: &mut BoltOutput) {
                self.counts.fetch_add(1, Ordering::Relaxed);
            }
        }
        // 4 sink tasks; count arrivals per *component* then verify via task
        // stats which tasks got traffic after the reroute.
        let counts = Arc::new(AtomicU64::new(0));
        let c = counts.clone();
        let mut b = TopologyBuilder::new("dyn");
        b.set_spout("s", 1, || RateSpout::new(2000.0))
            .unwrap()
            .output_fields(Fields::new(["v"]))
            .cost(CostModel {
                base_service_time_us: 5.0,
                jitter: 0.0,
            });
        b.set_bolt("sink", 4, move || TaskCounterBolt { counts: c.clone() })
            .unwrap()
            .dynamic_grouping("s")
            .unwrap()
            .cost(CostModel {
                base_service_time_us: 20.0,
                jitter: 0.0,
            });
        let topo = b.build().unwrap();
        let handle = topo
            .dynamic_handle("s", &StreamId::default(), "sink")
            .unwrap();
        let mut e = SimRuntime::new(topo, small_config()).unwrap();
        e.run_until(3.0);
        let before: Vec<u64> = e.history().latest().unwrap().tasks[1..]
            .iter()
            .map(|t| t.executed)
            .collect();
        assert!(
            before.iter().all(|&n| n > 0),
            "uniform split feeds all: {before:?}"
        );

        // Zero-out task 2 (bypass a misbehaving worker) and keep running.
        handle
            .set_ratio(crate::grouping::dynamic::SplitRatio::new(vec![1.0, 1.0, 0.0, 1.0]).unwrap())
            .unwrap();
        e.run_until(6.0);
        let after: Vec<u64> = e.history().latest().unwrap().tasks[1..]
            .iter()
            .map(|t| t.executed)
            .collect();
        assert_eq!(after[2], 0, "bypassed task got traffic: {after:?}");
        assert!(after[0] > 0 && after[1] > 0 && after[3] > 0);
    }

    #[test]
    fn rejects_invalid_faults() {
        let seen = Arc::new(AtomicU64::new(0));
        let topo = linear_topology(100.0, 50.0, 1, seen);
        let mut e = SimRuntime::new(topo, small_config()).unwrap();
        assert!(e
            .inject_fault(Fault::ExternalLoad {
                machine: 99,
                cores: 1.0,
                from_s: 0.0,
                until_s: 1.0
            })
            .is_err());
        assert!(e
            .inject_fault(Fault::WorkerSlowdown {
                worker: 99,
                factor: 2.0,
                from_s: 0.0,
                until_s: 1.0
            })
            .is_err());
        assert!(e
            .inject_fault(Fault::WorkerSlowdown {
                worker: 0,
                factor: 0.0,
                from_s: 0.0,
                until_s: 1.0
            })
            .is_err());
        assert!(e
            .inject_fault(Fault::WorkerSlowdown {
                worker: 0,
                factor: 2.0,
                from_s: 5.0,
                until_s: 1.0
            })
            .is_err());
    }

    #[test]
    fn finite_spout_drains_and_stops() {
        struct FiniteSpout {
            left: u64,
        }
        impl Spout for FiniteSpout {
            fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
                if self.left == 0 {
                    return false;
                }
                self.left -= 1;
                out.emit_with_id(Tuple::of([Value::from(self.left as i64)]), self.left);
                true
            }
        }
        let seen = Arc::new(AtomicU64::new(0));
        let s2 = seen.clone();
        let mut b = TopologyBuilder::new("finite");
        b.set_spout("s", 1, || FiniteSpout { left: 100 }).unwrap();
        b.set_bolt("c", 1, move || CountBolt { seen: s2.clone() })
            .unwrap()
            .shuffle_grouping("s")
            .unwrap();
        let topo = b.build().unwrap();
        let mut e = SimRuntime::new(topo, small_config()).unwrap();
        let report = e.run_until(30.0);
        assert_eq!(seen.load(Ordering::Relaxed), 100);
        assert_eq!(report.acked, 100);
        assert_eq!(report.spout_emitted, 100);
    }

    #[test]
    fn run_until_can_be_resumed() {
        let seen = Arc::new(AtomicU64::new(0));
        let topo = linear_topology(1000.0, 50.0, 2, seen);
        let mut e = SimRuntime::new(topo, small_config()).unwrap();
        let r1 = e.run_until(2.0);
        let r2 = e.run_until(4.0);
        assert!(r2.acked > r1.acked);
        assert_eq!(e.history().len(), 4);
        assert!((e.now() - 4.0).abs() < 1e-9);
    }

    /// Jittered service times come from the splitmix64 counter stream, so a
    /// repeated run with the same seed is bit-identical and a different seed
    /// diverges.
    #[test]
    fn jitter_runs_are_seed_stable() {
        fn run(seed: u64) -> (u64, f64) {
            let seen = Arc::new(AtomicU64::new(0));
            let mut b = TopologyBuilder::new("jitter");
            let s2 = seen.clone();
            b.set_spout("spout", 1, || RateSpout::new(2000.0))
                .unwrap()
                .output_fields(Fields::new(["v"]))
                .cost(CostModel {
                    base_service_time_us: 10.0,
                    jitter: 0.3,
                });
            b.set_bolt("sink", 2, move || CountBolt { seen: s2.clone() })
                .unwrap()
                .shuffle_grouping("spout")
                .unwrap()
                .cost(CostModel {
                    base_service_time_us: 120.0,
                    jitter: 0.3,
                });
            let topo = b.build().unwrap();
            let mut e = SimRuntime::new(topo, small_config().with_seed(seed)).unwrap();
            let r = e.run_until(5.0);
            (r.acked, r.avg_complete_latency_ms)
        }
        let (acked_a, lat_a) = run(7);
        let (acked_b, lat_b) = run(7);
        let (acked_c, lat_c) = run(8);
        assert_eq!(acked_a, acked_b);
        assert_eq!(lat_a.to_bits(), lat_b.to_bits());
        // Different seed, different jitter draws: latency must move.
        assert!(acked_c > 0);
        assert_ne!(lat_a.to_bits(), lat_c.to_bits());
    }

    /// Raising `RtConfig::batch_size` coalesces service events without
    /// changing what was processed, and strictly reduces event count.
    #[test]
    fn batch_coalescing_preserves_counts() {
        fn run(batch: usize) -> RunReport {
            let seen = Arc::new(AtomicU64::new(0));
            let topo = linear_topology(2000.0, 50.0, 2, seen);
            let rt = RtConfig::default().with_batch_size(batch);
            let mut e = SimRuntime::with_rt_config(topo, small_config(), rt).unwrap();
            e.run_until(5.0)
        }
        let per_tuple = run(1);
        let coalesced = run(8);
        assert_eq!(coalesced.spout_emitted, per_tuple.spout_emitted);
        assert_eq!(coalesced.acked, per_tuple.acked);
        assert_eq!(coalesced.failed, per_tuple.failed);
        assert!(
            coalesced.events < per_tuple.events,
            "batched run should coalesce events: {} !< {}",
            coalesced.events,
            per_tuple.events
        );
    }

    /// `metrics_history_cap` bounds the in-memory snapshot window and the
    /// first eviction is journaled as `history_truncated`.
    #[test]
    fn history_is_bounded_and_journaled() {
        let seen = Arc::new(AtomicU64::new(0));
        let topo = linear_topology(500.0, 50.0, 2, seen);
        let cfg = small_config().with_metrics_history_cap(3);
        let mut e = SimRuntime::new(topo, cfg).unwrap();
        e.run_until(8.0);
        assert_eq!(e.history().len(), 3);
        let truncations: Vec<_> = e
            .journal()
            .events()
            .iter()
            .filter(|ev| ev.kind() == "history_truncated")
            .cloned()
            .collect();
        assert_eq!(truncations.len(), 1, "journaled once, on first eviction");
    }

    /// A spout parked on `max_spout_pending` is woken by tree completions,
    /// not timer polls: a long idle horizon must not accumulate poll events.
    #[test]
    fn blocked_spout_wakes_on_ack_without_polling() {
        struct BurstSpout {
            left: u64,
        }
        impl Spout for BurstSpout {
            fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
                if self.left == 0 {
                    return false;
                }
                self.left -= 1;
                out.emit_with_id(Tuple::of([Value::from(self.left as i64)]), self.left);
                true
            }
        }
        let seen = Arc::new(AtomicU64::new(0));
        let s2 = seen.clone();
        let mut b = TopologyBuilder::new("parked");
        b.set_spout("s", 1, || BurstSpout { left: 10 })
            .unwrap()
            .output_fields(Fields::new(["v"]))
            .cost(CostModel {
                base_service_time_us: 10.0,
                jitter: 0.0,
            });
        b.set_bolt("c", 1, move || CountBolt { seen: s2.clone() })
            .unwrap()
            .shuffle_grouping("s")
            .unwrap()
            .cost(CostModel {
                base_service_time_us: 5000.0,
                jitter: 0.0,
            });
        let topo = b.build().unwrap();
        let mut cfg = small_config();
        cfg.max_spout_pending = 1;
        let mut e = SimRuntime::new(topo, cfg).unwrap();
        let report = e.run_until(30.0);
        assert_eq!(report.acked, 10);
        assert_eq!(seen.load(Ordering::Relaxed), 10);
        // A 1 ms poll loop over a 30 s horizon would be ~30k events; the
        // wake-driven engine needs only a few per tuple plus timer ticks.
        assert!(
            report.events < 500,
            "blocked spout should not poll: {} events",
            report.events
        );
    }
}

#[cfg(test)]
mod timeout_tests {
    use super::*;
    use crate::topology::{CostModel, TopologyBuilder};
    use crate::tuple::Value;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Spout that records ack/fail callbacks.
    struct TrackingSpout {
        emitted: u64,
        acked: Arc<AtomicU64>,
        failed: Arc<AtomicU64>,
        limit: u64,
    }

    impl Spout for TrackingSpout {
        fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
            let due = (out.now_s() * 2000.0) as u64;
            let batch = due
                .saturating_sub(self.emitted)
                .min(16)
                .min(self.limit.saturating_sub(self.emitted));
            for _ in 0..batch {
                self.emitted += 1;
                out.emit_with_id(Tuple::of([Value::from(self.emitted as i64)]), self.emitted);
            }
            self.emitted < self.limit
        }
        fn ack(&mut self, _id: u64) {
            self.acked.fetch_add(1, Ordering::Relaxed);
        }
        fn fail(&mut self, _id: u64) {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Bolt that is far too slow for the offered load.
    struct SlowBolt;
    impl Bolt for SlowBolt {
        fn execute(&mut self, _t: &Tuple, _o: &mut BoltOutput) {}
    }

    #[test]
    fn overload_with_short_timeout_fails_trees_and_notifies_spout() {
        let acked = Arc::new(AtomicU64::new(0));
        let failed = Arc::new(AtomicU64::new(0));
        let (a2, f2) = (acked.clone(), failed.clone());
        let mut b = TopologyBuilder::new("timeout");
        b.set_spout("s", 1, move || TrackingSpout {
            emitted: 0,
            acked: a2.clone(),
            failed: f2.clone(),
            limit: u64::MAX,
        })
        .unwrap()
        .cost(CostModel {
            base_service_time_us: 5.0,
            jitter: 0.0,
        });
        // 2000 t/s offered, capacity 1/5ms = 200 t/s: queue grows without
        // bound until timeouts fire.
        b.set_bolt("slow", 1, || SlowBolt)
            .unwrap()
            .shuffle_grouping("s")
            .unwrap()
            .cost(CostModel {
                base_service_time_us: 5_000.0,
                jitter: 0.0,
            });
        let topo = b.build().unwrap();
        let mut cfg = EngineConfig::default().with_cluster(1, 1, 4);
        cfg.message_timeout_s = 2.0;
        cfg.max_spout_pending = 10_000;
        cfg.queue_capacity = 100_000; // disable backpressure: force timeouts
        let mut e = SimRuntime::new(topo, cfg).unwrap();
        let report = e.run_until(20.0);
        assert!(
            report.timed_out > 100,
            "timeouts fired: {}",
            report.timed_out
        );
        assert_eq!(
            failed.load(Ordering::Relaxed),
            report.timed_out,
            "every timeout reached the spout's fail callback"
        );
        assert!(
            acked.load(Ordering::Relaxed) > 0,
            "some trees still complete"
        );
        assert_eq!(report.failed, 0, "no explicit bolt failures");
    }

    #[test]
    fn explicit_bolt_failure_reaches_spout() {
        struct FailEveryOther {
            n: u64,
        }
        impl Bolt for FailEveryOther {
            fn execute(&mut self, _t: &Tuple, out: &mut BoltOutput) {
                self.n += 1;
                if self.n.is_multiple_of(2) {
                    out.fail();
                }
            }
        }
        let acked = Arc::new(AtomicU64::new(0));
        let failed = Arc::new(AtomicU64::new(0));
        let (a2, f2) = (acked.clone(), failed.clone());
        let mut b = TopologyBuilder::new("failures");
        b.set_spout("s", 1, move || TrackingSpout {
            emitted: 0,
            acked: a2.clone(),
            failed: f2.clone(),
            limit: 200,
        })
        .unwrap();
        b.set_bolt("flaky", 1, || FailEveryOther { n: 0 })
            .unwrap()
            .shuffle_grouping("s")
            .unwrap();
        let topo = b.build().unwrap();
        let mut e = SimRuntime::new(topo, EngineConfig::default().with_cluster(1, 1, 4)).unwrap();
        let report = e.run_until(30.0);
        assert_eq!(report.acked + report.failed, 200);
        assert_eq!(report.failed, 100);
        assert_eq!(failed.load(Ordering::Relaxed), 100);
        assert_eq!(acked.load(Ordering::Relaxed), 100);
    }
}

//! The discrete-event simulated runtime.
//!
//! [`SimRuntime`] executes a [`Topology`] under a virtual clock.  Every task
//! is a simulated executor placed on a worker process on a machine
//! ([`crate::scheduler`]); processing one tuple takes
//! `base_service_time × interference × worker_slowdown × (1 ± jitter)`
//! where the interference multiplier comes from the hosting machine's
//! current CPU pressure ([`super::machine`]).  Runs are deterministic for a
//! given seed.
//!
//! The engine exposes the two surfaces the paper's control framework needs:
//! a [`crate::metrics::MetricsSnapshot`] stream via the
//! control hook (observation), and the topology's
//! [`DynamicGroupingHandle`](crate::grouping::dynamic::DynamicGroupingHandle)s
//! (actuation).

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::acker::{Acker, Completion, RootId};
use crate::component::{Bolt, BoltOutput, Emission, Spout, SpoutOutput, TopologyContext};
use crate::config::EngineConfig;
use crate::error::{Error, Result};
use crate::grouping::{make_grouping, Grouping, GroupingSpec};
use crate::metrics::{
    LatencyHistogram, MachineStats, MetricsHistory, MetricsSnapshot, OnlineStats, TaskStats,
    TopologyStats, WorkerStats,
};
use crate::scheduler::{even_placement, MachineId, Placement, WorkerId};
use crate::stream::StreamId;
use crate::topology::{ComponentKind, TaskId, Topology};
use crate::tuple::{Fields, Tuple};

use super::event::EventQueue;
use super::machine::{Fault, InterferenceModel, MachineState};

/// Delay before re-polling a throttled or idle spout (seconds).
const POLL_BACKOFF_S: f64 = 0.001;

/// A tuple instance in flight or queued at a task.
#[derive(Debug, Clone)]
struct Delivered {
    tuple: Tuple,
    /// `(root, edge)` when the instance belongs to a tracked tuple tree.
    anchor: Option<(RootId, u64)>,
}

enum TaskKind {
    Spout(Box<dyn Spout>),
    Bolt(Box<dyn Bolt>),
}

/// One outbound edge of a producer task.
struct OutRoute {
    stream: StreamId,
    fields: Fields,
    subscriber_base: usize,
    grouping: Box<dyn Grouping>,
    is_direct: bool,
}

#[derive(Debug, Default, Clone)]
struct TaskCounters {
    executed: u64,
    emitted: u64,
    acked: u64,
    failed: u64,
    latency_sum_us: f64,
    busy_s: f64,
}

#[derive(Debug, Default, Clone)]
struct WorkerCounters {
    tuples_in: u64,
    tuples_out: u64,
}

#[derive(Debug, Default)]
struct TopoCounters {
    spout_emitted: u64,
    acked: u64,
    failed: u64,
    timed_out: u64,
    complete_us: OnlineStats,
    complete_hist_us: LatencyHistogram,
}

struct TaskRuntime {
    component_name: String,
    kind: TaskKind,
    queue: VecDeque<Delivered>,
    busy: bool,
    /// Tuple currently in service plus its service duration (bolts).
    in_service: Option<(Delivered, f64)>,
    /// Spouts: true once `next_tuple` returned `false`.
    exhausted: bool,
    /// Spouts: tracked tuple trees in flight.
    pending_roots: usize,
    routes: Vec<OutRoute>,
    base_cost_us: f64,
    jitter: f64,
    ctr: TaskCounters,
}

#[derive(Debug)]
enum Event {
    SpoutPoll {
        task: usize,
    },
    SpoutFinish {
        task: usize,
        emissions: Vec<Emission>,
    },
    Arrival {
        task: usize,
        delivered: Delivered,
        from_worker: WorkerId,
    },
    Finish {
        task: usize,
    },
    MetricsTick,
    BoltTick,
    ApplyFault {
        index: usize,
        starting: bool,
    },
}

/// Summary of a completed simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Final virtual time (seconds).
    pub end_time_s: f64,
    /// Events processed.
    pub events: u64,
    /// Total tuples emitted by spouts.
    pub spout_emitted: u64,
    /// Tuple trees fully acked.
    pub acked: u64,
    /// Tuple trees explicitly failed.
    pub failed: u64,
    /// Tuple trees timed out.
    pub timed_out: u64,
    /// Mean complete latency over the whole run (ms).
    pub avg_complete_latency_ms: f64,
    /// p99 complete latency over the whole run (ms).
    pub p99_complete_latency_ms: f64,
    /// Mean acked throughput (trees/s).
    pub avg_throughput: f64,
    /// Metrics snapshots produced.
    pub snapshots: usize,
}

/// Callback invoked at every metrics interval — the control framework's
/// entry point.
pub type ControlHook = Box<dyn FnMut(&MetricsSnapshot) + Send>;

/// Discrete-event simulated runtime for a topology.
pub struct SimRuntime {
    topology: Topology,
    config: EngineConfig,
    placement: Placement,
    tasks: Vec<TaskRuntime>,
    task_worker: Vec<WorkerId>,
    task_machine: Vec<MachineId>,
    machines: Vec<MachineState>,
    worker_slowdown: Vec<f64>,
    worker_ctr: Vec<WorkerCounters>,
    events: EventQueue<Event>,
    now: f64,
    acker: Acker,
    next_root: RootId,
    rng: StdRng,
    backpressure: bool,
    interval_ctr: TopoCounters,
    total_ctr: TopoCounters,
    history: MetricsHistory,
    hooks: Vec<ControlHook>,
    faults: Vec<Fault>,
    events_processed: u64,
    interval_index: u64,
    spout_out: SpoutOutput,
    bolt_out: BoltOutput,
    select_buf: Vec<usize>,
}

impl SimRuntime {
    /// Builds a runtime with the even scheduler.
    pub fn new(topology: Topology, config: EngineConfig) -> Result<Self> {
        let placement = even_placement(&topology, &config)?;
        Self::with_placement(topology, config, placement)
    }

    /// Builds a runtime with an explicit placement.
    pub fn with_placement(
        topology: Topology,
        config: EngineConfig,
        placement: Placement,
    ) -> Result<Self> {
        config.validate()?;
        if placement.num_tasks() != topology.task_count() {
            return Err(Error::Scheduling(format!(
                "placement covers {} tasks, topology has {}",
                placement.num_tasks(),
                topology.task_count()
            )));
        }

        let interference = InterferenceModel::default();
        let machines = (0..config.num_machines)
            .map(|_| MachineState::new(config.machine_cores, interference))
            .collect();

        let mut tasks = Vec::with_capacity(topology.task_count());
        let mut task_worker = Vec::with_capacity(topology.task_count());
        let mut task_machine = Vec::with_capacity(topology.task_count());

        for component in topology.components() {
            for (task_index, task) in component.tasks().enumerate() {
                let ctx = TopologyContext {
                    component: component.name.clone(),
                    task_index,
                    parallelism: component.parallelism,
                };
                let kind = match &component.kind {
                    ComponentKind::Spout(f) => {
                        let mut s = f();
                        s.open(&ctx);
                        TaskKind::Spout(s)
                    }
                    ComponentKind::Bolt(f) => {
                        let mut b = f();
                        b.prepare(&ctx);
                        TaskKind::Bolt(b)
                    }
                };

                // One router per outbound (stream, subscriber) edge.
                let mut routes = Vec::new();
                for decl in &component.outputs {
                    for (sub, spec) in topology.subscribers_of(component.id, &decl.id) {
                        let handle = match spec {
                            GroupingSpec::Dynamic(_) => {
                                topology.dynamic_handle(&component.name, &decl.id, &sub.name)
                            }
                            _ => None,
                        };
                        routes.push(OutRoute {
                            stream: decl.id.clone(),
                            fields: decl.fields.clone(),
                            subscriber_base: sub.base_task.0,
                            grouping: make_grouping(
                                spec,
                                sub.parallelism,
                                &decl.fields,
                                task_index,
                                handle,
                            ),
                            is_direct: matches!(spec, GroupingSpec::Direct),
                        });
                    }
                }

                task_worker.push(placement.worker_of(task));
                task_machine.push(placement.machine_of_task(task));
                tasks.push(TaskRuntime {
                    component_name: component.name.clone(),
                    kind,
                    queue: VecDeque::new(),
                    busy: false,
                    in_service: None,
                    exhausted: false,
                    pending_roots: 0,
                    routes,
                    base_cost_us: component.cost.base_service_time_us,
                    jitter: component.cost.jitter,
                    ctr: TaskCounters::default(),
                });
            }
        }

        let num_workers = placement.num_workers();
        let mut engine = SimRuntime {
            rng: StdRng::seed_from_u64(config.seed),
            worker_slowdown: vec![1.0; num_workers],
            worker_ctr: vec![WorkerCounters::default(); num_workers],
            machines,
            tasks,
            task_worker,
            task_machine,
            topology,
            placement,
            events: EventQueue::new(),
            now: 0.0,
            acker: Acker::new(),
            next_root: 0,
            backpressure: false,
            interval_ctr: TopoCounters::default(),
            total_ctr: TopoCounters::default(),
            history: MetricsHistory::new(0),
            hooks: Vec::new(),
            faults: Vec::new(),
            events_processed: 0,
            interval_index: 0,
            spout_out: SpoutOutput::new(),
            bolt_out: BoltOutput::new(),
            select_buf: Vec::new(),
            config,
        };

        // Prime the event queue.
        for i in 0..engine.tasks.len() {
            if matches!(engine.tasks[i].kind, TaskKind::Spout(_)) {
                engine.events.schedule(0.0, Event::SpoutPoll { task: i });
            }
        }
        engine
            .events
            .schedule(engine.config.metrics_interval_s, Event::MetricsTick);
        if engine.config.tick_interval_s > 0.0 {
            engine
                .events
                .schedule(engine.config.tick_interval_s, Event::BoltTick);
        }
        Ok(engine)
    }

    /// The topology under execution (e.g. to fetch dynamic-grouping handles).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The task placement in effect.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Full metrics history collected so far.
    pub fn history(&self) -> &MetricsHistory {
        &self.history
    }

    /// Current virtual time (seconds).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Registers a control hook called after every metrics snapshot.
    pub fn add_control_hook(&mut self, hook: ControlHook) {
        self.hooks.push(hook);
    }

    /// Snapshot of the cumulative complete-latency histogram (µs).  Diff two
    /// snapshots (see [`LatencyHistogram::diff`]) to get the distribution of
    /// a time window.
    pub fn complete_latency_histogram(&self) -> LatencyHistogram {
        self.total_ctr.complete_hist_us.clone()
    }

    /// Schedules a fault.  Must be called before [`run_until`](Self::run_until).
    pub fn inject_fault(&mut self, fault: Fault) -> Result<()> {
        if !fault.is_valid() {
            return Err(Error::Config(format!("invalid fault window: {fault:?}")));
        }
        match &fault {
            Fault::ExternalLoad { machine, .. } => {
                if *machine >= self.machines.len() {
                    return Err(Error::Config(format!("no machine {machine}")));
                }
            }
            Fault::WorkerSlowdown { worker, factor, .. } => {
                if *worker >= self.worker_slowdown.len() {
                    return Err(Error::Config(format!("no worker {worker}")));
                }
                if *factor <= 0.0 {
                    return Err(Error::Config("slowdown factor must be positive".into()));
                }
            }
        }
        let index = self.faults.len();
        self.events.schedule(
            fault.from_s(),
            Event::ApplyFault {
                index,
                starting: true,
            },
        );
        self.events.schedule(
            fault.until_s(),
            Event::ApplyFault {
                index,
                starting: false,
            },
        );
        self.faults.push(fault);
        Ok(())
    }

    /// Runs the simulation until virtual time `t_end` (seconds) and returns
    /// a summary.  Can be called repeatedly to continue the same run.
    pub fn run_until(&mut self, t_end: f64) -> RunReport {
        while let Some(time) = self.events.peek_time() {
            if time > t_end {
                break;
            }
            let scheduled = self.events.pop().expect("peeked event exists");
            self.now = scheduled.time;
            self.events_processed += 1;
            self.dispatch(scheduled.event);
        }
        self.now = self.now.max(t_end);
        self.report()
    }

    /// Builds the run summary so far.
    pub fn report(&self) -> RunReport {
        let t = &self.total_ctr;
        RunReport {
            end_time_s: self.now,
            events: self.events_processed,
            spout_emitted: t.spout_emitted,
            acked: t.acked,
            failed: t.failed,
            timed_out: t.timed_out,
            avg_complete_latency_ms: t.complete_us.mean() / 1000.0,
            p99_complete_latency_ms: t.complete_hist_us.quantile(0.99).unwrap_or(0.0) / 1000.0,
            avg_throughput: if self.now > 0.0 {
                t.acked as f64 / self.now
            } else {
                0.0
            },
            snapshots: self.history.len(),
        }
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::SpoutPoll { task } => self.on_spout_poll(task),
            Event::SpoutFinish { task, emissions } => self.on_spout_finish(task, emissions),
            Event::Arrival {
                task,
                delivered,
                from_worker,
            } => self.on_arrival(task, delivered, from_worker),
            Event::Finish { task } => self.on_finish(task),
            Event::MetricsTick => self.on_metrics_tick(),
            Event::BoltTick => self.on_bolt_tick(),
            Event::ApplyFault { index, starting } => self.on_fault(index, starting),
        }
    }

    /// Service time in seconds for one tuple at `task`, sampled now.
    fn sample_service_s(&mut self, task: usize) -> f64 {
        let machine = self.task_machine[task].0;
        let worker = self.task_worker[task].0;
        let t = &self.tasks[task];
        let mult = self.machines[machine].interference_multiplier() * self.worker_slowdown[worker];
        let jitter = if t.jitter > 0.0 {
            1.0 + self.rng.gen_range(-t.jitter..=t.jitter)
        } else {
            1.0
        };
        (t.base_cost_us * mult * jitter).max(0.01) * 1e-6
    }

    fn machine_busy_start(&mut self, task: usize) {
        self.machines[self.task_machine[task].0].busy_executors += 1;
    }

    fn machine_busy_end(&mut self, task: usize, duration_s: f64) {
        let m = &mut self.machines[self.task_machine[task].0];
        m.busy_executors = m.busy_executors.saturating_sub(1);
        m.busy_core_seconds += duration_s;
    }

    fn on_spout_poll(&mut self, task: usize) {
        if self.tasks[task].exhausted || self.tasks[task].busy {
            return;
        }
        let throttled = (self.config.ack_enabled
            && self.tasks[task].pending_roots >= self.config.max_spout_pending)
            || self.check_backpressure();
        if throttled {
            self.events
                .schedule(self.now + POLL_BACKOFF_S, Event::SpoutPoll { task });
            return;
        }

        self.spout_out.set_now(self.now);
        let keep_going = match &mut self.tasks[task].kind {
            TaskKind::Spout(s) => s.next_tuple(&mut self.spout_out),
            TaskKind::Bolt(_) => unreachable!("poll on bolt task"),
        };
        let emissions = self.spout_out.drain();
        if !keep_going {
            self.tasks[task].exhausted = true;
        }
        if emissions.is_empty() {
            if keep_going {
                self.events
                    .schedule(self.now + POLL_BACKOFF_S, Event::SpoutPoll { task });
            }
            return;
        }
        let per_tuple = self.sample_service_s(task);
        let service = per_tuple * emissions.len() as f64;
        self.tasks[task].busy = true;
        self.tasks[task].in_service = Some((
            Delivered {
                tuple: Tuple::of([]),
                anchor: None,
            },
            service,
        ));
        self.machine_busy_start(task);
        self.events
            .schedule(self.now + service, Event::SpoutFinish { task, emissions });
    }

    fn on_spout_finish(&mut self, task: usize, emissions: Vec<Emission>) {
        let service = self.tasks[task]
            .in_service
            .take()
            .map(|(_, s)| s)
            .unwrap_or(0.0);
        self.machine_busy_end(task, service);
        let n = emissions.len() as u64;
        {
            let c = &mut self.tasks[task].ctr;
            c.executed += n;
            c.busy_s += service;
            c.latency_sum_us += service * 1e6;
        }
        self.interval_ctr.spout_emitted += n;
        self.total_ctr.spout_emitted += n;

        for emission in emissions {
            let root = match emission.message_id {
                Some(message_id) if self.config.ack_enabled => {
                    self.next_root += 1;
                    let root = self.next_root;
                    self.acker
                        .track(root, 0, TaskId(task), message_id, self.now);
                    self.tasks[task].pending_roots += 1;
                    Some(root)
                }
                _ => None,
            };
            let delivered = self.route_one(task, &emission, root);
            if let Some(root) = root {
                if delivered == 0 {
                    // Tree with no subscribers completes immediately.
                    self.acker.on_ack(root, 0, self.now);
                }
            }
        }
        self.drain_outcomes();
        self.tasks[task].busy = false;
        if !self.tasks[task].exhausted {
            self.events.schedule(self.now, Event::SpoutPoll { task });
        }
    }

    fn on_arrival(&mut self, task: usize, delivered: Delivered, from_worker: WorkerId) {
        if from_worker != self.task_worker[task] {
            self.worker_ctr[self.task_worker[task].0].tuples_in += 1;
        }
        self.tasks[task].queue.push_back(delivered);
        if self.tasks[task].queue.len() > self.config.queue_capacity {
            self.backpressure = true;
        }
        if !self.tasks[task].busy {
            self.start_service(task);
        }
    }

    fn start_service(&mut self, task: usize) {
        let Some(delivered) = self.tasks[task].queue.pop_front() else {
            return;
        };
        let service = self.sample_service_s(task);
        self.tasks[task].busy = true;
        self.tasks[task].in_service = Some((delivered, service));
        self.machine_busy_start(task);
        self.events
            .schedule(self.now + service, Event::Finish { task });
    }

    fn on_finish(&mut self, task: usize) {
        let (delivered, service) = self.tasks[task]
            .in_service
            .take()
            .expect("finish without service");
        self.machine_busy_end(task, service);

        self.bolt_out.set_now(self.now);
        match &mut self.tasks[task].kind {
            TaskKind::Bolt(b) => b.execute(&delivered.tuple, &mut self.bolt_out),
            TaskKind::Spout(_) => unreachable!("finish on spout task"),
        }
        let (emissions, failed) = self.bolt_out.drain();

        {
            let c = &mut self.tasks[task].ctr;
            c.executed += 1;
            c.busy_s += service;
            c.latency_sum_us += service * 1e6;
            if failed {
                c.failed += 1;
            } else {
                c.acked += 1;
            }
        }

        let root = delivered.anchor.map(|(r, _)| r);
        for emission in emissions {
            let anchor = if emission.anchored { root } else { None };
            self.route_one(task, &emission, anchor);
        }

        if let Some((root, edge)) = delivered.anchor {
            if failed {
                self.acker.on_fail(root, self.now);
            } else {
                self.acker.on_ack(root, edge, self.now);
            }
        }
        self.drain_outcomes();

        self.tasks[task].busy = false;
        if !self.tasks[task].queue.is_empty() {
            self.start_service(task);
        }
    }

    /// Routes one emission from `src` to all matching subscriber tasks.
    /// Returns the number of delivered instances.
    fn route_one(&mut self, src: usize, emission: &Emission, root: Option<RootId>) -> usize {
        let mut delivered = 0usize;
        let src_worker = self.task_worker[src];
        // Split borrows: routes belong to the source task; deliveries go
        // through the event queue, so no other task state is touched here.
        let n_routes = self.tasks[src].routes.len();
        for r in 0..n_routes {
            {
                let route = &self.tasks[src].routes[r];
                if route.stream != emission.stream {
                    continue;
                }
                match (emission.direct_task, route.is_direct) {
                    (Some(_), false) | (None, true) => continue,
                    _ => {}
                }
            }
            self.select_buf.clear();
            match emission.direct_task {
                Some(idx) => self.select_buf.push(idx),
                None => {
                    let mut buf = std::mem::take(&mut self.select_buf);
                    self.tasks[src].routes[r]
                        .grouping
                        .select(&emission.tuple, &mut buf);
                    self.select_buf = buf;
                }
            }
            for i in 0..self.select_buf.len() {
                let local = self.select_buf[i];
                let route = &self.tasks[src].routes[r];
                let dest = route.subscriber_base + local;
                let tuple = emission.tuple.rekeyed(route.fields.clone());
                let anchor = root.map(|root| {
                    let edge = self.acker.new_edge_id();
                    self.acker.on_emit(root, edge);
                    (root, edge)
                });
                let dest_worker = self.task_worker[dest];
                let transfer_us = if dest_worker == src_worker {
                    self.config.local_transfer_us
                } else {
                    self.config.remote_transfer_us
                };
                if dest_worker != src_worker {
                    self.worker_ctr[src_worker.0].tuples_out += 1;
                }
                self.events.schedule(
                    self.now + transfer_us * 1e-6,
                    Event::Arrival {
                        task: dest,
                        delivered: Delivered { tuple, anchor },
                        from_worker: src_worker,
                    },
                );
                delivered += 1;
            }
        }
        if delivered > 0 {
            self.tasks[src].ctr.emitted += delivered as u64;
        }
        delivered
    }

    fn drain_outcomes(&mut self) {
        for outcome in self.acker.drain_outcomes() {
            let spout = outcome.spout_task.0;
            self.tasks[spout].pending_roots = self.tasks[spout].pending_roots.saturating_sub(1);
            let latency_us = outcome.complete_latency() * 1e6;
            match outcome.completion {
                Completion::Acked => {
                    self.interval_ctr.acked += 1;
                    self.total_ctr.acked += 1;
                    self.interval_ctr.complete_us.update(latency_us);
                    self.interval_ctr.complete_hist_us.record(latency_us);
                    self.total_ctr.complete_us.update(latency_us);
                    self.total_ctr.complete_hist_us.record(latency_us);
                    self.tasks[spout].ctr.acked += 1;
                    if let TaskKind::Spout(s) = &mut self.tasks[spout].kind {
                        s.ack(outcome.message_id);
                    }
                }
                Completion::Failed | Completion::TimedOut => {
                    if outcome.completion == Completion::Failed {
                        self.interval_ctr.failed += 1;
                        self.total_ctr.failed += 1;
                    } else {
                        self.interval_ctr.timed_out += 1;
                        self.total_ctr.timed_out += 1;
                    }
                    self.tasks[spout].ctr.failed += 1;
                    if let TaskKind::Spout(s) = &mut self.tasks[spout].kind {
                        s.fail(outcome.message_id);
                    }
                }
            }
        }
    }

    /// Returns the current backpressure state, clearing it when all queues
    /// have drained below half capacity.
    fn check_backpressure(&mut self) -> bool {
        if !self.backpressure {
            return false;
        }
        let high = self.config.queue_capacity / 2;
        if self.tasks.iter().all(|t| t.queue.len() <= high) {
            self.backpressure = false;
        }
        self.backpressure
    }

    fn on_bolt_tick(&mut self) {
        for task in 0..self.tasks.len() {
            if !matches!(self.tasks[task].kind, TaskKind::Bolt(_)) {
                continue;
            }
            self.bolt_out.set_now(self.now);
            if let TaskKind::Bolt(b) = &mut self.tasks[task].kind {
                b.tick(&mut self.bolt_out);
            }
            let (emissions, _) = self.bolt_out.drain();
            for emission in emissions {
                // Tick output has no input tuple to anchor to.
                self.route_one(task, &emission, None);
            }
        }
        self.events
            .schedule(self.now + self.config.tick_interval_s, Event::BoltTick);
    }

    fn on_fault(&mut self, index: usize, starting: bool) {
        match self.faults[index].clone() {
            Fault::ExternalLoad { machine, cores, .. } => {
                let m = &mut self.machines[machine];
                if starting {
                    m.external_load_cores += cores;
                } else {
                    m.external_load_cores = (m.external_load_cores - cores).max(0.0);
                }
            }
            Fault::WorkerSlowdown { worker, factor, .. } => {
                self.worker_slowdown[worker] = if starting { factor } else { 1.0 };
            }
        }
    }

    fn on_metrics_tick(&mut self) {
        if self.config.ack_enabled {
            self.acker.expire(self.now, self.config.message_timeout_s);
            self.drain_outcomes();
        }
        let snapshot = self.build_snapshot();
        for hook in &mut self.hooks {
            hook(&snapshot);
        }
        self.history.push(snapshot);
        self.reset_interval();
        self.interval_index += 1;
        self.events.schedule(
            self.now + self.config.metrics_interval_s,
            Event::MetricsTick,
        );
    }

    fn build_snapshot(&self) -> MetricsSnapshot {
        let interval_s = self.config.metrics_interval_s;
        let tasks: Vec<TaskStats> = self
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| TaskStats {
                task: TaskId(i),
                component: t.component_name.clone(),
                worker: self.task_worker[i],
                executed: t.ctr.executed,
                emitted: t.ctr.emitted,
                acked: t.ctr.acked,
                failed: t.ctr.failed,
                avg_execute_latency_us: if t.ctr.executed > 0 {
                    t.ctr.latency_sum_us / t.ctr.executed as f64
                } else {
                    0.0
                },
                queue_len: t.queue.len(),
                capacity: t.ctr.busy_s / interval_s,
                // The simulator delivers per tuple and runs no threads;
                // batching, panics and restarts are threaded-runtime concerns.
                batches_flushed: 0,
                linger_flushes: 0,
                panics: 0,
                restarts: 0,
                last_panic: None,
                // Checkpointing is a threaded-runtime concern; the
                // deterministic simulator never snapshots.
                checkpoints_taken: 0,
                restores: 0,
                snapshot_bytes: 0,
            })
            .collect();

        let workers: Vec<WorkerStats> = (0..self.worker_ctr.len())
            .map(|w| {
                let wid = WorkerId(w);
                let mut executed = 0u64;
                let mut lat_sum = 0.0;
                let mut cores = 0.0;
                let mut mem = 100.0;
                let mut num_tasks = 0usize;
                for (i, t) in self.tasks.iter().enumerate() {
                    if self.task_worker[i] != wid {
                        continue;
                    }
                    num_tasks += 1;
                    executed += t.ctr.executed;
                    lat_sum += t.ctr.latency_sum_us;
                    cores += t.ctr.busy_s / interval_s;
                    mem += t.queue.len() as f64 * 0.004;
                }
                WorkerStats {
                    worker: wid,
                    machine: self.placement.machine_of(wid),
                    cpu_cores_used: cores,
                    memory_mb: mem,
                    executed,
                    tuples_in: self.worker_ctr[w].tuples_in,
                    tuples_out: self.worker_ctr[w].tuples_out,
                    avg_execute_latency_us: if executed > 0 {
                        lat_sum / executed as f64
                    } else {
                        0.0
                    },
                    num_tasks,
                }
            })
            .collect();

        let machines: Vec<MachineStats> = self
            .machines
            .iter()
            .enumerate()
            .map(|(m, state)| MachineStats {
                machine: MachineId(m),
                cpu_cores_used: state.busy_core_seconds / interval_s,
                external_load_cores: state.external_load_cores,
                cores: state.cores,
                num_workers: self.placement.workers_of_machine(MachineId(m)).len(),
            })
            .collect();

        let c = &self.interval_ctr;
        let topology = TopologyStats {
            spout_emitted: c.spout_emitted,
            acked: c.acked,
            failed: c.failed,
            timed_out: c.timed_out,
            avg_complete_latency_ms: c.complete_us.mean() / 1000.0,
            p99_complete_latency_ms: c.complete_hist_us.quantile(0.99).unwrap_or(0.0) / 1000.0,
            throughput: c.acked as f64 / interval_s,
        };

        MetricsSnapshot {
            interval: self.interval_index,
            time_s: self.now,
            interval_s,
            tasks,
            workers,
            machines,
            topology,
        }
    }

    fn reset_interval(&mut self) {
        for t in &mut self.tasks {
            t.ctr = TaskCounters::default();
        }
        for w in &mut self.worker_ctr {
            *w = WorkerCounters::default();
        }
        for m in &mut self.machines {
            m.busy_core_seconds = 0.0;
        }
        self.interval_ctr = TopoCounters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{CostModel, TopologyBuilder};
    use crate::tuple::Value;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Spout emitting `rate` tuples/s with reliability ids.
    struct RateSpout {
        rate: f64,
        emitted: u64,
        next_id: u64,
        failed_replays: u64,
    }

    impl RateSpout {
        fn new(rate: f64) -> Self {
            RateSpout {
                rate,
                emitted: 0,
                next_id: 0,
                failed_replays: 0,
            }
        }
    }

    impl Spout for RateSpout {
        fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
            let due = (out.now_s() * self.rate) as u64;
            if self.emitted < due {
                self.emitted += 1;
                self.next_id += 1;
                out.emit_with_id(Tuple::of([Value::from(self.next_id as i64)]), self.next_id);
            }
            true
        }

        fn fail(&mut self, _id: u64) {
            self.failed_replays += 1;
        }
    }

    struct CountBolt {
        seen: Arc<AtomicU64>,
    }

    impl Bolt for CountBolt {
        fn execute(&mut self, _t: &Tuple, _o: &mut BoltOutput) {
            self.seen.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn linear_topology(
        rate: f64,
        bolt_cost_us: f64,
        bolt_par: usize,
        seen: Arc<AtomicU64>,
    ) -> Topology {
        let mut b = TopologyBuilder::new("test");
        b.set_spout("spout", 1, move || RateSpout::new(rate))
            .unwrap()
            .output_fields(Fields::new(["v"]))
            .cost(CostModel {
                base_service_time_us: 10.0,
                jitter: 0.0,
            });
        b.set_bolt("sink", bolt_par, move || CountBolt { seen: seen.clone() })
            .unwrap()
            .shuffle_grouping("spout")
            .unwrap()
            .cost(CostModel {
                base_service_time_us: bolt_cost_us,
                jitter: 0.0,
            });
        b.build().unwrap()
    }

    fn small_config() -> EngineConfig {
        EngineConfig::default().with_cluster(2, 2, 4)
    }

    #[test]
    fn tuples_flow_and_ack() {
        let seen = Arc::new(AtomicU64::new(0));
        let topo = linear_topology(1000.0, 50.0, 2, seen.clone());
        let mut engine = SimRuntime::new(topo, small_config()).unwrap();
        let report = engine.run_until(10.0);
        let processed = seen.load(Ordering::Relaxed);
        // ~1000 t/s for 10 s = ~10k tuples; allow slack for startup.
        assert!(processed > 9_000, "processed {processed}");
        assert!(report.acked > 9_000, "acked {}", report.acked);
        assert_eq!(report.failed, 0);
        assert_eq!(report.timed_out, 0);
        assert!(report.avg_complete_latency_ms > 0.0);
        assert!(report.spout_emitted >= report.acked);
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let run = |seed| {
            let seen = Arc::new(AtomicU64::new(0));
            let topo = linear_topology(500.0, 80.0, 2, seen.clone());
            let mut engine = SimRuntime::new(topo, small_config().with_seed(seed)).unwrap();
            let r = engine.run_until(5.0);
            (
                r.acked,
                r.spout_emitted,
                r.avg_complete_latency_ms,
                seen.load(Ordering::Relaxed),
            )
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b);
        let c = run(8);
        // Different seed changes jitterless run only via placement/rng use;
        // with zero jitter results may coincide, so just sanity-check totals.
        assert!(c.0 > 0);
    }

    #[test]
    fn metrics_snapshots_produced_each_interval() {
        let seen = Arc::new(AtomicU64::new(0));
        let topo = linear_topology(200.0, 100.0, 1, seen);
        let mut engine = SimRuntime::new(topo, small_config()).unwrap();
        engine.run_until(5.0);
        assert_eq!(engine.history().len(), 5);
        let snap = engine.history().latest().unwrap();
        assert_eq!(snap.tasks.len(), 2);
        assert_eq!(snap.workers.len(), 4);
        assert_eq!(snap.machines.len(), 2);
        assert!(snap.topology.throughput > 150.0);
        // Executing task has positive latency and capacity.
        let sink = snap.tasks.iter().find(|t| t.component == "sink").unwrap();
        assert!(sink.avg_execute_latency_us >= 99.0);
        assert!(sink.capacity > 0.0 && sink.capacity <= 1.0);
    }

    #[test]
    fn control_hook_called_per_interval() {
        let seen = Arc::new(AtomicU64::new(0));
        let topo = linear_topology(100.0, 50.0, 1, seen);
        let mut engine = SimRuntime::new(topo, small_config()).unwrap();
        let calls = Arc::new(AtomicU64::new(0));
        let c2 = calls.clone();
        engine.add_control_hook(Box::new(move |_snap| {
            c2.fetch_add(1, Ordering::Relaxed);
        }));
        engine.run_until(8.0);
        assert_eq!(calls.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn worker_slowdown_inflates_latency() {
        let baseline = {
            let seen = Arc::new(AtomicU64::new(0));
            let topo = linear_topology(500.0, 100.0, 1, seen);
            let mut e = SimRuntime::new(topo, small_config()).unwrap();
            e.run_until(10.0);
            e.history().latest().unwrap().tasks[1].avg_execute_latency_us
        };
        let degraded = {
            let seen = Arc::new(AtomicU64::new(0));
            let topo = linear_topology(500.0, 100.0, 1, seen);
            let mut e = SimRuntime::new(topo, small_config()).unwrap();
            // Bolt is task 1; find its worker and slow it 5x.
            let w = e.placement().worker_of(TaskId(1)).0;
            e.inject_fault(Fault::WorkerSlowdown {
                worker: w,
                factor: 5.0,
                from_s: 1.0,
                until_s: 10.0,
            })
            .unwrap();
            e.run_until(10.0);
            e.history().latest().unwrap().tasks[1].avg_execute_latency_us
        };
        assert!(
            degraded > baseline * 3.0,
            "slowdown should inflate latency: {baseline} -> {degraded}"
        );
    }

    #[test]
    fn external_load_inflates_service_time() {
        let run = |load: f64| {
            let seen = Arc::new(AtomicU64::new(0));
            let topo = linear_topology(500.0, 100.0, 1, seen);
            let mut e = SimRuntime::new(topo, small_config()).unwrap();
            let m = e.placement().machine_of_task(TaskId(1)).0;
            if load > 0.0 {
                e.inject_fault(Fault::ExternalLoad {
                    machine: m,
                    cores: load,
                    from_s: 0.0,
                    until_s: 10.0,
                })
                .unwrap();
            }
            e.run_until(10.0);
            e.history().latest().unwrap().tasks[1].avg_execute_latency_us
        };
        let idle = run(0.0);
        let loaded = run(8.0); // 2x oversubscription on 4 cores
        assert!(
            loaded > idle * 1.5,
            "external load must slow tasks: {idle} -> {loaded}"
        );
    }

    #[test]
    fn external_load_visible_in_machine_stats() {
        let seen = Arc::new(AtomicU64::new(0));
        let topo = linear_topology(100.0, 50.0, 1, seen);
        let mut e = SimRuntime::new(topo, small_config()).unwrap();
        e.inject_fault(Fault::ExternalLoad {
            machine: 0,
            cores: 3.0,
            from_s: 2.0,
            until_s: 4.0,
        })
        .unwrap();
        e.run_until(6.0);
        let history: Vec<_> = e.history().iter().collect();
        assert_eq!(history[0].machines[0].external_load_cores, 0.0);
        assert_eq!(history[2].machines[0].external_load_cores, 3.0);
        assert_eq!(history[5].machines[0].external_load_cores, 0.0);
    }

    #[test]
    fn overload_triggers_backpressure_not_unbounded_queues() {
        let seen = Arc::new(AtomicU64::new(0));
        // Offered load 10k t/s, bolt can do 1k t/s: queue must be bounded by
        // backpressure + max_spout_pending.
        let topo = linear_topology(10_000.0, 1000.0, 1, seen);
        let mut cfg = small_config();
        cfg.queue_capacity = 100;
        cfg.max_spout_pending = 200;
        let mut e = SimRuntime::new(topo, cfg).unwrap();
        e.run_until(10.0);
        let max_queue = e
            .history()
            .iter()
            .flat_map(|s| s.tasks.iter().map(|t| t.queue_len))
            .max()
            .unwrap();
        assert!(max_queue <= 250, "queue grew to {max_queue}");
    }

    #[test]
    fn fields_grouping_routes_by_key_in_engine() {
        struct KeySpout {
            i: u64,
        }
        impl Spout for KeySpout {
            fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
                self.i += 1;
                let key = format!("k{}", self.i % 4);
                out.emit(Tuple::of([Value::from(key.as_str())]));
                self.i < 200
            }
        }
        #[derive(Default)]
        struct KeyCollector {
            keys: std::collections::HashSet<String>,
            log: Arc<parking_lot::Mutex<Vec<std::collections::HashSet<String>>>>,
            registered: bool,
        }
        impl Bolt for KeyCollector {
            fn execute(&mut self, t: &Tuple, _o: &mut BoltOutput) {
                self.keys
                    .insert(t.get_by_field("url").unwrap().as_str().unwrap().to_owned());
                if !self.registered {
                    self.registered = true;
                }
                let mut log = self.log.lock();
                log.push(self.keys.clone());
            }
        }
        let log: Arc<parking_lot::Mutex<Vec<std::collections::HashSet<String>>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let log2 = log.clone();
        let mut b = TopologyBuilder::new("fields");
        b.set_spout("s", 1, || KeySpout { i: 0 })
            .unwrap()
            .output_fields(Fields::new(["url"]));
        b.set_bolt("c", 2, move || KeyCollector {
            log: log2.clone(),
            ..Default::default()
        })
        .unwrap()
        .fields_grouping("s", &["url"])
        .unwrap();
        let topo = b.build().unwrap();
        let mut e = SimRuntime::new(topo, small_config()).unwrap();
        e.run_until(5.0);
        // Each key must appear in exactly one task's key set.
        let final_sets = log.lock();
        let last_by_size: Vec<_> = final_sets.iter().rev().take(2).collect();
        if last_by_size.len() == 2 {
            let intersection: Vec<_> = last_by_size[0].intersection(last_by_size[1]).collect();
            assert!(
                intersection.is_empty() || last_by_size[0] == last_by_size[1],
                "a key reached two different tasks: {intersection:?}"
            );
        }
    }

    #[test]
    fn dynamic_grouping_reroute_during_run() {
        struct TaskCounterBolt {
            counts: Arc<AtomicU64>,
        }
        impl Bolt for TaskCounterBolt {
            fn execute(&mut self, _t: &Tuple, _o: &mut BoltOutput) {
                self.counts.fetch_add(1, Ordering::Relaxed);
            }
        }
        // 4 sink tasks; count arrivals per *component* then verify via task
        // stats which tasks got traffic after the reroute.
        let counts = Arc::new(AtomicU64::new(0));
        let c = counts.clone();
        let mut b = TopologyBuilder::new("dyn");
        b.set_spout("s", 1, || RateSpout::new(2000.0))
            .unwrap()
            .output_fields(Fields::new(["v"]))
            .cost(CostModel {
                base_service_time_us: 5.0,
                jitter: 0.0,
            });
        b.set_bolt("sink", 4, move || TaskCounterBolt { counts: c.clone() })
            .unwrap()
            .dynamic_grouping("s")
            .unwrap()
            .cost(CostModel {
                base_service_time_us: 20.0,
                jitter: 0.0,
            });
        let topo = b.build().unwrap();
        let handle = topo
            .dynamic_handle("s", &StreamId::default(), "sink")
            .unwrap();
        let mut e = SimRuntime::new(topo, small_config()).unwrap();
        e.run_until(3.0);
        let before: Vec<u64> = e.history().latest().unwrap().tasks[1..]
            .iter()
            .map(|t| t.executed)
            .collect();
        assert!(
            before.iter().all(|&n| n > 0),
            "uniform split feeds all: {before:?}"
        );

        // Zero-out task 2 (bypass a misbehaving worker) and keep running.
        handle
            .set_ratio(crate::grouping::dynamic::SplitRatio::new(vec![1.0, 1.0, 0.0, 1.0]).unwrap())
            .unwrap();
        e.run_until(6.0);
        let after: Vec<u64> = e.history().latest().unwrap().tasks[1..]
            .iter()
            .map(|t| t.executed)
            .collect();
        assert_eq!(after[2], 0, "bypassed task got traffic: {after:?}");
        assert!(after[0] > 0 && after[1] > 0 && after[3] > 0);
    }

    #[test]
    fn rejects_invalid_faults() {
        let seen = Arc::new(AtomicU64::new(0));
        let topo = linear_topology(100.0, 50.0, 1, seen);
        let mut e = SimRuntime::new(topo, small_config()).unwrap();
        assert!(e
            .inject_fault(Fault::ExternalLoad {
                machine: 99,
                cores: 1.0,
                from_s: 0.0,
                until_s: 1.0
            })
            .is_err());
        assert!(e
            .inject_fault(Fault::WorkerSlowdown {
                worker: 99,
                factor: 2.0,
                from_s: 0.0,
                until_s: 1.0
            })
            .is_err());
        assert!(e
            .inject_fault(Fault::WorkerSlowdown {
                worker: 0,
                factor: 0.0,
                from_s: 0.0,
                until_s: 1.0
            })
            .is_err());
        assert!(e
            .inject_fault(Fault::WorkerSlowdown {
                worker: 0,
                factor: 2.0,
                from_s: 5.0,
                until_s: 1.0
            })
            .is_err());
    }

    #[test]
    fn finite_spout_drains_and_stops() {
        struct FiniteSpout {
            left: u64,
        }
        impl Spout for FiniteSpout {
            fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
                if self.left == 0 {
                    return false;
                }
                self.left -= 1;
                out.emit_with_id(Tuple::of([Value::from(self.left as i64)]), self.left);
                true
            }
        }
        let seen = Arc::new(AtomicU64::new(0));
        let s2 = seen.clone();
        let mut b = TopologyBuilder::new("finite");
        b.set_spout("s", 1, || FiniteSpout { left: 100 }).unwrap();
        b.set_bolt("c", 1, move || CountBolt { seen: s2.clone() })
            .unwrap()
            .shuffle_grouping("s")
            .unwrap();
        let topo = b.build().unwrap();
        let mut e = SimRuntime::new(topo, small_config()).unwrap();
        let report = e.run_until(30.0);
        assert_eq!(seen.load(Ordering::Relaxed), 100);
        assert_eq!(report.acked, 100);
        assert_eq!(report.spout_emitted, 100);
    }

    #[test]
    fn run_until_can_be_resumed() {
        let seen = Arc::new(AtomicU64::new(0));
        let topo = linear_topology(1000.0, 50.0, 2, seen);
        let mut e = SimRuntime::new(topo, small_config()).unwrap();
        let r1 = e.run_until(2.0);
        let r2 = e.run_until(4.0);
        assert!(r2.acked > r1.acked);
        assert_eq!(e.history().len(), 4);
        assert!((e.now() - 4.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod timeout_tests {
    use super::*;
    use crate::topology::{CostModel, TopologyBuilder};
    use crate::tuple::Value;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Spout that records ack/fail callbacks.
    struct TrackingSpout {
        emitted: u64,
        acked: Arc<AtomicU64>,
        failed: Arc<AtomicU64>,
        limit: u64,
    }

    impl Spout for TrackingSpout {
        fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
            let due = (out.now_s() * 2000.0) as u64;
            let batch = due
                .saturating_sub(self.emitted)
                .min(16)
                .min(self.limit.saturating_sub(self.emitted));
            for _ in 0..batch {
                self.emitted += 1;
                out.emit_with_id(Tuple::of([Value::from(self.emitted as i64)]), self.emitted);
            }
            self.emitted < self.limit
        }
        fn ack(&mut self, _id: u64) {
            self.acked.fetch_add(1, Ordering::Relaxed);
        }
        fn fail(&mut self, _id: u64) {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Bolt that is far too slow for the offered load.
    struct SlowBolt;
    impl Bolt for SlowBolt {
        fn execute(&mut self, _t: &Tuple, _o: &mut BoltOutput) {}
    }

    #[test]
    fn overload_with_short_timeout_fails_trees_and_notifies_spout() {
        let acked = Arc::new(AtomicU64::new(0));
        let failed = Arc::new(AtomicU64::new(0));
        let (a2, f2) = (acked.clone(), failed.clone());
        let mut b = TopologyBuilder::new("timeout");
        b.set_spout("s", 1, move || TrackingSpout {
            emitted: 0,
            acked: a2.clone(),
            failed: f2.clone(),
            limit: u64::MAX,
        })
        .unwrap()
        .cost(CostModel {
            base_service_time_us: 5.0,
            jitter: 0.0,
        });
        // 2000 t/s offered, capacity 1/5ms = 200 t/s: queue grows without
        // bound until timeouts fire.
        b.set_bolt("slow", 1, || SlowBolt)
            .unwrap()
            .shuffle_grouping("s")
            .unwrap()
            .cost(CostModel {
                base_service_time_us: 5_000.0,
                jitter: 0.0,
            });
        let topo = b.build().unwrap();
        let mut cfg = EngineConfig::default().with_cluster(1, 1, 4);
        cfg.message_timeout_s = 2.0;
        cfg.max_spout_pending = 10_000;
        cfg.queue_capacity = 100_000; // disable backpressure: force timeouts
        let mut e = SimRuntime::new(topo, cfg).unwrap();
        let report = e.run_until(20.0);
        assert!(
            report.timed_out > 100,
            "timeouts fired: {}",
            report.timed_out
        );
        assert_eq!(
            failed.load(Ordering::Relaxed),
            report.timed_out,
            "every timeout reached the spout's fail callback"
        );
        assert!(
            acked.load(Ordering::Relaxed) > 0,
            "some trees still complete"
        );
        assert_eq!(report.failed, 0, "no explicit bolt failures");
    }

    #[test]
    fn explicit_bolt_failure_reaches_spout() {
        struct FailEveryOther {
            n: u64,
        }
        impl Bolt for FailEveryOther {
            fn execute(&mut self, _t: &Tuple, out: &mut BoltOutput) {
                self.n += 1;
                if self.n.is_multiple_of(2) {
                    out.fail();
                }
            }
        }
        let acked = Arc::new(AtomicU64::new(0));
        let failed = Arc::new(AtomicU64::new(0));
        let (a2, f2) = (acked.clone(), failed.clone());
        let mut b = TopologyBuilder::new("failures");
        b.set_spout("s", 1, move || TrackingSpout {
            emitted: 0,
            acked: a2.clone(),
            failed: f2.clone(),
            limit: 200,
        })
        .unwrap();
        b.set_bolt("flaky", 1, || FailEveryOther { n: 0 })
            .unwrap()
            .shuffle_grouping("s")
            .unwrap();
        let topo = b.build().unwrap();
        let mut e = SimRuntime::new(topo, EngineConfig::default().with_cluster(1, 1, 4)).unwrap();
        let report = e.run_until(30.0);
        assert_eq!(report.acked + report.failed, 200);
        assert_eq!(report.failed, 100);
        assert_eq!(failed.load(Ordering::Relaxed), 100);
        assert_eq!(acked.load(Ordering::Relaxed), 100);
    }
}

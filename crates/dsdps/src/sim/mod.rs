//! Discrete-event simulated runtime.
//!
//! This runtime substitutes for the physical Storm cluster of the paper's
//! evaluation (see `DESIGN.md` §2): virtual time, a machine/worker/executor
//! placement hierarchy, a co-location interference model, and deterministic
//! fault injection.  It exposes the identical observation surface
//! (multilevel [`crate::metrics::MetricsSnapshot`]s) and actuation surface
//! (dynamic-grouping handles) as the threaded runtime.

pub mod engine;
pub mod event;
pub mod machine;

pub use engine::{ControlHook, RunReport, SimRuntime};
pub use machine::{Fault, InterferenceModel, MachineState};

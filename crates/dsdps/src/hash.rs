//! Seeded FxHash: the multiply-and-rotate hasher used on the runtime's hot
//! paths.
//!
//! The acker and replay tables are keyed by dense 64-bit ids (`RootId`,
//! `MessageId`) and are touched several times per tuple; `std`'s default
//! SipHash spends more cycles per lookup than the rest of the operation.
//! FxHash (the rustc hasher) folds each word in with a rotate + xor +
//! multiply, which is enough mixing for non-adversarial integer keys while
//! costing a couple of instructions per word.
//!
//! The build hasher carries a seed, xor'ed into the initial state, so
//! distinct tables walk differently even with identical key sets (and so a
//! future DoS-hardening pass only has to randomize the seed).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// Multiplier from FxHash (the golden-ratio-derived odd constant).
const K: u64 = 0x517c_c1b7_2722_0a95;

/// A single hashing run.  See the module docs for the mixing function.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// Builds [`FxHasher`]s whose initial state is the seed.
#[derive(Debug, Clone, Copy)]
pub struct FxBuildHasher {
    seed: u64,
}

/// Default seed: an arbitrary odd constant (SplitMix64's increment) so the
/// unseeded state is not all-zero.
const DEFAULT_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

impl FxBuildHasher {
    /// Build hasher with an explicit seed.
    pub fn with_seed(seed: u64) -> Self {
        FxBuildHasher { seed }
    }
}

impl Default for FxBuildHasher {
    fn default() -> Self {
        FxBuildHasher { seed: DEFAULT_SEED }
    }
}

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher { hash: self.seed }
    }
}

/// A `HashMap` keyed with the seeded FxHash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the seeded FxHash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_with(seed: u64, v: u64) -> u64 {
        let mut h = FxBuildHasher::with_seed(seed).build_hasher();
        h.write_u64(v);
        h.finish()
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(hash_with(1, 42), hash_with(1, 42));
        assert_ne!(hash_with(1, 42), hash_with(2, 42), "seed must matter");
        assert_ne!(hash_with(1, 42), hash_with(1, 43));
    }

    #[test]
    fn bytes_and_word_paths_mix() {
        let mut a = FxBuildHasher::default().build_hasher();
        a.write(b"hello world...16");
        let mut b = FxBuildHasher::default().build_hasher();
        b.write(b"hello world...17");
        assert_ne!(a.finish(), b.finish());
        // Short (non-multiple-of-8) inputs hash too.
        let mut c = FxBuildHasher::default().build_hasher();
        c.write(b"abc");
        assert_ne!(c.finish(), 0);
    }

    #[test]
    fn sequential_keys_spread_over_buckets() {
        // The acker keys maps by sequential root ids; the low bits of the
        // hash must not collapse (that is what the multiply is for).
        let mask = 1023u64;
        let mut buckets = FxHashSet::default();
        for root in 0..1024u64 {
            buckets.insert(hash_with(DEFAULT_SEED, root) & mask);
        }
        assert!(
            buckets.len() > 600,
            "got {} distinct buckets",
            buckets.len()
        );
    }

    #[test]
    fn map_round_trip() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        m.insert(9, "nine");
        assert_eq!(m.get(&7), Some(&"seven"));
        assert_eq!(m.remove(&9), Some("nine"));
        assert!(!m.contains_key(&9));
    }
}

//! Spout and bolt traits plus the output collectors the runtime hands them.
//!
//! Components are written once and run unchanged on both the discrete-event
//! simulator ([`crate::sim`]) and the threaded runtime ([`crate::rt`]):
//! instead of pushing tuples into runtime-specific channels, a component
//! records emissions into a [`SpoutOutput`] / [`BoltOutput`] buffer which the
//! runtime drains and routes after the call returns.

use crate::rt::checkpoint::StatefulComponent;
use crate::stream::StreamId;
use crate::tuple::Tuple;

/// Identifier a spout attaches to a tuple so it can be acked or replayed.
pub type MessageId = u64;

/// Static information about the task a component instance is running as.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyContext {
    /// Name of the component this task belongs to.
    pub component: String,
    /// Index of this task within the component (`0..parallelism`).
    pub task_index: usize,
    /// Number of tasks of this component.
    pub parallelism: usize,
}

impl TopologyContext {
    /// Context for a single-task component, useful in unit tests.
    pub fn solo(component: &str) -> Self {
        TopologyContext {
            component: component.to_owned(),
            task_index: 0,
            parallelism: 1,
        }
    }
}

/// A single emission recorded by a component.
#[derive(Debug, Clone)]
pub struct Emission {
    /// Stream the tuple was emitted on.
    pub stream: StreamId,
    /// The tuple itself.
    pub tuple: Tuple,
    /// Spout-assigned message id for reliability tracking (spouts only).
    pub message_id: Option<MessageId>,
    /// If set, bypass the grouping and deliver to this task index of each
    /// subscriber (direct grouping).
    pub direct_task: Option<usize>,
    /// Whether the emission is anchored to the input tuple (bolts only).
    /// Unanchored tuples are not tracked by the acker.
    pub anchored: bool,
}

/// Collector a [`Spout`] writes into during [`Spout::next_tuple`].
#[derive(Debug, Default)]
pub struct SpoutOutput {
    emissions: Vec<Emission>,
    now_s: f64,
}

impl SpoutOutput {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current runtime clock in seconds (virtual time in the simulator,
    /// seconds since start on the threaded runtime).  Spouts use this for
    /// rate control and event timestamps.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Sets the clock before handing the collector to a component
    /// (runtime use).
    pub fn set_now(&mut self, now_s: f64) {
        self.now_s = now_s;
    }

    /// Emits a tuple on the default stream without reliability tracking.
    pub fn emit(&mut self, tuple: Tuple) {
        self.emit_to(StreamId::default(), tuple);
    }

    /// Emits a tuple on a named stream without reliability tracking.
    pub fn emit_to(&mut self, stream: StreamId, tuple: Tuple) {
        self.emissions.push(Emission {
            stream,
            tuple,
            message_id: None,
            direct_task: None,
            anchored: false,
        });
    }

    /// Emits a tuple on the default stream with a message id.  The runtime
    /// tracks the tuple tree and calls [`Spout::ack`] / [`Spout::fail`].
    pub fn emit_with_id(&mut self, tuple: Tuple, message_id: MessageId) {
        self.emissions.push(Emission {
            stream: StreamId::default(),
            tuple,
            message_id: Some(message_id),
            direct_task: None,
            anchored: false,
        });
    }

    /// Emits on a named stream with a message id.
    pub fn emit_to_with_id(&mut self, stream: StreamId, tuple: Tuple, message_id: MessageId) {
        self.emissions.push(Emission {
            stream,
            tuple,
            message_id: Some(message_id),
            direct_task: None,
            anchored: false,
        });
    }

    /// Number of buffered emissions.
    pub fn len(&self) -> usize {
        self.emissions.len()
    }

    /// True if nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.emissions.is_empty()
    }

    /// Drains the buffered emissions (runtime use).
    pub fn drain(&mut self) -> Vec<Emission> {
        std::mem::take(&mut self.emissions)
    }

    /// Moves the buffered emissions into `buf`, keeping both vectors'
    /// capacity — the allocation-free variant of [`drain`](Self::drain) the
    /// threaded runtime calls once per `next_tuple`.
    pub fn drain_into(&mut self, buf: &mut Vec<Emission>) {
        buf.append(&mut self.emissions);
    }
}

/// Collector a [`Bolt`] writes into during [`Bolt::execute`] / [`Bolt::tick`].
#[derive(Debug, Default)]
pub struct BoltOutput {
    emissions: Vec<Emission>,
    failed: bool,
    now_s: f64,
}

impl BoltOutput {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current runtime clock in seconds (see [`SpoutOutput::now_s`]).
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Sets the clock before handing the collector to a component
    /// (runtime use).
    pub fn set_now(&mut self, now_s: f64) {
        self.now_s = now_s;
    }

    /// Emits a tuple on the default stream, anchored to the input tuple
    /// (the acker extends the tuple tree — Storm "basic bolt" semantics).
    pub fn emit(&mut self, tuple: Tuple) {
        self.emit_to(StreamId::default(), tuple);
    }

    /// Emits on a named stream, anchored to the input tuple.
    pub fn emit_to(&mut self, stream: StreamId, tuple: Tuple) {
        self.emissions.push(Emission {
            stream,
            tuple,
            message_id: None,
            direct_task: None,
            anchored: true,
        });
    }

    /// Emits on the default stream without anchoring: failure of the emitted
    /// tuple will not replay the spout tuple.
    pub fn emit_unanchored(&mut self, tuple: Tuple) {
        self.emissions.push(Emission {
            stream: StreamId::default(),
            tuple,
            message_id: None,
            direct_task: None,
            anchored: false,
        });
    }

    /// Emits directly to one task of every subscribing component that used
    /// direct grouping on `stream`.
    pub fn emit_direct(&mut self, task_index: usize, stream: StreamId, tuple: Tuple) {
        self.emissions.push(Emission {
            stream,
            tuple,
            message_id: None,
            direct_task: Some(task_index),
            anchored: true,
        });
    }

    /// Marks the input tuple as failed.  The acker fails the whole tuple
    /// tree and the originating spout's [`Spout::fail`] runs.
    pub fn fail(&mut self) {
        self.failed = true;
    }

    /// True if the bolt failed the input tuple.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Number of buffered emissions.
    pub fn len(&self) -> usize {
        self.emissions.len()
    }

    /// True if nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.emissions.is_empty()
    }

    /// Drains buffered emissions and resets the failure flag (runtime use).
    pub fn drain(&mut self) -> (Vec<Emission>, bool) {
        let failed = std::mem::replace(&mut self.failed, false);
        (std::mem::take(&mut self.emissions), failed)
    }

    /// Moves buffered emissions into `buf` and returns the reset failure
    /// flag — the allocation-free variant of [`drain`](Self::drain) the
    /// threaded runtime calls once per `execute`.
    pub fn drain_into(&mut self, buf: &mut Vec<Emission>) -> bool {
        buf.append(&mut self.emissions);
        std::mem::replace(&mut self.failed, false)
    }
}

/// A stream source.  One instance exists per task.
pub trait Spout: Send {
    /// Called once before the first `next_tuple`.
    fn open(&mut self, _ctx: &TopologyContext) {}

    /// Produce the next tuple(s).  Returning `false` signals the spout is
    /// exhausted; the runtime stops polling it (used for finite workloads
    /// and tests — infinite spouts always return `true`).
    fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool;

    /// The tuple tree rooted at `message_id` was fully processed.
    fn ack(&mut self, _message_id: MessageId) {}

    /// The tuple tree rooted at `message_id` failed or timed out.
    /// Implementations typically re-emit the original tuple.
    fn fail(&mut self, _message_id: MessageId) {}

    /// Called when the topology shuts down.
    fn close(&mut self) {}
}

/// A stream operator.  One instance exists per task.
pub trait Bolt: Send {
    /// Called once before the first `execute`.
    fn prepare(&mut self, _ctx: &TopologyContext) {}

    /// Process one input tuple.
    fn execute(&mut self, tuple: &Tuple, out: &mut BoltOutput);

    /// Called at the configured tick interval (virtual time in the
    /// simulator, wall clock on the threaded runtime).  Used by windowed
    /// bolts to close windows.
    fn tick(&mut self, _out: &mut BoltOutput) {}

    /// Called when the topology shuts down.
    fn cleanup(&mut self) {}

    /// Access to the bolt's checkpointable state, when it has any.
    ///
    /// Stateful bolts return `Some(self)`; the threaded runtime's
    /// checkpoint coordinator then snapshots them on the configured
    /// interval and restores the latest snapshot on a supervisor restart
    /// (see [`crate::rt::checkpoint`]).  The default is stateless: a
    /// restart rebuilds the bolt from its component factory.
    fn stateful(&mut self) -> Option<&mut dyn StatefulComponent> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Value;

    #[test]
    fn spout_output_buffers_and_drains() {
        let mut out = SpoutOutput::new();
        assert!(out.is_empty());
        out.emit(Tuple::of([Value::from(1i64)]));
        out.emit_with_id(Tuple::of([Value::from(2i64)]), 42);
        out.emit_to(StreamId::new("side"), Tuple::of([Value::from(3i64)]));
        out.emit_to_with_id(StreamId::new("side"), Tuple::of([Value::from(4i64)]), 43);
        assert_eq!(out.len(), 4);
        let drained = out.drain();
        assert!(out.is_empty());
        assert_eq!(drained[0].message_id, None);
        assert_eq!(drained[1].message_id, Some(42));
        assert!(drained[1].stream.is_default());
        assert_eq!(drained[2].stream.as_str(), "side");
        assert_eq!(drained[3].message_id, Some(43));
    }

    #[test]
    fn bolt_output_anchoring_and_failure() {
        let mut out = BoltOutput::new();
        out.emit(Tuple::of([Value::from(1i64)]));
        out.emit_unanchored(Tuple::of([Value::from(2i64)]));
        out.emit_direct(3, StreamId::new("d"), Tuple::of([Value::from(3i64)]));
        assert!(!out.is_failed());
        out.fail();
        assert!(out.is_failed());
        let (emissions, failed) = out.drain();
        assert!(failed);
        assert!(!out.is_failed(), "drain resets failure flag");
        assert!(emissions[0].anchored);
        assert!(!emissions[1].anchored);
        assert_eq!(emissions[2].direct_task, Some(3));
    }

    #[test]
    fn context_solo() {
        let ctx = TopologyContext::solo("counter");
        assert_eq!(ctx.component, "counter");
        assert_eq!(ctx.task_index, 0);
        assert_eq!(ctx.parallelism, 1);
    }
}

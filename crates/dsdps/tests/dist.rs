//! End-to-end tests of the distributed (multi-process) runtime: API
//! calibration against the threaded backend, tuple/credit conservation
//! across the process boundary, and checkpointed recovery of a killed
//! worker process.
//!
//! Worker processes are this same test binary re-executed with
//! `--exact dist_worker_entry --ignored`: the [`dist_worker_entry`] test
//! reads `DSDPS_DIST_ADDR` / `DSDPS_DIST_WORKER` from the environment and
//! turns into a worker. Without those variables (e.g. the CI `--ignored`
//! soak) it returns immediately.

use std::time::{Duration, Instant};

use dsdps::component::{Bolt, BoltOutput, Spout, SpoutOutput, TopologyContext};
use dsdps::config::EngineConfig;
use dsdps::dist::{self, DistConfig, TopologyRegistry};
use dsdps::error::Result;
use dsdps::rt::{self, RecoveryMode, RtConfig, SnapshotKind, StateSnapshot, StatefulComponent};
use dsdps::topology::{Topology, TopologyBuilder};
use dsdps::tuple::{Tuple, Value};

// --- shared topologies (coordinator and workers build the same ones) ----

/// Emits `1..=n` once, each tuple tracked under its own message id.
struct FiniteSpout {
    left: u64,
    next_id: u64,
}

impl Spout for FiniteSpout {
    fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
        if self.left == 0 {
            return false;
        }
        self.left -= 1;
        self.next_id += 1;
        out.emit_with_id(Tuple::of([Value::from(self.next_id as i64)]), self.next_id);
        true
    }
}

/// Like [`FiniteSpout`] but paced, so the stream is still flowing when the
/// test kills a worker mid-run.
struct PacedSpout {
    left: u64,
    next_id: u64,
    rate: f64,
    started: Option<Instant>,
}

impl Spout for PacedSpout {
    fn open(&mut self, _ctx: &TopologyContext) {
        self.started = Some(Instant::now());
    }

    fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
        if self.left == 0 {
            return false;
        }
        let elapsed = self
            .started
            .map(|s| s.elapsed().as_secs_f64())
            .unwrap_or(0.0);
        if self.next_id as f64 >= elapsed * self.rate {
            return true;
        }
        self.left -= 1;
        self.next_id += 1;
        out.emit_with_id(Tuple::of([Value::from(self.next_id as i64)]), self.next_id);
        true
    }
}

struct Doubler;

impl Bolt for Doubler {
    fn execute(&mut self, tuple: &Tuple, out: &mut BoltOutput) {
        let v = tuple.get(0).unwrap().as_i64().unwrap();
        out.emit(Tuple::of([Value::from(v * 2)]));
    }
}

struct Sink;

impl Bolt for Sink {
    fn execute(&mut self, _tuple: &Tuple, _out: &mut BoltOutput) {}
}

/// A checkpointable counting bolt: state is `(count, sum)` of applied
/// tuples. The dist tests read its final state from the coordinator's
/// checkpoint store ([`dsdps::dist::coordinator::DistReport::final_snapshots`]), which is
/// the only cross-process observation channel.
struct StatefulCounter {
    count: u64,
    sum: u64,
}

impl Bolt for StatefulCounter {
    fn execute(&mut self, t: &Tuple, _o: &mut BoltOutput) {
        self.count += 1;
        self.sum += t.get(0).unwrap().as_i64().unwrap() as u64;
    }

    fn stateful(&mut self) -> Option<&mut dyn StatefulComponent> {
        Some(self)
    }
}

impl StatefulComponent for StatefulCounter {
    fn snapshot(&mut self) -> StateSnapshot {
        StateSnapshot::encode(SnapshotKind::Full, &(self.count, self.sum))
    }

    fn restore(
        &mut self,
        base: &StateSnapshot,
        deltas: &[StateSnapshot],
    ) -> std::result::Result<(), String> {
        assert!(deltas.is_empty(), "full-only component");
        let (count, sum): (u64, u64) = base.decode()?;
        self.count = count;
        self.sum = sum;
        Ok(())
    }
}

fn build_calib(args: &str) -> Result<Topology> {
    let n: u64 = args.parse().unwrap_or(1000);
    let mut b = TopologyBuilder::new("dist-calib");
    b.set_spout("src", 1, move || FiniteSpout {
        left: n,
        next_id: 0,
    })?;
    b.set_bolt("double", 2, || Doubler)?
        .shuffle_grouping("src")?;
    b.set_bolt("sink", 2, || Sink)?.shuffle_grouping("double")?;
    b.build()
}

fn build_stateful(args: &str) -> Result<Topology> {
    let mut it = args.split(':');
    let n: u64 = it.next().and_then(|s| s.parse().ok()).unwrap_or(500);
    let rate: f64 = it.next().and_then(|s| s.parse().ok()).unwrap_or(1000.0);
    let mut b = TopologyBuilder::new("dist-stateful");
    b.set_spout("src", 1, move || PacedSpout {
        left: n,
        next_id: 0,
        rate,
        started: None,
    })?;
    b.set_bolt("count", 1, || StatefulCounter { count: 0, sum: 0 })?
        .global_grouping("src")?;
    b.build()
}

fn registry() -> TopologyRegistry {
    let mut r = TopologyRegistry::new();
    r.register("calib", build_calib);
    r.register("stateful", build_stateful);
    r
}

/// The re-exec target that turns this test binary into a worker process.
/// A no-op unless the coordinator's env vars are present, so it is safe
/// under `cargo test -- --ignored` soaks.
#[test]
#[ignore = "worker-process entry point, spawned by the dist tests"]
fn dist_worker_entry() {
    if std::env::var("DSDPS_DIST_ADDR").is_err() {
        return;
    }
    dist::maybe_worker_from_env(&registry());
}

fn self_worker_cmd() -> Vec<String> {
    vec![
        std::env::current_exe()
            .expect("current_exe")
            .to_string_lossy()
            .into_owned(),
        "--exact".into(),
        "dist_worker_entry".into(),
        "--ignored".into(),
        "--nocapture".into(),
    ]
}

/// Polls until `done` or the timeout expires; returns whether it finished.
fn wait_until(timeout: Duration, mut done: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    done()
}

/// The calibration acceptance test: the identical topology, run on the
/// threaded backend and on worker processes, acks every tracked message
/// with zero loss — `acked == tracked == n` on both.
#[test]
fn dist_calibration_matches_threaded_runtime() {
    let n = 2_000u64;
    let rt_config = RtConfig::default().with_batch_size(64);

    // Threaded reference run.
    let topo = build_calib(&n.to_string()).unwrap();
    let running = rt::submit_with(topo, EngineConfig::default(), rt_config.clone()).unwrap();
    assert!(
        wait_until(Duration::from_secs(30), || running.acked() == n),
        "threaded run acked {}/{n}",
        running.acked()
    );
    let (_, threaded) = running.shutdown();

    // Distributed run, two worker processes.
    let running = dist::submit(
        &registry(),
        "calib",
        &n.to_string(),
        EngineConfig::default(),
        rt_config,
        DistConfig::new(2, self_worker_cmd()),
    )
    .unwrap();
    assert!(
        wait_until(Duration::from_secs(30), || running.acked() == n),
        "dist run acked {}/{n}",
        running.acked()
    );
    let dist_report = running.shutdown();

    assert_eq!(threaded.spout_emitted, n);
    assert_eq!(dist_report.spout_emitted, n, "{dist_report:?}");
    assert_eq!(threaded.tracked, dist_report.tracked, "tracked parity");
    assert_eq!(threaded.acked, dist_report.acked, "acked parity");
    assert_eq!(dist_report.acked, n, "zero loss");
    assert_eq!(dist_report.permanently_failed, 0);
    assert!(threaded.conservation_holds());
    assert!(dist_report.conservation_holds(), "{dist_report:?}");
    assert!(dist_report.drained_clean);
}

/// Conservation and credit invariants hold across the process boundary,
/// and the journal records the worker fleet's lifecycle.
#[test]
fn dist_conservation_credit_and_journal_invariants() {
    let n = 1_000u64;
    let running = dist::submit(
        &registry(),
        "calib",
        &n.to_string(),
        EngineConfig::default(),
        RtConfig::default().with_batch_size(16).with_credit_flow(32),
        DistConfig::new(2, self_worker_cmd()),
    )
    .unwrap();
    assert!(
        wait_until(Duration::from_secs(30), || running.acked() == n),
        "acked {}/{n}",
        running.acked()
    );
    let pids = running.worker_pids();
    let report = running.shutdown();

    assert!(report.conservation_holds(), "{report:?}");
    assert!(report.credit_conservation_holds(), "{:?}", report.credits);
    assert!(pids.iter().all(|&p| p != 0), "workers have pids: {pids:?}");
    assert_eq!(report.journal_of_kind("worker_spawned").len(), 2);
    assert_eq!(report.journal_of_kind("worker_connected").len(), 2);
    assert!(report.frames_sent > 0 && report.frames_received > 0);
    assert!(report.bytes_sent > 0 && report.bytes_received > 0);
}

/// The recovery acceptance test: a worker process is SIGKILLed mid-run
/// under exactly-once-effect. The supervisor respawns it, the replacement
/// restores from its latest checkpoint (`state_restored`), lost trees
/// replay, and the final counter state matches a fault-free run exactly.
#[test]
fn dist_killed_worker_restores_from_checkpoint() {
    let n = 600u64;
    let rate = 1_500.0;
    let engine = EngineConfig {
        message_timeout_s: 2.0,
        ..EngineConfig::default()
    };
    let rt_config = RtConfig::default()
        .with_batch_size(8)
        .with_max_replays(10)
        .with_replay_backoff(Duration::from_millis(20))
        .with_checkpoints(Duration::from_millis(50))
        .with_recovery_mode(RecoveryMode::ExactlyOnceEffect);
    let running = dist::submit(
        &registry(),
        "stateful",
        &format!("{n}:{rate}"),
        engine,
        rt_config,
        DistConfig::new(2, self_worker_cmd()),
    )
    .unwrap();

    // Wait until the stream is flowing and at least one checkpoint has
    // plausibly landed, then kill the worker owning the counter task.
    assert!(
        wait_until(Duration::from_secs(20), || running.acked() >= n / 4),
        "stream never got going: acked {}",
        running.acked()
    );
    running.kill_worker(0).expect("kill worker 0");

    assert!(
        wait_until(Duration::from_secs(30), || running.acked() == n),
        "recovery stalled: acked {}/{n}",
        running.acked()
    );
    let report = running.shutdown();

    assert!(report.worker_disconnects >= 1, "{report:?}");
    assert!(report.worker_restarts >= 1, "{report:?}");
    assert!(report.restores >= 1, "restored from checkpoint: {report:?}");
    assert!(
        !report.journal_of_kind("state_restored").is_empty(),
        "state_restored journaled"
    );
    assert!(report.checkpoints_taken > 0 && report.snapshot_bytes > 0);
    assert_eq!(report.acked, n, "every message recovered: {report:?}");
    assert!(report.conservation_holds(), "{report:?}");

    // Exactly-once effect: the counter's final snapshot equals the
    // fault-free outcome, despite replays crossing the kill.
    let snap = report.final_snapshots[1]
        .as_ref()
        .expect("counter task checkpointed");
    let (count, sum): (u64, u64) = snap.decode().expect("snapshot decodes");
    assert_eq!(count, n, "no lost or duplicated effects");
    assert_eq!(sum, n * (n + 1) / 2);
}

/// Scrapes the coordinator's Prometheus endpoint, returning the response
/// body text.
fn scrape_metrics(addr: std::net::SocketAddr) -> String {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).expect("connect metrics endpoint");
    s.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    out
}

/// The distributed observability acceptance scenario: a kill-restore run
/// with every tree traced (sample 1.0), worker metrics pushed on a short
/// interval and one live Prometheus endpoint on the coordinator.  The
/// merged span log, the worker-labelled metrics, the journal's worker
/// lifecycle and the report counters must tell one consistent story
/// across three OS processes and a respawn.
#[test]
fn dist_observability_spans_metrics_and_journal_agree() {
    use dsdps::telemetry::{trace::trace_id as derive_trace_id, validate_spans, JournalEvent};

    let n = 600u64;
    let rate = 1_500.0;
    let engine = EngineConfig {
        message_timeout_s: 2.0,
        metrics_interval_s: 0.1, // worker push cadence
        ..EngineConfig::default()
    };
    let rt_config = RtConfig::default()
        .with_batch_size(8)
        .with_max_replays(10)
        .with_replay_backoff(Duration::from_millis(20))
        .with_checkpoints(Duration::from_millis(50))
        .with_recovery_mode(RecoveryMode::ExactlyOnceEffect)
        .with_trace_sample_rate(1.0)
        .with_metrics_addr("127.0.0.1:0".parse().unwrap());
    let running = dist::submit(
        &registry(),
        "stateful",
        &format!("{n}:{rate}"),
        engine,
        rt_config,
        DistConfig::new(2, self_worker_cmd()),
    )
    .unwrap();
    let addr = running.metrics_addr().expect("metrics endpoint bound");
    let coord_pid = running.coordinator_pid();
    assert_eq!(coord_pid, std::process::id());

    // Let the stream flow, then kill the worker owning the counter task.
    assert!(
        wait_until(Duration::from_secs(20), || running.acked() >= n / 4),
        "stream never got going: acked {}",
        running.acked()
    );
    running.kill_worker(0).expect("kill worker 0");
    assert!(
        wait_until(Duration::from_secs(30), || running.acked() == n),
        "recovery stalled: acked {}/{n}",
        running.acked()
    );

    // -- Prometheus endpoint: one scrape unifies coordinator counters,
    // per-connection transport gauges and the workers' pushed families,
    // the latter labelled by worker slot and generation.  The respawned
    // worker's generation-2 families appear once its first push lands.
    assert!(
        wait_until(Duration::from_secs(10), || {
            scrape_metrics(addr).contains("generation=\"2\"")
        }),
        "respawned worker's metrics never reached the endpoint"
    );
    let scrape = scrape_metrics(addr);
    for family in [
        "dsdps_coord_tracked_total",
        "dsdps_coord_acked_total",
        "dsdps_coord_worker_restarts_total",
        "dsdps_dist_outstanding_window",
        "dsdps_dist_conn_frames_in_total",
        "dsdps_worker_executed_total",
        "dsdps_worker_batches_total",
        "dsdps_worker_uptime_seconds",
    ] {
        assert!(
            scrape.contains(family),
            "scrape is missing {family}:\n{scrape}"
        );
    }
    assert!(
        scrape.contains("worker=\"0\"") && scrape.contains("generation=\"1\""),
        "worker families carry slot and generation labels:\n{scrape}"
    );

    let report = running.shutdown();
    assert_eq!(report.acked, n, "every message recovered: {report:?}");
    assert!(report.conservation_holds(), "{report:?}");
    assert_eq!(report.coordinator_pid, coord_pid);

    // -- Span log: one merged, clock-normalized, structurally consistent
    // trace across processes.  Emits and terminals come from the
    // coordinator, hops from worker processes, so consistency here proves
    // wire propagation, push-back and clock normalization end to end.
    assert_eq!(report.spans_dropped, 0, "trace rings must not overflow");
    let summary = validate_spans(&report.spans).expect("merged span log is consistent");
    assert!(
        summary.hop_spans > 0,
        "worker hop spans came back: {summary:?}"
    );
    assert_eq!(
        summary.trees,
        (n + report.replays_emitted) as usize,
        "one tree per root plus one per replay emission: {summary:?}"
    );
    let worker_pids: std::collections::BTreeSet<u32> = report
        .spans
        .iter()
        .filter(|s| s.kind == dsdps::telemetry::SpanKind::Hop)
        .map(|s| s.pid)
        .collect();
    assert!(
        !worker_pids.is_empty() && !worker_pids.contains(&coord_pid) && !worker_pids.contains(&0),
        "hop spans carry real worker pids distinct from the coordinator: {worker_pids:?}"
    );
    assert!(
        report
            .spans
            .iter()
            .any(|s| s.kind == dsdps::telemetry::SpanKind::SpoutEmit && s.pid == coord_pid),
        "emit spans are stamped with the coordinator pid"
    );
    assert!(
        report.spans.iter().any(|s| s.generation >= 2),
        "the respawned worker's spans carry its new generation"
    );

    // -- Chrome trace: per-process metadata names the coordinator and each
    // worker process, so the merged view separates by pid.
    let chrome = report.chrome_trace_json();
    assert!(chrome.contains("process_name"), "{chrome}");
    assert!(chrome.contains("coordinator"), "{chrome}");
    assert!(chrome.contains("worker 0 (gen "), "{chrome}");

    // -- Journal: the worker lifecycle is fully attributed.  Assignments
    // decompose bring-up cost and record the clock offset the span
    // normalization used; the death carries a cause; the disconnect's lost
    // trace ids cross-reference the span log.
    let assigned = report.journal_of_kind("worker_assigned");
    assert!(assigned.len() >= 3, "2 initial + >=1 respawn: {assigned:?}");
    let mut saw_respawn = false;
    let mut assigned_tasks = 0usize;
    for e in &assigned {
        let JournalEvent::WorkerAssigned {
            pid,
            generation,
            tasks,
            ..
        } = e
        else {
            panic!("kind filter returned {e:?}");
        };
        assert!(*pid != 0, "assignment records the worker pid: {e:?}");
        assigned_tasks += *tasks;
        saw_respawn |= *generation >= 2;
    }
    assert!(assigned_tasks > 0, "bolt tasks were assigned: {assigned:?}");
    assert!(saw_respawn, "the respawned worker was re-assigned");
    let died = report.journal_of_kind("worker_died");
    assert!(!died.is_empty(), "the SIGKILL was reaped and journaled");
    for e in &died {
        let JournalEvent::WorkerDied { cause, pid, .. } = e else {
            panic!("kind filter returned {e:?}");
        };
        assert!(!cause.is_empty() && *pid != 0, "death has a cause: {e:?}");
    }
    let trace_ids = report.trace_ids();
    for e in report.journal_of_kind("worker_disconnected") {
        let JournalEvent::WorkerDisconnected { lost_trace_ids, .. } = e else {
            panic!("kind filter returned {e:?}");
        };
        for tid in lost_trace_ids {
            assert!(
                trace_ids.binary_search(tid).is_ok(),
                "lost trace id {tid:#x} cross-references the span log"
            );
        }
    }
    // Spans and journal agree on identity: every span's trace id is the
    // canonical derivation of its root.
    assert!(report
        .spans
        .iter()
        .all(|s| s.trace_id == derive_trace_id(s.root)));
}

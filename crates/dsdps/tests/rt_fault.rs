//! Fault-tolerance integration tests for the threaded runtime: injected
//! chaos (panics, slowdowns, tuple drops), task supervision and restart,
//! end-to-end replay, and the tuple-conservation invariant
//! `tracked == acked + permanently_failed + in_flight`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use dsdps::component::{Bolt, BoltOutput, MessageId, Spout, SpoutOutput, TopologyContext};
use dsdps::config::EngineConfig;
use dsdps::rt::{
    self, RecoveryMode, RtConfig, RtFault, RtFaultPlan, SnapshotKind, StateSnapshot,
    StatefulComponent,
};
use dsdps::topology::{Topology, TopologyBuilder};
use dsdps::tuple::{Tuple, Value};
use dsdps::window::{WindowAggregate, WindowAssigner, WindowedBolt};

/// Emits `1..=n` once, each tuple tracked under its own message id.
struct FiniteSpout {
    left: u64,
    next_id: u64,
}

impl Spout for FiniteSpout {
    fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
        if self.left == 0 {
            return false;
        }
        self.left -= 1;
        self.next_id += 1;
        out.emit_with_id(Tuple::of([Value::from(self.next_id as i64)]), self.next_id);
        true
    }
}

/// Like [`FiniteSpout`], but paced at `rate` tuples/s so the stream is still
/// flowing when wall-clock-scheduled faults fire.
struct PacedSpout {
    left: u64,
    next_id: u64,
    rate: f64,
    started: Option<Instant>,
}

impl PacedSpout {
    fn new(n: u64, rate: f64) -> Self {
        PacedSpout {
            left: n,
            next_id: 0,
            rate,
            started: None,
        }
    }
}

impl Spout for PacedSpout {
    fn open(&mut self, _ctx: &TopologyContext) {
        self.started = Some(Instant::now());
    }

    fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
        if self.left == 0 {
            return false;
        }
        let elapsed = self
            .started
            .map(|s| s.elapsed().as_secs_f64())
            .unwrap_or(0.0);
        if self.next_id as f64 >= elapsed * self.rate {
            // Ahead of schedule; emit nothing and let the runtime nap.
            return true;
        }
        self.left -= 1;
        self.next_id += 1;
        out.emit_with_id(Tuple::of([Value::from(self.next_id as i64)]), self.next_id);
        true
    }
}

/// Sums the values it sees (so delivery is checkable end to end).
struct Accumulator {
    sum: Arc<AtomicU64>,
}

impl Bolt for Accumulator {
    fn execute(&mut self, t: &Tuple, _o: &mut BoltOutput) {
        let v = t.get(0).unwrap().as_i64().unwrap() as u64;
        self.sum.fetch_add(v, Ordering::Relaxed);
    }
}

fn cluster() -> EngineConfig {
    let mut cfg = EngineConfig::default().with_cluster(2, 2, 4);
    cfg.metrics_interval_s = 0.25;
    cfg
}

fn wait_until(deadline_s: u64, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(deadline_s);
    while !done() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The acceptance scenario: a scheduled bolt panic plus a 10× slowdown of a
/// worker mid-run.  The supervised runtime restarts the dead task, replays
/// the trees lost in the crash, and still delivers every message exactly
/// once by the conservation accounting.  Runs at stripe counts 1 (the
/// single-global-acker degenerate case) and 8 to show chaos recovery does
/// not depend on acker sharding.
#[test]
fn supervised_runtime_recovers_from_panic_and_slowdown() {
    for shards in [1, 8] {
        supervised_recovery_at(shards);
    }
}

fn supervised_recovery_at(shards: usize) {
    const N: u64 = 2000;
    let sum = Arc::new(AtomicU64::new(0));
    let s2 = sum.clone();
    let mut b = TopologyBuilder::new("chaos");
    // Paced so the stream (2 s long) spans the panic at 0.4 s and most of
    // the slowdown window.
    b.set_spout("s", 1, move || PacedSpout::new(N, 1000.0))
        .unwrap();
    b.set_bolt("acc", 2, move || Accumulator { sum: s2.clone() })
        .unwrap()
        .shuffle_grouping("s")
        .unwrap();
    let topo = b.build().unwrap();

    let mut cfg = cluster();
    cfg.message_timeout_s = 2.0;
    // Tasks: 0 = spout, 1..=2 = bolts.  Panic bolt task 1 early; slow the
    // whole cluster's second bolt down 10× shortly after.
    let plan = RtFaultPlan::new()
        .with(RtFault::TaskPanic { task: 1, at_s: 0.4 })
        .with(RtFault::WorkerSlowdown {
            worker: 2,
            factor: 10.0,
            from_s: 0.8,
            until_s: 2.5,
        });
    let rt_cfg = RtConfig::default()
        .with_acker_shards(shards)
        .with_max_replays(5)
        .with_replay_backoff(Duration::from_millis(50))
        .with_hang_timeout(Duration::from_secs(2));
    let running = rt::submit_faulty(topo, cfg, rt_cfg, plan, None).unwrap();

    wait_until(30, || running.acked() >= N);
    let (_, report) = running.shutdown();

    assert_eq!(
        report.acked, N,
        "shards {shards}: replay must recover every tree: {report:?}"
    );
    assert_eq!(sum.load(Ordering::Relaxed), N * (N + 1) / 2, "payload sums");
    assert_eq!(report.task_panics, 1, "the injected panic was caught");
    assert!(
        report.task_restarts >= 1,
        "supervisor restarted the dead task: {report:?}"
    );
    assert!(
        report
            .panic_messages
            .iter()
            .any(|m| m.contains("injected fault")),
        "panic message recorded: {:?}",
        report.panic_messages
    );
    assert_eq!(report.tracked, N);
    assert_eq!(report.permanently_failed, 0);
    assert_eq!(report.in_flight, 0);
    assert!(report.conservation_holds(), "conservation: {report:?}");
}

/// Panics on the `n`-th tuple it executes (a user-code crash, as opposed to
/// an injected one).
struct PanickyBolt {
    executed: u64,
    panic_at: u64,
}

impl Bolt for PanickyBolt {
    fn execute(&mut self, _t: &Tuple, _o: &mut BoltOutput) {
        self.executed += 1;
        if self.executed == self.panic_at {
            panic!("boom on tuple {}", self.executed);
        }
    }
}

/// The control experiment for the tentpole: the SAME crash without
/// supervision or replay demonstrably loses tuple trees (they time out and
/// are permanently failed), while the panic is still caught and reported
/// instead of being swallowed by `JoinHandle::join`.
#[test]
fn unsupervised_runtime_loses_trees_on_panic() {
    const N: u64 = 300;
    let mut b = TopologyBuilder::new("unsupervised");
    b.set_spout("s", 1, || FiniteSpout {
        left: N,
        next_id: 0,
    })
    .unwrap();
    // Parallelism 1: every tuple must pass the panicking task.
    b.set_bolt("frail", 1, || PanickyBolt {
        executed: 0,
        panic_at: 50,
    })
    .unwrap()
    .shuffle_grouping("s")
    .unwrap();
    let topo = b.build().unwrap();

    let mut cfg = cluster();
    cfg.message_timeout_s = 1.5;
    let rt_cfg = RtConfig::default().with_supervision(false);
    let running = rt::submit_with(topo, cfg, rt_cfg).unwrap();

    // Every tree must reach a terminal state: a few acked, the rest timed
    // out after the bolt died.
    wait_until(25, || running.acked() + running.permanently_failed() >= N);
    let (_, report) = running.shutdown();

    assert_eq!(report.task_panics, 1, "user panic caught, not swallowed");
    assert_eq!(report.task_restarts, 0, "no supervisor, no restarts");
    assert!(
        report.panic_messages.iter().any(|m| m.contains("boom")),
        "panic text surfaces in the report: {:?}",
        report.panic_messages
    );
    assert!(
        report.acked < N,
        "without supervision trees are lost: {report:?}"
    );
    assert!(report.timed_out > 0, "lost trees time out: {report:?}");
    assert_eq!(report.tracked, N);
    assert_eq!(
        report.acked + report.permanently_failed + report.in_flight,
        N,
        "every tree accounted: {report:?}"
    );
    assert!(report.conservation_holds());
}

/// Records every terminal callback per message id, to prove none fires
/// twice and none is missed.
#[derive(Default)]
struct OutcomeLog {
    acked: HashMap<MessageId, u32>,
    failed: HashMap<MessageId, u32>,
}

struct RecordingSpout {
    left: u64,
    next_id: u64,
    log: Arc<Mutex<OutcomeLog>>,
}

impl Spout for RecordingSpout {
    fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
        if self.left == 0 {
            return false;
        }
        self.left -= 1;
        self.next_id += 1;
        out.emit_with_id(Tuple::of([Value::from(self.next_id as i64)]), self.next_id);
        true
    }

    fn ack(&mut self, id: MessageId) {
        *self.log.lock().acked.entry(id).or_insert(0) += 1;
    }

    fn fail(&mut self, id: MessageId) {
        *self.log.lock().failed.entry(id).or_insert(0) += 1;
    }
}

/// Fails every `nth` tuple via `BoltOutput::fail` (explicit user rejection).
struct RejectingBolt {
    seen: u64,
    nth: u64,
}

impl Bolt for RejectingBolt {
    fn execute(&mut self, _t: &Tuple, out: &mut BoltOutput) {
        self.seen += 1;
        if self.seen.is_multiple_of(self.nth) {
            out.fail();
        }
    }
}

fn every_nth_topology(n: u64, nth: u64, log: Arc<Mutex<OutcomeLog>>) -> Topology {
    let mut b = TopologyBuilder::new("every-nth");
    b.set_spout("s", 1, move || RecordingSpout {
        left: n,
        next_id: 0,
        log: log.clone(),
    })
    .unwrap();
    b.set_bolt("reject", 2, move || RejectingBolt { seen: 0, nth })
        .unwrap()
        .shuffle_grouping("s")
        .unwrap();
    b.build().unwrap()
}

/// A bolt failing every Nth tuple: each root reaches exactly one terminal
/// outcome (no drops, no double callbacks), at batch sizes 1 and 64.
#[test]
fn every_root_reaches_exactly_one_outcome() {
    const N: u64 = 1400;
    const NTH: u64 = 7;
    for batch_size in [1usize, 64] {
        let log: Arc<Mutex<OutcomeLog>> = Arc::default();
        let topo = every_nth_topology(N, NTH, log.clone());
        let rt_cfg = RtConfig::default()
            .with_batch_size(batch_size)
            .with_linger(Duration::from_millis(1));
        let running = rt::submit_with(topo, cluster(), rt_cfg).unwrap();
        wait_until(25, || {
            let l = log.lock();
            (l.acked.len() + l.failed.len()) as u64 >= N
        });
        let (_, report) = running.shutdown();

        let l = log.lock();
        assert_eq!(
            l.acked.len() as u64 + l.failed.len() as u64,
            N,
            "batch {batch_size}: every root has an outcome: {report:?}"
        );
        for (id, count) in l.acked.iter().chain(l.failed.iter()) {
            assert_eq!(
                *count, 1,
                "batch {batch_size}: id {id} got {count} callbacks"
            );
        }
        assert!(
            l.acked.keys().all(|id| !l.failed.contains_key(id)),
            "batch {batch_size}: no id may both ack and fail"
        );
        // Each bolt task fails its own every-7th, so the failure count is
        // within one per task of N/7.
        let failures = l.failed.len() as u64;
        assert!(
            (failures as i64 - (N / NTH) as i64).unsigned_abs() <= 2,
            "batch {batch_size}: ~N/{NTH} rejected, got {failures}"
        );
        assert_eq!(report.acked + report.failed, N);
        assert_eq!(report.tracked, N);
        assert_eq!(report.permanently_failed, failures);
        assert!(
            report.conservation_holds(),
            "batch {batch_size}: {report:?}"
        );
    }
}

/// An injected drop window silently discards deliveries; the trees time out
/// and the spout's replay buffer re-emits them until everything is acked.
/// Runs at stripe counts 1 and 8 — timeout expiry sweeps every stripe, so
/// the replay path must behave identically however pending trees are
/// partitioned.
#[test]
fn drop_fault_is_recovered_by_replay() {
    for shards in [1, 8] {
        drop_recovery_at(shards);
    }
}

fn drop_recovery_at(shards: usize) {
    const N: u64 = 500;
    let sum = Arc::new(AtomicU64::new(0));
    let s2 = sum.clone();
    let mut b = TopologyBuilder::new("drops");
    // 500 tuples at 400/s: emission (1.25 s) covers the whole drop window.
    b.set_spout("s", 1, move || PacedSpout::new(N, 400.0))
        .unwrap();
    b.set_bolt("acc", 1, move || Accumulator { sum: s2.clone() })
        .unwrap()
        .shuffle_grouping("s")
        .unwrap();
    let topo = b.build().unwrap();

    let mut cfg = cluster();
    cfg.message_timeout_s = 1.0;
    let plan = RtFaultPlan::new().with(RtFault::DropTuples {
        task: 1,
        from_s: 0.2,
        until_s: 1.2,
    });
    let rt_cfg = RtConfig::default()
        .with_acker_shards(shards)
        .with_max_replays(8)
        .with_replay_backoff(Duration::from_millis(100));
    let running = rt::submit_faulty(topo, cfg, rt_cfg, plan, None).unwrap();

    wait_until(30, || running.acked() >= N);
    let (_, report) = running.shutdown();

    assert_eq!(
        report.acked, N,
        "shards {shards}: replay recovers dropped trees: {report:?}"
    );
    assert!(report.dropped > 0, "the drop window must have fired");
    assert!(report.replays > 0, "recovery went through replay");
    assert_eq!(report.permanently_failed, 0);
    assert_eq!(report.tracked, N);
    assert!(report.conservation_holds(), "conservation: {report:?}");
    // Replayed trees deliver the same payload; the sum counts each value at
    // least once (duplicates possible when a delivery raced the timeout).
    assert!(sum.load(Ordering::Relaxed) >= N * (N + 1) / 2);
}

/// A hung task (no heartbeats) is superseded by the supervisor and the
/// stream keeps flowing through the replacement.  Runs at stripe counts 1
/// and 8: supersession replays trees whose acks are stranded in the hung
/// generation, whichever stripes they hash to.
#[test]
fn hung_task_is_superseded() {
    for shards in [1, 8] {
        hang_supersession_at(shards);
    }
}

fn hang_supersession_at(shards: usize) {
    const N: u64 = 800;
    let sum = Arc::new(AtomicU64::new(0));
    let s2 = sum.clone();
    let mut b = TopologyBuilder::new("hang");
    // 800 tuples at 1000/s: the hang at 0.3 s lands mid-stream.
    b.set_spout("s", 1, move || PacedSpout::new(N, 1000.0))
        .unwrap();
    b.set_bolt("acc", 1, move || Accumulator { sum: s2.clone() })
        .unwrap()
        .shuffle_grouping("s")
        .unwrap();
    let topo = b.build().unwrap();

    let mut cfg = cluster();
    cfg.message_timeout_s = 2.0;
    // Hang the only bolt from 0.3 s for far longer than the run; only the
    // supervisor can get the stream moving again.
    let plan = RtFaultPlan::new().with(RtFault::TaskHang {
        task: 1,
        from_s: 0.3,
        until_s: 60.0,
    });
    let rt_cfg = RtConfig::default()
        .with_acker_shards(shards)
        .with_hang_timeout(Duration::from_millis(500))
        .with_max_replays(5)
        .with_replay_backoff(Duration::from_millis(50));
    let running = rt::submit_faulty(topo, cfg, rt_cfg, plan, None).unwrap();

    wait_until(30, || running.acked() >= N);
    let (_, report) = running.shutdown();

    assert_eq!(
        report.acked, N,
        "shards {shards}: stream recovered after hang: {report:?}"
    );
    assert!(
        report.task_restarts >= 1,
        "hung task must be superseded: {report:?}"
    );
    assert_eq!(report.task_panics, 0, "a hang is not a panic");
    assert!(report.conservation_holds(), "conservation: {report:?}");
}

/// The observability acceptance scenario: the panic + slowdown chaos run
/// with every tree traced (sample rate 1.0).  The span log, the
/// control-plane journal and the report counters must tell one consistent
/// story — asserted on [`ThreadedReport`](dsdps::rt::ThreadedReport)
/// fields, not scraped from stdout.
#[test]
fn chaos_run_telemetry_is_consistent() {
    use dsdps::telemetry::{chrome_trace_json, trace::trace_id, validate_spans, JournalEvent};

    const N: u64 = 2000;
    let sum = Arc::new(AtomicU64::new(0));
    let s2 = sum.clone();
    let mut b = TopologyBuilder::new("chaos-telemetry");
    b.set_spout("s", 1, move || PacedSpout::new(N, 1000.0))
        .unwrap();
    b.set_bolt("acc", 2, move || Accumulator { sum: s2.clone() })
        .unwrap()
        .shuffle_grouping("s")
        .unwrap();
    let topo = b.build().unwrap();

    let mut cfg = cluster();
    cfg.message_timeout_s = 2.0;
    // Panic one bolt early, slow a worker mid-run, and silently drop a
    // window of deliveries — the drops guarantee timed-out trees and thus a
    // replayed-tree population for the trace assertions below.
    let plan = RtFaultPlan::new()
        .with(RtFault::TaskPanic { task: 1, at_s: 0.4 })
        .with(RtFault::WorkerSlowdown {
            worker: 2,
            factor: 10.0,
            from_s: 0.8,
            until_s: 2.5,
        })
        .with(RtFault::DropTuples {
            task: 2,
            from_s: 0.6,
            until_s: 1.2,
        });
    let rt_cfg = RtConfig::default()
        .with_max_replays(5)
        .with_replay_backoff(Duration::from_millis(50))
        .with_hang_timeout(Duration::from_secs(2))
        .with_trace_sample_rate(1.0);
    let running = rt::submit_faulty(topo, cfg, rt_cfg, plan, None).unwrap();

    wait_until(30, || running.acked() >= N);
    let (_, report) = running.shutdown();

    assert_eq!(report.acked, N, "replay recovers every tree: {report:?}");
    assert!(report.conservation_holds(), "conservation: {report:?}");
    assert!(
        report.replays > 0,
        "the drop window must have cost (and replayed) some trees: {report:?}"
    );

    // -- Span log: structurally consistent and complete at sample rate 1.0.
    assert_eq!(
        report.spans_dropped, 0,
        "trace rings must not overflow here"
    );
    let summary = validate_spans(&report.spans).expect("span log is consistent");
    assert_eq!(
        summary.open_trees, 0,
        "every sampled tree reached a terminal: {summary:?}"
    );
    assert_eq!(
        summary.trees,
        (N + report.replays) as usize,
        "one tree per original root plus one per replay emission: {summary:?}"
    );
    assert_eq!(
        summary.replayed_trees, report.replays as usize,
        "replayed trees carry replay_attempt > 0 on their emit span"
    );
    assert!(summary.hop_spans > 0, "bolt hops were recorded");

    // -- Journal: control-plane events match the report counters exactly.
    assert_eq!(
        report.journal_of_kind("task_restart").len() as u64,
        report.task_restarts,
        "journal: {:?}",
        report.journal
    );
    assert_eq!(
        report.journal_of_kind("fault_injected").len() as u64,
        report.task_panics,
        "each caught injected panic was journaled first"
    );
    assert_eq!(
        report.journal_of_kind("fault_planned").len(),
        3,
        "every planned fault was journaled at submit"
    );
    assert_eq!(
        report.journal_of_kind("replay_emitted").len() as u64,
        report.replays
    );

    // -- Cross-reference: every journaled replay emission points at a
    // sampled trace whose emit span records the same attempt.
    let sampled = report.sampled_trace_ids();
    for e in report.journal_of_kind("replay_emitted") {
        let JournalEvent::ReplayEmitted {
            root,
            trace_id: tid,
            attempt,
            ..
        } = e
        else {
            panic!("kind filter returned {e:?}");
        };
        assert_eq!(*tid, trace_id(*root), "journal trace id derivation");
        assert!(
            sampled.binary_search(tid).is_ok(),
            "replayed tree {root} must appear in the span log"
        );
        assert!(*attempt > 0, "replay attempts are 1-based");
    }

    // -- Chrome trace export: valid JSON with one event per span.
    let chrome = chrome_trace_json(&report.spans);
    let parsed = serde_json::parse(&chrome).expect("chrome trace is valid JSON");
    let events = parsed
        .as_object()
        .and_then(|o| o.iter().find(|(k, _)| k == "traceEvents"))
        .and_then(|(_, v)| v.as_array())
        .expect("traceEvents array");
    assert_eq!(events.len(), report.spans.len());
}

/// A checkpointable counting bolt: its state is the number and sum of
/// tuples applied.  Every mutation publishes the current state to `live`,
/// so the test can read the surviving incarnation's final counts.
struct StatefulCounter {
    count: u64,
    sum: u64,
    live: Arc<Mutex<(u64, u64)>>,
}

impl Bolt for StatefulCounter {
    fn execute(&mut self, t: &Tuple, _o: &mut BoltOutput) {
        self.count += 1;
        self.sum += t.get(0).unwrap().as_i64().unwrap() as u64;
        *self.live.lock() = (self.count, self.sum);
    }

    fn stateful(&mut self) -> Option<&mut dyn StatefulComponent> {
        Some(self)
    }
}

impl StatefulComponent for StatefulCounter {
    fn snapshot(&mut self) -> StateSnapshot {
        StateSnapshot::encode(SnapshotKind::Full, &(self.count, self.sum))
    }

    fn restore(&mut self, base: &StateSnapshot, deltas: &[StateSnapshot]) -> Result<(), String> {
        assert!(deltas.is_empty(), "full-only component");
        let (count, sum): (u64, u64) = base.decode()?;
        self.count = count;
        self.sum = sum;
        *self.live.lock() = (count, sum);
        Ok(())
    }
}

/// The checkpointed-recovery acceptance scenario: an injected panic kills a
/// stateful counting bolt mid-stream under each recovery guarantee.  In
/// every mode the restarted task resumes from its snapshot (not from
/// factory state), both conservation invariants close at shutdown, and the
/// journal agrees with the report's checkpoint counters.  Mode-specific
/// result guarantees:
///
/// * exactly-once-effect — final counts identical to a fault-free run;
/// * at-least-once — no tuple's effect lost, duplicates allowed;
/// * approximate — missing effects bounded by the reported skip count.
#[test]
fn killed_stateful_bolt_resumes_from_snapshot_in_all_modes() {
    for mode in [
        RecoveryMode::ExactlyOnceEffect,
        RecoveryMode::AtLeastOnce,
        RecoveryMode::Approximate,
    ] {
        checkpointed_recovery_under(mode);
    }
}

fn checkpointed_recovery_under(mode: RecoveryMode) {
    const N: u64 = 1500;
    const EXPECT_SUM: u64 = N * (N + 1) / 2;
    let live: Arc<Mutex<(u64, u64)>> = Arc::default();
    let l2 = live.clone();
    let mut b = TopologyBuilder::new("ckpt-recovery");
    // 1.5 s of stream; the panic at 0.4 s lands mid-flight.
    b.set_spout("s", 1, move || PacedSpout::new(N, 1000.0))
        .unwrap();
    b.set_bolt("counter", 1, move || StatefulCounter {
        count: 0,
        sum: 0,
        live: l2.clone(),
    })
    .unwrap()
    .shuffle_grouping("s")
    .unwrap();
    let topo = b.build().unwrap();

    let mut cfg = cluster();
    cfg.message_timeout_s = 1.0;
    let plan = RtFaultPlan::new().with(RtFault::TaskPanic { task: 1, at_s: 0.4 });
    let rt_cfg = RtConfig::default()
        .with_checkpoints(Duration::from_millis(100))
        .with_recovery_mode(mode)
        .with_credit_flow(64)
        .with_max_replays(8)
        .with_replay_backoff(Duration::from_millis(50))
        .with_hang_timeout(Duration::from_secs(2));
    let running = rt::submit_faulty(topo, cfg, rt_cfg, plan, None).unwrap();

    wait_until(30, || running.acked() + running.permanently_failed() >= N);
    let (_, report) = running.shutdown();

    let mode_s = mode.as_str();
    assert_eq!(report.task_panics, 1, "{mode_s}: injected panic caught");
    assert!(
        report.task_restarts >= 1,
        "{mode_s}: supervisor restarted the bolt: {report:?}"
    );
    assert!(
        report.checkpoints_taken > 0,
        "{mode_s}: snapshots were deposited: {report:?}"
    );
    assert!(report.snapshot_bytes > 0, "{mode_s}: snapshots have bytes");
    assert!(
        report.restores >= 1,
        "{mode_s}: the restarted bolt restored from its snapshot: {report:?}"
    );
    assert_eq!(report.tracked, N, "{mode_s}: every emission tracked");
    assert!(report.conservation_holds(), "{mode_s}: acks: {report:?}");
    assert!(
        report.credit_conservation_holds(),
        "{mode_s}: credits: {:?}",
        report.credits
    );
    assert!(report.credits.granted > 0, "{mode_s}: credit flow was on");

    // Report counters and journal tell one story.
    assert_eq!(
        report.journal_of_kind("checkpoint_taken").len() as u64,
        report.checkpoints_taken,
        "{mode_s}: each deposit journaled once"
    );
    assert_eq!(
        report.journal_of_kind("state_restored").len() as u64,
        report.restores,
        "{mode_s}: each restore journaled once"
    );
    assert_eq!(
        report.journal_of_kind("recovery_mode").len(),
        1,
        "{mode_s}: the active guarantee is journaled at submit"
    );

    let (count, sum) = *live.lock();
    match mode {
        RecoveryMode::ExactlyOnceEffect => {
            assert_eq!(report.acked, N, "{mode_s}: all trees acked: {report:?}");
            assert_eq!(report.permanently_failed, 0, "{mode_s}: {report:?}");
            assert_eq!(report.approx_skipped, 0, "{mode_s}: nothing skipped");
            assert_eq!(
                (count, sum),
                (N, EXPECT_SUM),
                "{mode_s}: counts identical to a fault-free run: {report:?}"
            );
        }
        RecoveryMode::AtLeastOnce => {
            assert_eq!(report.acked, N, "{mode_s}: all trees acked: {report:?}");
            assert_eq!(report.permanently_failed, 0, "{mode_s}: {report:?}");
            assert!(
                count >= N && sum >= EXPECT_SUM,
                "{mode_s}: no effect lost (duplicates allowed): \
                 count {count} sum {sum}: {report:?}"
            );
        }
        RecoveryMode::Approximate => {
            assert_eq!(
                report.acked + report.permanently_failed,
                N,
                "{mode_s}: every tree terminal: {report:?}"
            );
            assert_eq!(
                report.permanently_failed, report.approx_skipped,
                "{mode_s}: the only losses are the reported skips: {report:?}"
            );
            assert!(
                count + report.approx_skipped >= N,
                "{mode_s}: result error within the reported bound: \
                 count {count} + skipped {} < {N}: {report:?}",
                report.approx_skipped
            );
        }
    }
}

/// Counts tuples per tumbling window; closed windows flush their count into
/// a shared total, which is the externally observable result the guarantee
/// modes are judged on.
struct WindowCount {
    flushed: Arc<AtomicU64>,
}

impl WindowAggregate for WindowCount {
    type Acc = u64;

    fn add(&mut self, acc: &mut Self::Acc, _tuple: &Tuple) {
        *acc += 1;
    }

    fn emit(&mut self, _window_start_s: f64, acc: Self::Acc, _out: &mut BoltOutput) {
        self.flushed.fetch_add(acc, Ordering::SeqCst);
    }
}

/// The satellite scenario verbatim: panic a stateful *windowed* bolt under
/// each guarantee.  The window geometry (0.5 s tumbling + 0.5 s lateness,
/// panic at 0.4 s) guarantees no window closes before the crash, so every
/// flush happens from post-restore state and the flushed totals are judged
/// exactly:
///
/// * exactly-once-effect — flushed total identical to a fault-free run;
/// * at-least-once — nothing lost, duplicates allowed;
/// * approximate — shortfall bounded by the reported skip count.
#[test]
fn killed_windowed_bolt_keeps_its_guarantee_in_all_modes() {
    let fault_free = windowed_recovery_under(None);
    assert_eq!(
        fault_free.0, WINDOWED_N,
        "fault-free baseline flushes the whole stream"
    );
    for mode in [
        RecoveryMode::ExactlyOnceEffect,
        RecoveryMode::AtLeastOnce,
        RecoveryMode::Approximate,
    ] {
        let (flushed, report) = windowed_recovery_under(Some(mode));
        let mode_s = mode.as_str();
        assert_eq!(report.task_panics, 1, "{mode_s}: injected panic caught");
        assert!(
            report.restores >= 1,
            "{mode_s}: windowed state restored from its snapshot: {report:?}"
        );
        assert!(
            report.checkpoints_taken > 0 && report.snapshot_bytes > 0,
            "{mode_s}: window snapshots were deposited: {report:?}"
        );
        assert_eq!(report.tracked, WINDOWED_N, "{mode_s}: every tree tracked");
        assert!(report.conservation_holds(), "{mode_s}: acks: {report:?}");
        assert!(
            report.credit_conservation_holds(),
            "{mode_s}: credits: {:?}",
            report.credits
        );
        match mode {
            RecoveryMode::ExactlyOnceEffect => assert_eq!(
                flushed, fault_free.0,
                "{mode_s}: windowed counts identical to the fault-free run: {report:?}"
            ),
            RecoveryMode::AtLeastOnce => assert!(
                flushed >= fault_free.0,
                "{mode_s}: no windowed effect lost (duplicates allowed): \
                 flushed {flushed}: {report:?}"
            ),
            RecoveryMode::Approximate => assert!(
                flushed + report.approx_skipped >= fault_free.0,
                "{mode_s}: windowed shortfall within the reported bound: \
                 flushed {flushed} + skipped {} < {}: {report:?}",
                report.approx_skipped,
                fault_free.0
            ),
        }
    }
}

const WINDOWED_N: u64 = 1500;

/// Runs the windowed topology, optionally panicking the bolt at 0.4 s under
/// the given guarantee; returns the flushed-window total and the report.
fn windowed_recovery_under(mode: Option<RecoveryMode>) -> (u64, rt::ThreadedReport) {
    let flushed = Arc::new(AtomicU64::new(0));
    let f2 = flushed.clone();
    let mut b = TopologyBuilder::new("ckpt-windowed");
    b.set_spout("s", 1, move || PacedSpout::new(WINDOWED_N, 1000.0))
        .unwrap();
    b.set_bolt("win", 1, move || {
        WindowedBolt::new(
            WindowAssigner::Tumbling { size_s: 0.5 },
            WindowCount {
                flushed: f2.clone(),
            },
            0.5,
        )
    })
    .unwrap()
    .shuffle_grouping("s")
    .unwrap();
    let topo = b.build().unwrap();

    let mut cfg = cluster();
    cfg.message_timeout_s = 1.0;
    // Tick often enough that trailing windows flush promptly after the
    // stream ends.
    cfg.tick_interval_s = 0.25;
    let mut plan = RtFaultPlan::new();
    let mut rt_cfg = RtConfig::default()
        .with_checkpoints(Duration::from_millis(100))
        .with_credit_flow(64)
        .with_max_replays(8)
        .with_replay_backoff(Duration::from_millis(50))
        .with_hang_timeout(Duration::from_secs(2));
    if let Some(mode) = mode {
        plan = plan.with(RtFault::TaskPanic { task: 1, at_s: 0.4 });
        rt_cfg = rt_cfg.with_recovery_mode(mode);
    }
    let running = rt::submit_faulty(topo, cfg, rt_cfg, plan, None).unwrap();

    wait_until(30, || {
        running.acked() + running.permanently_failed() >= WINDOWED_N
    });
    // Every arrival is accounted for; now let the trailing windows close
    // (window end + lateness + a tick) — the flushed total is settled once
    // it stops moving for a full second.
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut last = flushed.load(Ordering::SeqCst);
    let mut stable_since = Instant::now();
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(100));
        let now_v = flushed.load(Ordering::SeqCst);
        if now_v != last {
            last = now_v;
            stable_since = Instant::now();
        } else if stable_since.elapsed() >= Duration::from_secs(1) && now_v > 0 {
            break;
        }
    }
    let (_, report) = running.shutdown();
    (flushed.load(Ordering::SeqCst), report)
}

// --- distributed worker-kill chaos --------------------------------------

/// Checkpointable counter for the multi-process kill test.  Unlike
/// [`StatefulCounter`] it carries no shared handle: the bolt runs in a
/// worker *process*, so the only observable result channel is the snapshot
/// it deposits with the coordinator — its flushed `(count, sum)` effects.
struct DistCounter {
    count: u64,
    sum: u64,
}

impl Bolt for DistCounter {
    fn execute(&mut self, t: &Tuple, _o: &mut BoltOutput) {
        self.count += 1;
        self.sum += t.get(0).unwrap().as_i64().unwrap() as u64;
    }

    fn stateful(&mut self) -> Option<&mut dyn StatefulComponent> {
        Some(self)
    }
}

impl StatefulComponent for DistCounter {
    fn snapshot(&mut self) -> StateSnapshot {
        StateSnapshot::encode(SnapshotKind::Full, &(self.count, self.sum))
    }

    fn restore(&mut self, base: &StateSnapshot, deltas: &[StateSnapshot]) -> Result<(), String> {
        assert!(deltas.is_empty(), "full-only component");
        let (count, sum): (u64, u64) = base.decode()?;
        self.count = count;
        self.sum = sum;
        Ok(())
    }
}

/// `args` is `"n:rate"` — a paced spout into one checkpointed counter.
fn build_dist_chaos(args: &str) -> dsdps::error::Result<Topology> {
    let mut it = args.split(':');
    let n: u64 = it.next().and_then(|s| s.parse().ok()).unwrap_or(500);
    let rate: f64 = it.next().and_then(|s| s.parse().ok()).unwrap_or(1000.0);
    let mut b = TopologyBuilder::new("dist-chaos");
    b.set_spout("s", 1, move || PacedSpout::new(n, rate))?;
    b.set_bolt("counter", 1, || DistCounter { count: 0, sum: 0 })?
        .global_grouping("s")?;
    b.build()
}

fn dist_registry() -> dsdps::dist::TopologyRegistry {
    let mut r = dsdps::dist::TopologyRegistry::new();
    r.register("chaos", build_dist_chaos);
    r
}

/// The re-exec target that turns this test binary into a worker process.
/// A no-op unless the coordinator's env vars are present, so it is safe
/// under `cargo test -- --ignored` soaks.
#[test]
#[ignore = "worker-process entry point, spawned by the dist chaos test"]
fn dist_worker_entry() {
    if std::env::var("DSDPS_DIST_ADDR").is_err() {
        return;
    }
    dsdps::dist::maybe_worker_from_env(&dist_registry());
}

/// Runs the dist chaos topology to completion (optionally SIGKILLing the
/// counter's worker mid-stream) and returns the counter's final flushed
/// state plus the report.
fn dist_chaos_run(
    n: u64,
    rate: f64,
    kill_worker: bool,
) -> ((u64, u64), dsdps::dist::coordinator::DistReport) {
    let worker_cmd = vec![
        std::env::current_exe()
            .expect("current_exe")
            .to_string_lossy()
            .into_owned(),
        "--exact".into(),
        "dist_worker_entry".into(),
        "--ignored".into(),
        "--nocapture".into(),
    ];
    let cfg = EngineConfig {
        message_timeout_s: 2.0,
        ..EngineConfig::default()
    };
    let rt_cfg = RtConfig::default()
        .with_batch_size(8)
        .with_max_replays(10)
        .with_replay_backoff(Duration::from_millis(20))
        .with_checkpoints(Duration::from_millis(50))
        .with_recovery_mode(RecoveryMode::ExactlyOnceEffect);
    let running = dsdps::dist::submit(
        &dist_registry(),
        "chaos",
        &format!("{n}:{rate}"),
        cfg,
        rt_cfg,
        dsdps::dist::DistConfig::new(2, worker_cmd),
    )
    .unwrap();

    if kill_worker {
        wait_until(20, || running.acked() >= n / 4);
        assert!(
            running.acked() >= n / 4,
            "stream never got going: acked {}",
            running.acked()
        );
        running.kill_worker(0).expect("kill worker 0");
    }
    wait_until(30, || running.acked() == n);
    let report = running.shutdown();
    let snap = report.final_snapshots[1]
        .as_ref()
        .expect("counter task checkpointed");
    let state: (u64, u64) = snap.decode().expect("snapshot decodes");
    (state, report)
}

/// The distributed satellite of the chaos suite: a worker *process* is
/// SIGKILLed mid-run under exactly-once-effect.  The supervisor respawns
/// it, the replacement restores from its checkpoint, lost trees replay,
/// and the counter's flushed `(count, sum)` — read back from the
/// coordinator's checkpoint store — matches a fault-free run of the same
/// topology exactly.
#[test]
fn dist_worker_kill_matches_fault_free_flushed_counts() {
    const N: u64 = 500;
    const RATE: f64 = 1500.0;

    let (fault_free, baseline) = dist_chaos_run(N, RATE, false);
    assert_eq!(baseline.acked, N, "fault-free run acks everything");
    assert_eq!(
        fault_free,
        (N, N * (N + 1) / 2),
        "fault-free flushed counts: {baseline:?}"
    );

    let (flushed, report) = dist_chaos_run(N, RATE, true);
    assert!(report.worker_disconnects >= 1, "{report:?}");
    assert!(report.worker_restarts >= 1, "{report:?}");
    assert!(
        report.restores >= 1,
        "replacement restored from checkpoint: {report:?}"
    );
    assert_eq!(report.acked, N, "every message recovered: {report:?}");
    assert!(report.conservation_holds(), "{report:?}");
    assert_eq!(
        flushed, fault_free,
        "exactly-once effect: flushed counts match the fault-free run: {report:?}"
    );
}

/// 30-second soak: rolling chaos (panics, a hang, slowdowns, drop windows)
/// against a continuously emitting spout.  Run with `--ignored`.
#[test]
#[ignore = "30s soak; run explicitly (cargo test -- --ignored)"]
fn soak_rolling_chaos() {
    struct EndlessSpout {
        next_id: u64,
    }
    impl Spout for EndlessSpout {
        fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
            self.next_id += 1;
            out.emit_with_id(Tuple::of([Value::from(self.next_id as i64)]), self.next_id);
            true
        }
    }

    let sum = Arc::new(AtomicU64::new(0));
    let s2 = sum.clone();
    let mut b = TopologyBuilder::new("soak");
    b.set_spout("s", 1, || EndlessSpout { next_id: 0 }).unwrap();
    b.set_bolt("acc", 3, move || Accumulator { sum: s2.clone() })
        .unwrap()
        .shuffle_grouping("s")
        .unwrap();
    let topo = b.build().unwrap();

    let mut cfg = cluster();
    cfg.message_timeout_s = 3.0;
    // Tasks: 0 spout, 1..=3 bolts on workers 1..=3.
    let plan = RtFaultPlan::new()
        .with(RtFault::TaskPanic { task: 1, at_s: 3.0 })
        .with(RtFault::TaskPanic { task: 2, at_s: 9.0 })
        .with(RtFault::TaskHang {
            task: 3,
            from_s: 12.0,
            until_s: 60.0,
        })
        .with(RtFault::WorkerSlowdown {
            worker: 1,
            factor: 8.0,
            from_s: 6.0,
            until_s: 16.0,
        })
        .with(RtFault::DropTuples {
            task: 2,
            from_s: 18.0,
            until_s: 20.0,
        })
        .with(RtFault::TaskPanic {
            task: 1,
            at_s: 22.0,
        });
    let rt_cfg = RtConfig::default()
        .with_hang_timeout(Duration::from_secs(1))
        .with_max_restarts(16)
        .with_max_replays(8)
        .with_replay_backoff(Duration::from_millis(100));
    let running = rt::submit_faulty(topo, cfg, rt_cfg, plan, None).unwrap();

    std::thread::sleep(Duration::from_secs(30));
    let mid_acked = running.acked();
    assert!(mid_acked > 0, "stream made progress under chaos");
    // Quiesce: give in-flight replays a moment to land before shutdown so
    // the conservation check is exact rather than racing the chaos.
    std::thread::sleep(Duration::from_secs(5));
    let (_, report) = running.shutdown();

    assert!(
        report.task_panics >= 3,
        "all scheduled panics fired: {report:?}"
    );
    assert!(
        report.task_restarts >= 4,
        "panics + hang recovered: {report:?}"
    );
    assert!(
        report.acked > mid_acked / 2,
        "throughput survived: {report:?}"
    );
    assert!(
        report.conservation_holds(),
        "soak must conserve tuples: {report:?}"
    );
}

/// Combined chaos for the backpressure subsystem: a flash-crowd spout
/// (credit-gated, window 64) hit by a worker slowdown AND a delivery-drop
/// window mid-spike.  Replay recovers every dropped tree, and BOTH
/// conservation invariants — tuple-tree (`tracked == acked +
/// permanently_failed + in_flight`) and credit (`granted == consumed +
/// revoked + outstanding`) — must close at shutdown.
#[test]
fn slowdown_plus_flash_crowd_conserves_tuples_and_credits() {
    use stream_apps::prelude::*;

    let mut cfg = cluster();
    cfg.max_spout_pending = 1_000_000;
    cfg.message_timeout_s = 1.0;
    let overload = OverloadConfig {
        pattern: RatePattern::FlashCrowd {
            base: 500.0,
            peak: 3000.0,
            at_s: 0.5,
            len_s: 30.0,
        },
        workers: 2,
        work_us: 150.0,
        spin_service: true,
        ..OverloadConfig::default()
    };
    let (topo, _stats) = build_flash_crowd(&overload).unwrap();
    // Tasks: 0 = spout, 1..=2 = work.  Drop deliveries to task 1 early in
    // the spike (forcing timeouts + replays), and slow one worker across it.
    let plan = RtFaultPlan::new()
        .with(RtFault::DropTuples {
            task: 1,
            from_s: 0.3,
            until_s: 0.8,
        })
        .with(RtFault::WorkerSlowdown {
            worker: 1,
            factor: 2.0,
            from_s: 0.5,
            until_s: 2.0,
        });
    let rt_cfg = RtConfig::default()
        .with_credit_flow(64)
        .with_max_replays(5)
        .with_replay_backoff(Duration::from_millis(50));
    let running = rt::submit_faulty(topo, cfg, rt_cfg, plan, None).unwrap();

    // Bounded run: a credit/replay deadlock must fail the test, not hang it.
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let (_, report) = running.run_for(Duration::from_secs(4));
        let _ = tx.send(report);
    });
    let report = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("combined chaos run deadlocked");

    assert!(
        report.replays > 0,
        "the drop window forces replays: {report:?}"
    );
    assert_eq!(
        report.permanently_failed, 0,
        "replay recovers every dropped tree: {report:?}"
    );
    assert!(report.acked > 1000, "spike made progress: {report:?}");
    assert!(
        report.conservation_holds(),
        "tuple conservation under combined chaos: {report:?}"
    );
    assert!(
        report.credit_conservation_holds(),
        "credit conservation under combined chaos: {:?}",
        report.credits
    );
    assert!(report.credits.granted > 0, "credit flow was actually on");
}

//! Property-based tests for the engine's core data structures:
//! split ratios, the dynamic-grouping router, the XOR acker, streaming
//! statistics, tuple values, groupings, the backpressure credit ledger,
//! and operator-state snapshot/restore.

#![allow(clippy::needless_range_loop)] // task indices are part of the assertions

use proptest::prelude::*;

use dsdps::acker::Acker;
use dsdps::component::{Bolt, BoltOutput};
use dsdps::grouping::dynamic::{DynamicGrouping, DynamicGroupingHandle, SplitRatio};
use dsdps::grouping::{FieldsGrouping, Grouping, ShuffleGrouping};
use dsdps::metrics::{LatencyHistogram, OnlineStats};
use dsdps::rt::{CreditLedger, StatefulComponent};
use dsdps::topology::TaskId;
use dsdps::tuple::{Fields, Tuple, Value};
use dsdps::window::{WindowAggregate, WindowAssigner, WindowedBolt};

/// Sums field 0 per window (checkpoint proptests).
struct PropSum;

impl WindowAggregate for PropSum {
    type Acc = i64;

    fn add(&mut self, acc: &mut i64, tuple: &Tuple) {
        *acc += tuple.get(0).and_then(Value::as_i64).unwrap_or(0);
    }

    fn emit(&mut self, window_start_s: f64, acc: i64, out: &mut BoltOutput) {
        out.emit_unanchored(Tuple::of([Value::from(window_start_s), Value::from(acc)]));
    }
}

fn prop_windowed() -> WindowedBolt<PropSum> {
    WindowedBolt::new(
        WindowAssigner::Sliding {
            size_s: 4.0,
            slide_s: 2.0,
        },
        PropSum,
        1.0,
    )
}

/// Arbitrary (time, value) event streams driving a windowed bolt.
fn window_events() -> impl Strategy<Value = Vec<(f64, i64)>> {
    prop::collection::vec((0.0f64..30.0, -100i64..100), 0..60)
}

/// Weights with at least one strictly positive entry.
fn weights_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..100.0, 1..12).prop_filter("at least one positive weight", |w| {
        w.iter().any(|&x| x > 1e-6)
    })
}

proptest! {
    #[test]
    fn split_ratio_always_normalized(weights in weights_strategy()) {
        let r = SplitRatio::new(weights).unwrap();
        let sum: f64 = r.as_slice().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(r.as_slice().iter().all(|&w| (0.0..=1.0 + 1e-12).contains(&w)));
    }

    #[test]
    fn split_ratio_excluding_keeps_normalization(weights in weights_strategy(), idx_seed in 0usize..100) {
        let r = SplitRatio::new(weights).unwrap();
        let idx = idx_seed % r.len();
        if let Ok(e) = r.excluding(idx) {
            prop_assert_eq!(e.get(idx), 0.0);
            let sum: f64 = e.as_slice().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    /// Smooth WRR: over any run of W tuples, each task's count deviates
    /// from `W * weight` by at most the number of tasks.
    #[test]
    fn dynamic_grouping_tracks_any_ratio(weights in weights_strategy(), w in 50usize..400) {
        let ratio = SplitRatio::new(weights).unwrap();
        let n = ratio.len();
        let handle = DynamicGroupingHandle::new(ratio.clone());
        let mut g = DynamicGrouping::new(handle);
        let tuple = Tuple::of([Value::from(1i64)]);
        let mut counts = vec![0usize; n];
        let mut out = Vec::new();
        for _ in 0..w {
            out.clear();
            g.select(&tuple, &mut out);
            counts[out[0]] += 1;
        }
        for i in 0..n {
            let expected = ratio.get(i) * w as f64;
            prop_assert!(
                (counts[i] as f64 - expected).abs() <= n as f64 + 1.0,
                "task {} got {} expected {:.1} (n={})", i, counts[i], expected, n
            );
        }
    }

    #[test]
    fn dynamic_grouping_zero_weight_never_selected(idx_seed in 0usize..100) {
        let n = 2 + idx_seed % 6;
        let zero = idx_seed % n;
        let mut weights = vec![1.0; n];
        weights[zero] = 0.0;
        let handle = DynamicGroupingHandle::new(SplitRatio::new(weights).unwrap());
        let mut g = DynamicGrouping::new(handle);
        let tuple = Tuple::of([Value::from(1i64)]);
        let mut out = Vec::new();
        for _ in 0..500 {
            out.clear();
            g.select(&tuple, &mut out);
            prop_assert_ne!(out[0], zero);
        }
    }

    #[test]
    fn shuffle_grouping_is_balanced(n in 1usize..16, total in 1usize..500, offset in 0usize..32) {
        let mut g = ShuffleGrouping::new(n, offset);
        let tuple = Tuple::of([Value::from(1i64)]);
        let mut counts = vec![0usize; n];
        let mut out = Vec::new();
        for _ in 0..total {
            out.clear();
            g.select(&tuple, &mut out);
            counts[out[0]] += 1;
        }
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        prop_assert!(max - min <= 1, "imbalance {counts:?}");
    }

    #[test]
    fn fields_grouping_same_key_same_task(key in "[a-z]{1,16}", n in 1usize..16) {
        let schema = Fields::new(["k"]);
        let mut g = FieldsGrouping::new(n, &["k".into()], &schema).unwrap();
        let t = Tuple::with_fields([Value::from(key.as_str())], schema.clone());
        let mut out = Vec::new();
        g.select(&t, &mut out);
        let first = out[0];
        for _ in 0..10 {
            out.clear();
            g.select(&t, &mut out);
            prop_assert_eq!(out[0], first);
        }
        prop_assert!(first < n);
    }

    /// Random tuple trees: emit a random number of children per node up to
    /// depth 2, ack everything in a scrambled order → the tree completes
    /// exactly once, as Acked.
    #[test]
    fn acker_completes_random_trees(fanouts in prop::collection::vec(0usize..5, 1..6), seed in 0u64..1000) {
        let mut acker = Acker::new();
        let root = 1u64;
        let e_root = acker.new_edge_id();
        acker.track(root, e_root, TaskId(0), 9, 0.0);

        // Level 1: children of the root tuple; level 2: children of those.
        let mut pending_edges = vec![e_root];
        let mut all_children = Vec::new();
        for (i, &fan) in fanouts.iter().enumerate() {
            let _ = i;
            let mut next = Vec::new();
            for _ in 0..fan {
                let e = acker.new_edge_id();
                acker.on_emit(root, e);
                next.push(e);
            }
            all_children.extend(next);
            if all_children.len() > 20 {
                break;
            }
        }
        pending_edges.extend(all_children);

        // Scramble ack order deterministically from the seed.
        let mut order: Vec<usize> = (0..pending_edges.len()).collect();
        let mut state = seed.wrapping_add(1);
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (state % (i as u64 + 1)) as usize);
        }
        for (k, &i) in order.iter().enumerate() {
            prop_assert_eq!(acker.pending_count(), 1, "completed early at step {}", k);
            acker.on_ack(root, pending_edges[i], k as f64);
        }
        prop_assert_eq!(acker.pending_count(), 0);
        let outcomes = acker.drain_outcomes();
        prop_assert_eq!(outcomes.len(), 1);
        prop_assert_eq!(outcomes[0].completion, dsdps::acker::Completion::Acked);
    }

    /// After enough tuples the realized split converges to the commanded
    /// ratio within tolerance (law of the smooth WRR: bounded deviation
    /// means the time-average converges as 1/W).
    #[test]
    fn dynamic_grouping_ratio_converges_within_tolerance(weights in weights_strategy()) {
        let ratio = SplitRatio::new(weights).unwrap();
        let n = ratio.len();
        let handle = DynamicGroupingHandle::new(ratio.clone());
        let mut g = DynamicGrouping::new(handle);
        let tuple = Tuple::of([Value::from(1i64)]);
        let w = 5000usize;
        let mut counts = vec![0usize; n];
        let mut out = Vec::new();
        for _ in 0..w {
            out.clear();
            g.select(&tuple, &mut out);
            prop_assert_eq!(out.len(), 1, "select must pick exactly one task");
            counts[out[0]] += 1;
        }
        for i in 0..n {
            let observed = counts[i] as f64 / w as f64;
            prop_assert!(
                (observed - ratio.get(i)).abs() < 0.01,
                "task {} observed {:.4} commanded {:.4}", i, observed, ratio.get(i)
            );
        }
    }

    /// An atomic mid-stream ratio swap neither drops nor duplicates a
    /// tuple: every select before, during and after the swap yields exactly
    /// one in-range task, the totals add up, and the post-swap suffix obeys
    /// the new ratio (including zeroed tasks going fully dark).
    #[test]
    fn dynamic_grouping_midstream_swap_never_drops_or_duplicates(
        pre in weights_strategy(),
        swap_at in 1usize..2000,
    ) {
        let pre_ratio = SplitRatio::new(pre).unwrap();
        let n = pre_ratio.len();
        let handle = DynamicGroupingHandle::new(pre_ratio);
        let mut g = DynamicGrouping::new(handle.clone());
        let tuple = Tuple::of([Value::from(1i64)]);
        let total = 4000usize;
        let swap_at = swap_at.min(total - 1);
        // Post ratio: all weight on task 0 (plus task 1 when it exists),
        // zeroing every other task.
        let mut post = vec![0.0; n];
        post[0] = 1.0;
        if n > 1 {
            post[1] = 0.5;
        }
        let post_ratio = SplitRatio::new(post).unwrap();
        let mut out = Vec::new();
        let mut routed = 0usize;
        let mut post_counts = vec![0usize; n];
        for i in 0..total {
            if i == swap_at {
                handle.set_ratio(post_ratio.clone()).unwrap();
            }
            out.clear();
            g.select(&tuple, &mut out);
            prop_assert_eq!(out.len(), 1, "swap dropped or duplicated a tuple");
            prop_assert!(out[0] < n, "selected task out of range");
            routed += 1;
            if i >= swap_at {
                post_counts[out[0]] += 1;
            }
        }
        prop_assert_eq!(routed, total);
        prop_assert_eq!(handle.version(), 1);
        // Zero-weight tasks under the new ratio must go dark immediately.
        for z in 2..n {
            prop_assert_eq!(
                post_counts[z], 0,
                "task {} was zeroed by the swap but still got tuples", z
            );
        }
        prop_assert_eq!(post_counts.iter().sum::<usize>(), total - swap_at);
    }

    #[test]
    fn online_stats_merge_matches_sequential(data in prop::collection::vec(-1e6f64..1e6, 2..200), cut_seed in 0usize..1000) {
        let cut = 1 + cut_seed % (data.len() - 1);
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.update(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..cut] {
            a.update(x);
        }
        for &x in &data[cut..] {
            b.update(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() <= 1e-4 * (1.0 + whole.variance()));
    }

    /// Histogram quantiles stay within the documented ~9 % relative error.
    #[test]
    fn histogram_quantile_relative_error_bounded(mut samples in prop::collection::vec(1.0f64..1e7, 20..300), q_pct in 1u32..100) {
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_by(f64::total_cmp);
        let q = q_pct as f64 / 100.0;
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        let truth = samples[rank - 1];
        let got = h.quantile(q).unwrap();
        prop_assert!(
            got >= truth * 0.9 && got <= truth * 1.1,
            "q={}: got {} truth {}", q, got, truth
        );
    }

    /// Histogram merge is associative and commutative, and agrees with
    /// recording the concatenated sample stream directly — so per-shard
    /// telemetry summaries can be combined in any order.
    #[test]
    fn histogram_merge_associative_commutative(
        a in prop::collection::vec(0.25f64..1e6, 0..150),
        b in prop::collection::vec(0.25f64..1e6, 0..150),
        c in prop::collection::vec(0.25f64..1e6, 0..150),
    ) {
        let build = |xs: &[f64]| {
            let mut h = LatencyHistogram::new();
            for &x in xs {
                h.record(x);
            }
            h
        };
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba, "merge must be commutative");
        let mut ab_c = ab.clone();
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc, "merge must be associative");
        prop_assert_eq!(ab_c.count(), (a.len() + b.len() + c.len()) as u64);
        let mut all = a.clone();
        all.extend(&b);
        all.extend(&c);
        prop_assert_eq!(&ab_c, &build(&all), "merge must equal one-stream recording");
    }

    /// Quantile estimates stay within ONE bucket's relative error: buckets
    /// are spaced 2^(1/8) apart, so `estimate / truth` lies in
    /// `[1 - ε, 2^(1/8) + ε]` for samples above the underflow cutoff.
    #[test]
    fn histogram_quantile_within_one_bucket(
        mut samples in prop::collection::vec(1.0f64..1e7, 1..300),
        q_pct in 1u32..101,
    ) {
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_by(f64::total_cmp);
        let q = q_pct as f64 / 100.0;
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        let truth = samples[rank - 1];
        let got = h.quantile(q).unwrap();
        let one_bucket = 2f64.powf(1.0 / 8.0);
        prop_assert!(
            got >= truth * (1.0 - 1e-12),
            "q={}: estimate {} below truth {}", q, got, truth
        );
        prop_assert!(
            got <= truth * one_bucket * (1.0 + 1e-12),
            "q={}: estimate {} exceeds truth {} by more than one bucket ({:.4}x)",
            q, got, truth, got / truth
        );
    }

    /// The credit ledger against a reference model, one arbitrary op
    /// sequence at a time: `available` never goes negative, acquire
    /// succeeds iff the model has balance, revoke takes exactly
    /// `min(asked, available)`, and the conservation identity
    /// `granted == consumed + revoked + outstanding` holds after EVERY op.
    #[test]
    fn credit_ledger_matches_model_and_conserves(
        ops in prop::collection::vec((0u8..4, 0usize..4, 0u64..6), 1..150),
    ) {
        const TASKS: usize = 4;
        let ledger = CreditLedger::new(TASKS);
        let mut avail = [0i64; TASKS];
        let mut window = [0u64; TASKS];
        for (step, &(kind, task, amount)) in ops.iter().enumerate() {
            match kind {
                0 => {
                    ledger.grant(task, amount);
                    avail[task] += amount as i64;
                }
                1 => {
                    let got = ledger.try_acquire(task);
                    prop_assert_eq!(
                        got,
                        avail[task] > 0,
                        "step {}: acquire must succeed iff balance positive", step
                    );
                    if got {
                        avail[task] -= 1;
                    }
                }
                2 => {
                    let revoked = ledger.revoke(task, amount);
                    prop_assert_eq!(
                        revoked as i64,
                        avail[task].min(amount as i64),
                        "step {}: revoke takes min(asked, available)", step
                    );
                    avail[task] -= revoked as i64;
                }
                _ => {
                    ledger.set_window(task, amount);
                    let old = window[task];
                    window[task] = amount;
                    if amount > old {
                        avail[task] += (amount - old) as i64;
                    } else {
                        avail[task] -= avail[task].min((old - amount) as i64);
                    }
                    prop_assert_eq!(ledger.window(task), amount);
                }
            }
            prop_assert!(ledger.outstanding(task) >= 0, "step {}: negative balance", step);
            prop_assert_eq!(ledger.outstanding(task), avail[task], "step {}", step);
            prop_assert!(ledger.conservation_holds(), "step {}: conservation broke", step);
        }
        let t = ledger.totals();
        prop_assert_eq!(t.outstanding, avail.iter().sum::<i64>());
        prop_assert!(t.conservation_holds());
    }

    /// The same invariants under real thread interleavings: competing
    /// producers (acquire + consumer-style re-grant), a granter and a
    /// revoker all race on two pools; after joining, the books must close
    /// exactly and no pool may be negative.
    #[test]
    fn credit_ledger_conserves_under_threaded_interleavings(
        initial in 1u64..48,
        seed in 0u64..1_000,
    ) {
        use std::sync::Arc;
        let ledger = Arc::new(CreditLedger::new(2));
        ledger.grant(0, initial);
        ledger.grant(1, initial);
        let mut handles = Vec::new();
        for worker in 0..3u64 {
            let l = Arc::clone(&ledger);
            handles.push(std::thread::spawn(move || {
                let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ worker;
                let mut acquired = 0u64;
                for _ in 0..1_000 {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let task = (state >> 33) as usize % 2;
                    match state % 16 {
                        // Mostly the data-plane round trip: acquire, then
                        // re-grant as the consumer would after processing.
                        0..=11 => {
                            if l.try_acquire(task) {
                                acquired += 1;
                                l.grant(task, 1);
                            }
                        }
                        12..=13 => l.grant(task, 1),
                        _ => {
                            l.revoke(task, 1);
                        }
                    }
                }
                acquired
            }));
        }
        let consumed: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let t = ledger.totals();
        prop_assert_eq!(t.consumed, consumed, "every successful acquire is counted once");
        prop_assert!(t.outstanding >= 0);
        prop_assert!(ledger.outstanding(0) >= 0);
        prop_assert!(ledger.outstanding(1) >= 0);
        prop_assert!(t.conservation_holds(), "{:?}", t);
    }

    /// Arbitrary window contents → snapshot → restore ⇒ identical state:
    /// the restored bolt reports the same open/closed/late counters and
    /// re-snapshots to the same byte image.
    #[test]
    fn windowed_snapshot_restore_yields_identical_state(events in window_events()) {
        let mut bolt = prop_windowed();
        let mut out = BoltOutput::new();
        for &(t, v) in &events {
            out.set_now(t);
            bolt.execute(&Tuple::of([Value::from(v)]), &mut out);
        }
        out.drain();
        let snap = bolt.snapshot();
        let mut restored = prop_windowed();
        restored.restore(&snap, &[]).unwrap();
        prop_assert_eq!(restored.open_windows(), bolt.open_windows());
        prop_assert_eq!(restored.windows_closed(), bolt.windows_closed());
        prop_assert_eq!(restored.late_dropped(), bolt.late_dropped());
        prop_assert_eq!(
            restored.snapshot().bytes,
            bolt.snapshot().bytes,
            "restored state re-images byte-for-byte"
        );
    }

    /// Incremental deltas compose to the full snapshot: restoring the base
    /// plus every delta equals restoring the final full image, no matter
    /// where the delta cuts fall in the event stream.
    #[test]
    fn windowed_deltas_compose_to_full_snapshot(
        events in window_events(),
        cuts in prop::collection::vec(0usize..60, 1..5),
    ) {
        let mut bolt = prop_windowed();
        let mut out = BoltOutput::new();
        let base = bolt.snapshot();
        let cut_set: std::collections::BTreeSet<usize> = cuts.into_iter().collect();
        let mut deltas = Vec::new();
        for (i, &(t, v)) in events.iter().enumerate() {
            if cut_set.contains(&i) {
                deltas.push(bolt.delta().unwrap());
            }
            out.set_now(t);
            bolt.execute(&Tuple::of([Value::from(v)]), &mut out);
        }
        deltas.push(bolt.delta().unwrap());
        out.drain();
        let full = bolt.snapshot();
        let mut composed = prop_windowed();
        composed.restore(&base, &deltas).unwrap();
        prop_assert_eq!(
            composed.snapshot().bytes,
            full.bytes,
            "base + deltas must equal the full image"
        );
    }

    #[test]
    fn value_equality_implies_hash_equality(a in value_strategy(), b in value_strategy()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |v: &Value| {
            let mut h = DefaultHasher::new();
            v.hash(&mut h);
            h.finish()
        };
        if a == b {
            prop_assert_eq!(hash(&a), hash(&b));
        }
        // And every value equals itself (incl. NaN, by bit-comparison).
        prop_assert_eq!(&a, &a);
    }
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::from),
        any::<i64>().prop_map(Value::from),
        any::<f64>().prop_map(Value::from),
        "[ -~]{0,12}".prop_map(|s| Value::from(s.as_str())),
        prop::collection::vec(any::<i64>().prop_map(Value::from), 0..4).prop_map(Value::List),
    ]
}

/// Arbitrary schedules for the simulator's event queue: finite non-negative
/// timestamps (virtual time never runs backwards) with many duplicates.
fn event_times() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            0.0f64..10.0,
            // Coarse grid to force plenty of exact-tie timestamps.
            (0i32..10).prop_map(|t| t as f64),
        ],
        1..80,
    )
}

proptest! {
    /// Pops come out in non-decreasing time order regardless of insertion
    /// order.
    #[test]
    fn event_queue_pops_non_decreasing(times in event_times()) {
        let mut q = dsdps::sim::event::EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        prop_assert_eq!(q.len(), times.len());
        let mut last = f64::NEG_INFINITY;
        while let Some(s) = q.pop() {
            prop_assert!(s.time >= last, "{} < {}", s.time, last);
            prop_assert_eq!(q.peek_time().is_none(), q.is_empty());
            last = s.time;
        }
        prop_assert!(q.is_empty());
    }

    /// Equal-time events drain in insertion order (FIFO tie-break), so two
    /// identically built queues drain identically — the determinism the
    /// engine's seed-stability relies on.
    #[test]
    fn event_queue_ties_break_fifo_deterministically(times in event_times()) {
        let build = || {
            let mut q = dsdps::sim::event::EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(t, i);
            }
            q
        };
        let (mut a, mut b) = (build(), build());
        let mut prev: Option<(f64, usize)> = None;
        while let Some(sa) = a.pop() {
            let sb = b.pop().expect("same length");
            prop_assert_eq!(sa.event, sb.event);
            prop_assert_eq!(sa.time.to_bits(), sb.time.to_bits());
            if let Some((pt, pe)) = prev {
                if pt == sa.time {
                    // Tie: insertion index must increase.
                    prop_assert!(sa.event > pe, "tie broke out of order");
                }
            }
            prev = Some((sa.time, sa.event));
        }
        prop_assert!(b.pop().is_none());
    }

    /// The heap agrees with the obvious model: a stable sort of the input
    /// by timestamp.
    #[test]
    fn event_queue_matches_stable_sorted_model(times in event_times()) {
        let mut q = dsdps::sim::event::EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut model: Vec<(f64, usize)> =
            times.iter().copied().enumerate().map(|(i, t)| (t, i)).collect();
        model.sort_by(|a, b| a.0.total_cmp(&b.0)); // stable: ties keep insertion order
        for (expect_t, expect_i) in model {
            let s = q.pop().expect("model and queue have equal length");
            prop_assert_eq!(s.time.to_bits(), expect_t.to_bits());
            prop_assert_eq!(s.event, expect_i);
        }
        prop_assert!(q.pop().is_none());
    }
}

// --- wire codec (dist runtime) ------------------------------------------

use dsdps::dist::codec::{
    self, decode_frame, encode_frame, encode_frame_body, Dec, Frame, WireEmission, WireMetric,
    WireResult, WireSpan, WireTuple,
};

/// Scalar tuple values.  Floats stay finite so value equality is
/// meaningful after the bit-exact roundtrip.
fn wire_leaf() -> BoxedStrategy<Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::from),
        any::<i64>().prop_map(Value::from),
        (-1.0e12f64..1.0e12).prop_map(Value::from),
        "[a-z]{0,12}".prop_map(|s: String| Value::from(s)),
        prop::collection::vec(any::<u8>(), 0..16).prop_map(|b| Value::Bytes(bytes::Bytes::from(b))),
    ]
    .boxed()
}

/// Tuple values, including one level of list nesting.
fn wire_value() -> BoxedStrategy<Value> {
    prop_oneof![
        wire_leaf(),
        prop::collection::vec(wire_leaf(), 0..4).prop_map(Value::List),
    ]
    .boxed()
}

fn wire_tuple() -> impl Strategy<Value = WireTuple> {
    (
        any::<u64>(),
        0u32..64,
        0u32..16,
        prop_oneof![Just(None), any::<u64>().prop_map(Some)],
        prop_oneof![Just(None), any::<u64>().prop_map(Some)],
        prop::collection::vec(wire_value(), 0..5),
    )
        .prop_map(
            |(token, dest_task, stream, dedup, trace_root, values)| WireTuple {
                token,
                dest_task,
                stream,
                dedup,
                trace_root,
                values,
            },
        )
}

fn wire_span() -> impl Strategy<Value = WireSpan> {
    (
        0u8..5,
        any::<u64>(),
        0u32..64,
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(
            |(kind, root, task, start_us, queue_wait_us, exec_us, batch_id)| WireSpan {
                kind,
                root,
                task,
                start_us,
                queue_wait_us,
                exec_us,
                batch_id,
            },
        )
}

fn wire_metric() -> impl Strategy<Value = WireMetric> {
    (0u8..2, "[a-z_]{1,24}", any::<u64>()).prop_map(|(kind, name, value)| WireMetric {
        kind,
        name,
        value,
    })
}

fn wire_emission() -> impl Strategy<Value = WireEmission> {
    (
        0u32..16,
        any::<bool>(),
        prop_oneof![Just(None), (0u32..64).prop_map(Some)],
        prop::collection::vec(wire_value(), 0..4),
    )
        .prop_map(|(stream, anchored, direct_task, values)| WireEmission {
            stream,
            anchored,
            direct_task,
            values,
        })
}

fn wire_result() -> impl Strategy<Value = WireResult> {
    (
        any::<u64>(),
        any::<bool>(),
        any::<bool>(),
        prop::collection::vec(wire_emission(), 0..3),
    )
        .prop_map(|(token, failed, deferred, emissions)| WireResult {
            token,
            failed,
            deferred,
            emissions,
        })
}

/// Every frame type of the wire protocol with arbitrary payloads.
fn any_frame() -> BoxedStrategy<Frame> {
    prop_oneof![
        (0u32..8, any::<u32>(), any::<u64>()).prop_map(|(worker, pid, clock_us)| Frame::Hello {
            worker,
            pid,
            clock_us
        }),
        (
            0u32..8,
            "[a-z]{1,10}",
            "[a-z0-9:]{0,10}",
            prop::collection::vec(0u32..64, 0..8),
            0u8..3,
            any::<u64>(),
            (any::<u64>(), any::<u64>()),
            (1u32..64, 1u32..32),
        )
            .prop_map(
                |(worker, topology, args, tasks, recovery, ckpt, (tick, push), (tc, sc))| {
                    Frame::Assign {
                        worker,
                        topology,
                        args,
                        tasks,
                        recovery,
                        ckpt_interval_us: ckpt,
                        tick_interval_us: tick,
                        metrics_interval_us: push,
                        task_count: tc,
                        stream_count: sc,
                    }
                },
            ),
        prop::collection::vec(wire_tuple(), 0..6).prop_map(|items| Frame::TupleBatch { items }),
        prop::collection::vec(wire_result(), 0..4).prop_map(|items| Frame::ResultBatch { items }),
        (0u32..64, any::<u64>()).prop_map(|(task, amount)| Frame::CreditGrant { task, amount }),
        (
            0u32..64,
            prop::collection::vec(any::<u8>(), 0..64),
            prop::collection::vec(any::<u64>(), 0..8),
        )
            .prop_map(|(task, payload, dedup)| Frame::CheckpointDeposit {
                task,
                payload,
                dedup,
            }),
        prop::collection::vec(any::<u64>(), 0..8).prop_map(|tokens| Frame::AckFlush { tokens }),
        (
            0u32..64,
            prop_oneof![
                Just(None),
                prop::collection::vec(any::<u8>(), 0..32).prop_map(Some)
            ],
            prop::collection::vec(any::<u64>(), 0..8),
        )
            .prop_map(|(task, payload, dedup)| Frame::RestoreState {
                task,
                payload,
                dedup,
            }),
        (0u32..64, any::<bool>(), any::<u64>()).prop_map(|(task, ok, latency_us)| {
            Frame::StateRestored {
                task,
                ok,
                latency_us,
            }
        }),
        any::<u64>().prop_map(|seq| Frame::Flush { seq }),
        any::<u64>().prop_map(|seq| Frame::Flushed { seq }),
        Just(Frame::Shutdown),
        (0u32..64, prop::collection::vec(wire_emission(), 0..4))
            .prop_map(|(task, emissions)| Frame::TickEmissions { task, emissions }),
        (
            0u32..8,
            any::<u64>(),
            prop::collection::vec(wire_span(), 0..6)
        )
            .prop_map(|(worker, dropped, spans)| Frame::SpanBatch {
                worker,
                dropped,
                spans
            }),
        (0u32..8, prop::collection::vec(wire_metric(), 0..6))
            .prop_map(|(worker, samples)| Frame::MetricsPush { worker, samples }),
        (0u32..8, "[a-z_]{1,12}", "[ -~]{0,40}").prop_map(|(worker, cause, detail)| {
            Frame::LastWords {
                worker,
                cause,
                detail,
            }
        }),
    ]
    .boxed()
}

proptest! {
    /// Every frame type survives an encode/decode roundtrip bit-exactly.
    #[test]
    fn codec_every_frame_type_round_trips(frame in any_frame()) {
        let mut buf = Vec::new();
        encode_frame_body(&frame, &mut buf);
        let back = decode_frame(&buf);
        prop_assert_eq!(back, Ok(frame));
    }

    /// Every strict prefix of a valid frame body is a decode *error* —
    /// never a panic, and never a silent short parse.
    #[test]
    fn codec_truncated_frames_error_never_panic(frame in any_frame()) {
        let mut buf = Vec::new();
        encode_frame_body(&frame, &mut buf);
        for cut in 0..buf.len() {
            prop_assert!(
                decode_frame(&buf[..cut]).is_err(),
                "prefix of {} bytes decoded", cut
            );
        }
    }

    /// Single-byte corruption anywhere in a frame body either errors or
    /// decodes to *some* frame — it must never panic or overallocate.
    #[test]
    fn codec_corrupted_frames_never_panic(
        frame in any_frame(),
        pos in any::<u16>(),
        xor in 1u8..=255,
    ) {
        let mut buf = Vec::new();
        encode_frame_body(&frame, &mut buf);
        let pos = pos as usize % buf.len().max(1);
        buf[pos] ^= xor;
        let _ = decode_frame(&buf); // Err or a different frame; both fine.
    }

    /// Arbitrary garbage bytes never panic the decoder.
    #[test]
    fn codec_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_frame(&bytes);
    }

    /// Unsigned and zigzag varints roundtrip across the whole range,
    /// including the multi-byte boundaries.
    #[test]
    fn codec_varints_round_trip(v in any::<u64>(), s in any::<i64>()) {
        for v in [v, v >> 7, v >> 35, 0, u64::MAX] {
            let mut buf = Vec::new();
            codec::write_varint(&mut buf, v);
            let mut d = Dec::new(&buf);
            prop_assert_eq!(d.varint(), Ok(v));
            prop_assert!(d.is_done());
        }
        prop_assert_eq!(codec::unzigzag(codec::zigzag(s)), s);
    }

    /// The length-prefixed encoding is what the frame reader parses:
    /// `varint(len) ++ body` with `len == body.len()`.
    #[test]
    fn codec_length_prefix_matches_body(frame in any_frame()) {
        let mut framed = Vec::new();
        encode_frame(&frame, &mut framed);
        let mut d = Dec::new(&framed);
        let len = d.varint().unwrap() as usize;
        let body = &framed[framed.len() - d.remaining()..];
        prop_assert_eq!(len, body.len());
        prop_assert_eq!(decode_frame(body), Ok(frame));
    }
}

/// Clock normalization: a worker's hop spans are recorded against its own
/// process clock, which may be skewed either way relative to the
/// coordinator's.  Applying the offset the coordinator estimated at the
/// `Hello` handshake must land the hops *inside* the tree's coordinator-side
/// bounds (emit .. terminal), for positive and negative skew alike, and the
/// merged set must still validate as one coherent tree.
#[test]
fn clock_normalization_merges_worker_spans_into_tree_bounds() {
    use dsdps::telemetry::trace::trace_id;
    use dsdps::telemetry::{normalize_start_us, validate_spans, Span, SpanKind};

    let root = 42u64;
    let span = |kind: SpanKind, task: usize, start_us: u64| Span {
        trace_id: trace_id(root),
        root,
        kind,
        component: "c".into(),
        task,
        worker: 0,
        start_us,
        queue_wait_us: 5,
        exec_us: 10,
        batch_id: 1,
        replay_attempt: 0,
        message_id: None,
        pid: 0,
        generation: 0,
    };

    // Coordinator clock: emit at t=1_000us, terminal ack at t=9_000us.
    let emit = span(SpanKind::SpoutEmit, 0, 1_000);
    let ack = span(SpanKind::Ack, 0, 9_000);

    for offset_us in [4_000i64, -4_000i64] {
        // The worker executed the hop at t=5_000us coordinator time, but
        // its local clock read `5_000 - offset` (offset = coord - worker).
        let local_start = (5_000i64 - offset_us) as u64;
        let mut worker_spans = vec![span(SpanKind::Hop, 1, local_start)];
        normalize_start_us(&mut worker_spans, offset_us);
        assert_eq!(worker_spans[0].start_us, 5_000);

        let mut merged = vec![emit.clone(), ack.clone()];
        merged.extend(worker_spans);
        merged.sort_by_key(|s| s.start_us);
        assert!(merged[0].start_us <= merged[1].start_us);
        assert!(merged[1].start_us >= emit.start_us && merged[1].start_us <= ack.start_us);

        let summary = validate_spans(&merged).expect("merged trace validates");
        assert_eq!(summary.trees, 1);
        assert_eq!(summary.terminated_trees, 1);
        assert_eq!(summary.hop_spans, 1);
    }

    // Normalization saturates rather than wrapping when the offset would
    // push a span before the epoch.
    let mut early = vec![span(SpanKind::Hop, 1, 100)];
    normalize_start_us(&mut early, -1_000);
    assert_eq!(early[0].start_us, 0);
}

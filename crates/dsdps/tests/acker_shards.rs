//! Property and stress tests for the lock-striped acker.
//!
//! The sharded acker must be observationally equivalent to the single
//! global acker: the same interleaved op sequence — tracks, child emits,
//! acks, fails, timeouts — must complete the same trees with the same
//! outcomes regardless of the stripe count, and the conservation invariant
//!
//! ```text
//! tracked == acked + failed + timed_out + still_pending
//! ```
//!
//! must hold at every shard count.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread;

use proptest::prelude::*;

use dsdps::acker::{Completion, RootId, ShardedAcker, TreeOutcome};
use dsdps::topology::TaskId;

/// What one tracked message does with its tuple tree.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Fate {
    /// All edges acked in scrambled order → `Acked`.
    Complete,
    /// A bolt fails a tuple mid-tree → `Failed`.
    Fail,
    /// Never resolved → pending until `expire` turns it into `TimedOut`.
    Hang,
}

/// One acker operation, pre-routed to nothing: the same script is applied
/// verbatim to ackers with different stripe counts.
#[derive(Debug, Clone, Copy)]
enum Op {
    Track { root: RootId, message_id: u64 },
    Emit { root: RootId, edge: u64 },
    Ack { root: RootId, edge: u64 },
    Fail { root: RootId },
}

/// Splitmix64 finalizer — the same scrambling `ShardedAcker::new_edge_id`
/// applies, so sequential test counters can't XOR to zero by accident
/// (e.g. edges 1 ^ 2 ^ 3 == 0 would complete a tree while edges are still
/// outstanding; that is an id-assignment hazard, not an acker bug).
fn scramble(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Expands per-message scripts (root, fate, fanout) into per-message op
/// queues, then interleaves the queues deterministically from `seed`
/// while preserving each message's own op order — exactly the reordering
/// freedom concurrent task threads have.
fn interleaved_script(fates: &[(Fate, usize)], seed: u64) -> (Vec<Op>, BTreeMap<u64, Fate>) {
    let mut queues: Vec<Vec<Op>> = Vec::new();
    let mut expected = BTreeMap::new();
    let mut next_edge = 1u64;
    for (i, &(fate, fanout)) in fates.iter().enumerate() {
        let root = (i as u64) + 1;
        let message_id = 1000 + i as u64;
        expected.insert(message_id, fate);
        let mut ops = vec![Op::Track { root, message_id }];
        let root_edge = scramble(next_edge);
        next_edge += 1;
        ops.push(Op::Emit {
            root,
            edge: root_edge,
        });
        let mut edges = vec![root_edge];
        for _ in 0..fanout {
            let e = scramble(next_edge);
            next_edge += 1;
            ops.push(Op::Emit { root, edge: e });
            edges.push(e);
        }
        match fate {
            Fate::Complete => {
                // Scrambled ack order: reverse is enough to exercise
                // out-of-order completion under XOR accounting.
                for &e in edges.iter().rev() {
                    ops.push(Op::Ack { root, edge: e });
                }
            }
            Fate::Fail => {
                // Ack all but one edge, then fail the tree.
                for &e in edges.iter().skip(1) {
                    ops.push(Op::Ack { root, edge: e });
                }
                ops.push(Op::Fail { root });
            }
            Fate::Hang => {}
        }
        queues.push(ops);
    }

    // Seeded merge: repeatedly pick a nonempty queue and pop its next op.
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut cursors = vec![0usize; queues.len()];
    let mut script = Vec::new();
    let total: usize = queues.iter().map(Vec::len).sum();
    while script.len() < total {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let live: Vec<usize> = (0..queues.len())
            .filter(|&q| cursors[q] < queues[q].len())
            .collect();
        let q = live[(state % live.len() as u64) as usize];
        script.push(queues[q][cursors[q]]);
        cursors[q] += 1;
    }
    (script, expected)
}

/// Runs a script against a fresh acker with `shards` stripes and returns
/// `(outcomes, pending_after_expire)`.
fn run_script(script: &[Op], shards: usize) -> (Vec<TreeOutcome>, usize) {
    let acker = ShardedAcker::new(shards);
    let mut now = 0.0f64;
    for op in script {
        now += 0.001;
        match *op {
            Op::Track { root, message_id } => acker.track(root, 0, TaskId(0), message_id, now),
            Op::Emit { root, edge } => acker.on_emit(root, edge),
            Op::Ack { root, edge } => acker.on_ack(root, edge, now),
            Op::Fail { root } => acker.on_fail(root, now),
        }
    }
    let mut outcomes = acker.drain_outcomes_blocking();
    // Everything unresolved times out well past the message deadline.
    acker.expire(now + 1e6, 1.0);
    outcomes.extend(acker.drain_outcomes_blocking());
    (outcomes, acker.pending_count())
}

/// Sorted (message_id, completion) pairs — the multiset the equivalence
/// check compares across shard counts.
fn outcome_key(outcomes: &[TreeOutcome]) -> Vec<(u64, Completion)> {
    let mut v: Vec<(u64, Completion)> = outcomes
        .iter()
        .map(|o| (o.message_id, o.completion))
        .collect();
    v.sort_by_key(|&(id, c)| (id, c as u8));
    v
}

fn fate_strategy() -> impl Strategy<Value = Vec<(Fate, usize)>> {
    prop::collection::vec(
        (
            prop_oneof![Just(Fate::Complete), Just(Fate::Fail), Just(Fate::Hang)],
            0usize..5,
        ),
        1..40,
    )
}

proptest! {
    /// The tentpole equivalence property: one stripe and eight stripes
    /// resolve an interleaved emit/ack/fail/timeout workload identically,
    /// and every tracked message is accounted for.
    #[test]
    fn sharded_acker_equivalent_to_global(fates in fate_strategy(), seed in 0u64..5000) {
        let (script, expected) = interleaved_script(&fates, seed);
        let (out1, pending1) = run_script(&script, 1);
        let (out8, pending8) = run_script(&script, 8);

        prop_assert_eq!(outcome_key(&out1), outcome_key(&out8),
            "shard count changed tree outcomes");
        prop_assert_eq!(pending1, 0, "expire must resolve every hung tree");
        prop_assert_eq!(pending8, 0);

        // Conservation + per-message fate, on the sharded run.
        let mut acked = 0usize;
        let mut failed = 0usize;
        let mut timed_out = 0usize;
        for o in &out8 {
            let fate = expected[&o.message_id];
            match o.completion {
                Completion::Acked => {
                    prop_assert_eq!(fate, Fate::Complete);
                    acked += 1;
                }
                Completion::Failed => {
                    prop_assert_eq!(fate, Fate::Fail);
                    failed += 1;
                }
                Completion::TimedOut => {
                    prop_assert_eq!(fate, Fate::Hang);
                    timed_out += 1;
                }
            }
        }
        prop_assert_eq!(acked + failed + timed_out, expected.len(),
            "tracked != acked + failed + timed_out + in_flight(0)");
    }

    /// Shard routing is stable: every op of a root lands on one shard, so
    /// a root acked through the convenience API completes exactly once no
    /// matter how many stripes the acker has.
    #[test]
    fn completion_is_exactly_once_at_any_shard_count(shards in 1usize..13, roots in 1u64..50) {
        let acker = ShardedAcker::new(shards);
        for root in 1..=roots {
            let edge = acker.new_edge_id();
            acker.track(root, edge, TaskId(0), root, 0.0);
            acker.on_ack(root, edge, 1.0);
        }
        let outcomes = acker.drain_outcomes_blocking();
        prop_assert_eq!(outcomes.len(), roots as usize);
        prop_assert!(outcomes.iter().all(|o| o.completion == Completion::Acked));
        prop_assert_eq!(acker.pending_count(), 0);
        prop_assert!(acker.drain_outcomes_blocking().is_empty(), "double completion");
    }
}

/// Concurrent stress: several threads drive disjoint root ranges through
/// track → emit child → ack both edges, racing on the shard locks.  Every
/// tree must complete exactly once as Acked.
#[test]
fn concurrent_threads_conserve_trees() {
    const THREADS: usize = 4;
    const PER_THREAD: u64 = 2000;
    let acker = Arc::new(ShardedAcker::new(8));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let acker = Arc::clone(&acker);
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    let root = (t as u64) * 1_000_000 + i + 1;
                    let e_root = acker.new_edge_id();
                    acker.track(root, e_root, TaskId(t), root, 0.0);
                    let e_child = acker.new_edge_id();
                    acker.on_emit(root, e_child);
                    acker.on_ack(root, e_root, 0.5);
                    acker.on_ack(root, e_child, 1.0);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let outcomes = acker.drain_outcomes_blocking();
    assert_eq!(outcomes.len(), THREADS * PER_THREAD as usize);
    assert!(outcomes.iter().all(|o| o.completion == Completion::Acked));
    assert_eq!(
        acker.pending_count(),
        0,
        "conservation: nothing left behind"
    );
}

//! Backpressure integration tests for the threaded runtime: the overload
//! workloads (flash crowd, key-skew storm, slow-sink cascade) driven on
//! real threads, asserting
//!
//! * **no deadlock** — every run completes within a hard wall-clock budget
//!   even when credit pools sit exhausted for most of the run;
//! * **credit conservation** — `granted == consumed + revoked +
//!   outstanding` at shutdown, mirroring the tuple-tree conservation
//!   invariant `tracked == acked + permanently_failed + in_flight`;
//! * **bounded queue-wait** — with the adaptive throttle on, the
//!   steady-state queue-wait p99 stays near the setpoint, while with it
//!   off the backlog grows until the channel itself is full.
//!
//! Service times in these workloads are real (the bolts sleep/spin per
//! tuple — `OverloadConfig::spin_service`), so offered load genuinely
//! exceeds stage capacity on the wall clock.

use std::sync::mpsc;
use std::time::Duration;

use dsdps::component::{Spout, SpoutOutput};
use dsdps::config::EngineConfig;
use dsdps::rt::{self, RtConfig, ThreadedReport};
use dsdps::topology::TopologyBuilder;
use dsdps::tuple::{Tuple, Value};

use stream_apps::prelude::*;

/// Engine config for the overload runs: frequent metric (and AIMD) ticks,
/// and a spout-pending gate high enough that the *backpressure subsystem*,
/// not the pre-existing `max_spout_pending` in-flight gate, is what pushes
/// back on the spout.
fn overload_engine() -> EngineConfig {
    let mut cfg = EngineConfig::default().with_cluster(2, 2, 4);
    cfg.metrics_interval_s = 0.25;
    cfg.max_spout_pending = 1_000_000;
    cfg.message_timeout_s = 60.0;
    cfg
}

/// Runs the topology for `run_s`, but fails the test if the run (including
/// shutdown/drain) has not completed within `budget_s` — the no-deadlock
/// assertion every scenario shares.
fn run_bounded(running: rt::RunningTopology, run_s: f64, budget_s: u64) -> ThreadedReport {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let (_, report) = running.run_for(Duration::from_secs_f64(run_s));
        let _ = tx.send(report);
    });
    rx.recv_timeout(Duration::from_secs(budget_s))
        .expect("runtime deadlocked: run_for did not complete within budget")
}

/// One flash-crowd run.  The credit window equals the channel capacity in
/// BOTH runs so credits never bound the queue here — the comparison
/// isolates the adaptive throttle.
fn flash_crowd_run(throttle: bool) -> ThreadedReport {
    let engine = overload_engine();
    let cfg = OverloadConfig {
        pattern: RatePattern::FlashCrowd {
            base: 500.0,
            peak: 8000.0,
            at_s: 0.5,
            len_s: 30.0, // outlasts the run: overload persists at shutdown
        },
        workers: 2,
        work_us: 400.0,
        spin_service: true,
        ..OverloadConfig::default()
    };
    let (topo, _stats) = build_flash_crowd(&cfg).unwrap();
    let mut rt_cfg = RtConfig::default().with_credit_flow(engine.queue_capacity);
    if throttle {
        rt_cfg = rt_cfg.with_adaptive_throttle(Duration::from_millis(5));
    }
    let running = rt::submit_with(topo, engine, rt_cfg).unwrap();
    let report = run_bounded(running, 4.0, 30);
    assert!(
        report.conservation_holds(),
        "tuple conservation: {report:?}"
    );
    assert!(
        report.credit_conservation_holds(),
        "credit conservation: {:?}",
        report.credits
    );
    report
}

/// Headline comparison: a flash crowd 2×+ over stage capacity.  With AIMD
/// throttling the steady-state queue-wait p99 settles near the 5 ms
/// setpoint; without it the backlog grows until the 2048-deep channel is
/// full and queue-wait plateaus at hundreds of milliseconds.
#[test]
fn flash_crowd_throttled_p99_bounded_vs_unthrottled() {
    let throttled = flash_crowd_run(true);
    let unthrottled = flash_crowd_run(false);

    // The AIMD controller actually engaged: a finite cap was set and every
    // change was journaled.
    assert!(
        throttled.rate_cap.is_some(),
        "throttle never engaged: {throttled:?}"
    );
    let changes = throttled.journal_of_kind("throttle_changed");
    assert!(!changes.is_empty(), "throttle changes must be journaled");
    assert!(
        unthrottled.rate_cap.is_none(),
        "control run must stay uncapped"
    );

    let thr = throttled.queue_wait_last_p99_us;
    let unthr = unthrottled.queue_wait_last_p99_us;
    assert!(
        thr < 150_000.0,
        "throttled steady-state queue-wait p99 {thr} µs not bounded"
    );
    assert!(
        unthr > 250_000.0,
        "unthrottled queue-wait p99 {unthr} µs — overload did not materialize"
    );
    assert!(
        thr * 2.0 < unthr,
        "throttling gained nothing: {thr} µs vs {unthr} µs"
    );
}

/// Key-skew storm under the blocking credit policy: the hot key's task
/// saturates and its edge's credits pin near zero, yet the run makes
/// progress, nothing is lost, and the initial window grants are journaled.
#[test]
fn key_skew_storm_blocks_hot_edge_without_deadlock() {
    let engine = overload_engine();
    let cfg = OverloadConfig {
        pattern: RatePattern::Constant { rate: 4000.0 },
        n_keys: 64,
        zipf_s: 2.0,
        workers: 4,
        work_us: 300.0,
        spin_service: true,
        ..OverloadConfig::default()
    };
    let (topo, stats) = build_key_skew_storm(&cfg).unwrap();
    let rt_cfg = RtConfig::default().with_credit_flow(32);
    let running = rt::submit_with(topo, engine, rt_cfg).unwrap();
    let report = run_bounded(running, 3.0, 30);

    assert!(report.conservation_holds(), "{report:?}");
    assert!(report.credit_conservation_holds(), "{:?}", report.credits);
    assert_eq!(report.failed, 0, "blocking policy never sheds");
    assert_eq!(report.shed_batches, 0);

    let sunk = stats.sunk.load(std::sync::atomic::Ordering::Relaxed);
    let hot = stats.hot_hits.load(std::sync::atomic::Ordering::Relaxed);
    assert!(sunk > 1000, "storm made no progress: sunk {sunk}");
    assert!(
        hot as f64 > sunk as f64 * 0.4,
        "not a skew storm: hot {hot} of {sunk}"
    );

    // Startup granted exactly one window per bolt task, journaled.
    let grants = report.journal_of_kind("credit_granted");
    assert_eq!(grants.len(), cfg.workers, "one initial grant per bolt task");
    assert!(report.credits.granted >= (32 * cfg.workers) as u64);
}

/// Slow-sink cascade: only the terminal stage is under-provisioned, so
/// backpressure must propagate two hops (sink credits exhaust, the relay
/// blocks, the relay's credits exhaust, the spout stalls) without
/// deadlocking spout → relay → sink.
#[test]
fn slow_sink_cascade_propagates_backpressure_two_hops() {
    let engine = overload_engine();
    let cfg = OverloadConfig {
        pattern: RatePattern::Constant { rate: 2500.0 },
        workers: 2,
        work_us: 50.0,
        sink_us: 700.0,
        spin_service: true,
        ..OverloadConfig::default()
    };
    let (topo, stats) = build_slow_sink_cascade(&cfg).unwrap();
    let rt_cfg = RtConfig::default().with_credit_flow(16);
    let running = rt::submit_with(topo, engine, rt_cfg).unwrap();
    let report = run_bounded(running, 3.0, 30);

    assert!(report.conservation_holds(), "{report:?}");
    assert!(report.credit_conservation_holds(), "{:?}", report.credits);
    assert_eq!(report.failed, 0);

    let ord = std::sync::atomic::Ordering::Relaxed;
    let emitted = stats.emitted.load(ord);
    let processed = stats.processed.load(ord);
    let sunk = stats.sunk.load(ord);
    assert!(sunk > 1000, "cascade made no progress: sunk {sunk}");
    assert!(
        processed >= sunk,
        "relay feeds the sink: {processed}/{sunk}"
    );
    // The spout was actually held back: with the sink ~2× under-provisioned
    // and only 16 + 16 credits of slack, emissions track sink capacity, not
    // the 2500/s offered rate (which would be ~7500 over the run).
    assert!(
        emitted < 7000,
        "spout was never backpressured: emitted {emitted}"
    );
}

/// Emits `1..=n` as fast as the runtime lets it — the shed-policy stress
/// load.  No replay on fail: a shed tuple's fate must be terminal.
struct FloodSpout {
    left: u64,
    next_id: u64,
}

impl Spout for FloodSpout {
    fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
        if self.left == 0 {
            return false;
        }
        self.left -= 1;
        self.next_id += 1;
        out.emit_with_id(Tuple::of([Value::from(self.next_id as i64)]), self.next_id);
        true
    }
}

/// Shed policy: with `shed_on_overload` a flooded edge fails batches
/// instead of blocking.  Every shed tuple becomes a permanently-failed
/// tree — both conservation invariants must still close exactly.
#[test]
fn shed_policy_fails_fast_and_conserves() {
    const N: u64 = 4000;
    let mut b = TopologyBuilder::new("shed-flood");
    b.set_spout("s", 1, || FloodSpout {
        left: N,
        next_id: 0,
    })
    .unwrap();
    b.set_bolt("slow", 1, || SleepyBolt { service_us: 300.0 })
        .unwrap()
        .shuffle_grouping("s")
        .unwrap();
    let topo = b.build().unwrap();

    let rt_cfg = RtConfig::default()
        .with_credit_flow(8)
        .with_shed_on_overload(true);
    let running = rt::submit_with(topo, overload_engine(), rt_cfg).unwrap();

    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let deadline = std::time::Instant::now() + Duration::from_secs(25);
        while running.acked() + running.permanently_failed() < N
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(20));
        }
        let _ = tx.send(running.shutdown().1);
    });
    let report = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("shed run deadlocked");

    assert!(report.shed_batches > 0, "nothing was shed: {report:?}");
    assert!(report.shed_tuples > 0);
    assert_eq!(
        report.permanently_failed, report.shed_tuples,
        "every shed tuple is a permanently failed tree: {report:?}"
    );
    assert!(report.acked > 0, "some tuples must still get through");
    assert_eq!(report.tracked, N);
    assert_eq!(report.acked + report.permanently_failed, N);
    assert!(report.conservation_holds(), "{report:?}");
    assert!(report.credit_conservation_holds(), "{:?}", report.credits);
}

/// Sleeps per tuple: a deliberately slow consumer.
struct SleepyBolt {
    service_us: f64,
}

impl dsdps::component::Bolt for SleepyBolt {
    fn execute(&mut self, _t: &Tuple, _o: &mut dsdps::component::BoltOutput) {
        std::thread::sleep(Duration::from_secs_f64(self.service_us * 1e-6));
    }
}

/// A small credit window bounds queue-wait on its own — no throttle, no
/// shedding, no loss: the blocking policy holds queued-plus-in-flight per
/// task to the window, so waits are `window / service-rate`, far below the
/// full channel's plateau (compare the unthrottled flash-crowd run).
#[test]
fn small_credit_window_bounds_queue_wait_without_loss() {
    let engine = overload_engine();
    let cfg = OverloadConfig {
        pattern: RatePattern::Constant { rate: 3000.0 },
        workers: 2,
        work_us: 400.0,
        spin_service: true,
        ..OverloadConfig::default()
    };
    let (topo, _stats) = build_flash_crowd(&cfg).unwrap();
    let rt_cfg = RtConfig::default().with_credit_flow(64);
    let running = rt::submit_with(topo, engine, rt_cfg).unwrap();
    let bp = running.backpressure();
    let report = run_bounded(running, 3.0, 30);

    assert!(report.conservation_holds(), "{report:?}");
    assert!(report.credit_conservation_holds(), "{:?}", report.credits);
    assert_eq!(report.failed, 0, "blocking policy loses nothing");
    assert_eq!(report.shed_tuples, 0);
    // 64 credits per task over ~2 k tuples/s of per-task service rate is a
    // few tens of ms of queue; 200 ms is a generous ceiling and still ~3×
    // below the full-channel plateau of the unthrottled flash crowd.
    assert!(
        report.queue_wait_last_p99_us < 200_000.0,
        "credit window failed to bound queue-wait: {} µs",
        report.queue_wait_last_p99_us
    );
    // The handle stays usable after shutdown and the ledger is settled.
    assert_eq!(bp.credits_outstanding(), report.credits.outstanding);
}

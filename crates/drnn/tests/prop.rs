//! Property-based tests for the neural-network library: linear-algebra
//! identities, normalization round trips, window alignment and loss
//! gradients.

use proptest::prelude::*;

use drnn::data::{make_windows, Normalizer};
use drnn::loss::Loss;
use drnn::matrix::Matrix;

fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-100.0f64..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

fn approx_eq(a: &Matrix, b: &Matrix, tol: f64) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    /// (A·B)ᵀ = Bᵀ·Aᵀ
    #[test]
    fn matmul_transpose_identity(a in matrix_strategy(12), inner in 1usize..12, c_cols in 1usize..12) {
        let k = inner;
        let b = Matrix::from_vec(
            k,
            c_cols,
            (0..k * c_cols).map(|i| ((i * 31 % 19) as f64) - 9.0).collect(),
        );
        // Reshape `a` to have `k` columns: rebuild with compatible dims.
        let a = Matrix::from_vec(
            a.rows(),
            k,
            (0..a.rows() * k).map(|i| ((i * 17 % 23) as f64) - 11.0).collect(),
        );
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(approx_eq(&left, &right, 1e-10));
    }

    /// A·I = A and I·A = A
    #[test]
    fn matmul_identity_element(a in matrix_strategy(10)) {
        let id_r = {
            let mut m = Matrix::zeros(a.rows(), a.rows());
            for i in 0..a.rows() {
                m.set(i, i, 1.0);
            }
            m
        };
        let id_c = {
            let mut m = Matrix::zeros(a.cols(), a.cols());
            for i in 0..a.cols() {
                m.set(i, i, 1.0);
            }
            m
        };
        prop_assert!(approx_eq(&id_r.matmul(&a), &a, 1e-12));
        prop_assert!(approx_eq(&a.matmul(&id_c), &a, 1e-12));
    }

    /// (A + B)·C = A·C + B·C (distributivity)
    #[test]
    fn matmul_distributes_over_addition(r in 1usize..8, k in 1usize..8, c in 1usize..8) {
        let gen = |seed: usize, rows, cols| {
            Matrix::from_vec(
                rows,
                cols,
                (0..rows * cols).map(|i| (((i + seed) * 37 % 29) as f64) - 14.0).collect(),
            )
        };
        let a = gen(1, r, k);
        let b = gen(2, r, k);
        let cm = gen(3, k, c);
        let mut a_plus_b = a.clone();
        a_plus_b.add_in_place(&b);
        let left = a_plus_b.matmul(&cm);
        let mut right = a.matmul(&cm);
        right.add_in_place(&b.matmul(&cm));
        prop_assert!(approx_eq(&left, &right, 1e-10));
    }

    #[test]
    fn transpose_is_involution(a in matrix_strategy(12)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn normalizer_round_trip(rows in prop::collection::vec(prop::collection::vec(-1e4f64..1e4, 3), 2..50)) {
        let n = Normalizer::fit(&rows);
        for row in &rows {
            for (idx, &v) in row.iter().enumerate() {
                let fwd = n.transform_feature(idx, v);
                let back = n.inverse_feature(idx, fwd);
                prop_assert!((back - v).abs() < 1e-6 * (1.0 + v.abs()));
            }
        }
    }

    #[test]
    fn normalized_data_has_zero_mean(rows in prop::collection::vec(prop::collection::vec(-1e3f64..1e3, 2), 3..60)) {
        let n = Normalizer::fit(&rows);
        let t = n.transform(&rows);
        for c in 0..2 {
            let mean: f64 = t.iter().map(|r| r[c]).sum::<f64>() / t.len() as f64;
            prop_assert!(mean.abs() < 1e-8, "column {} mean {}", c, mean);
        }
    }

    /// Window samples align exactly with the source series.
    #[test]
    fn windows_align(series_len in 4usize..80, lookback in 1usize..8, horizon in 1usize..4) {
        let features: Vec<Vec<f64>> = (0..series_len).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..series_len).map(|i| i as f64 * 10.0).collect();
        let samples = make_windows(&features, &targets, lookback, horizon);
        let expected_count = series_len.saturating_sub(lookback + horizon - 1).saturating_sub(0);
        if series_len >= lookback + horizon {
            prop_assert_eq!(samples.len(), series_len - lookback - horizon + 1);
        } else {
            prop_assert!(samples.is_empty());
        }
        let _ = expected_count;
        for (i, s) in samples.iter().enumerate() {
            prop_assert_eq!(s.window.len(), lookback);
            prop_assert_eq!(s.window[0][0], i as f64);
            prop_assert_eq!(s.window[lookback - 1][0], (i + lookback - 1) as f64);
            prop_assert_eq!(s.target[0], ((i + lookback + horizon - 1) as f64) * 10.0);
        }
    }

    /// MSE gradient matches finite differences on random data.
    #[test]
    fn mse_gradient_matches_finite_difference(
        data in prop::collection::vec(-10.0f64..10.0, 4),
        target in prop::collection::vec(-10.0f64..10.0, 4),
    ) {
        let mut p = Matrix::from_vec(2, 2, data);
        let t = Matrix::from_vec(2, 2, target);
        let g = Loss::Mse.gradient(&p, &t);
        let eps = 1e-6;
        for k in 0..4 {
            let orig = p.as_slice()[k];
            p.as_mut_slice()[k] = orig + eps;
            let lp = Loss::Mse.value(&p, &t);
            p.as_mut_slice()[k] = orig - eps;
            let lm = Loss::Mse.value(&p, &t);
            p.as_mut_slice()[k] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            prop_assert!((numeric - g.as_slice()[k]).abs() < 1e-6);
        }
    }

    /// Losses are non-negative and zero iff prediction == target.
    #[test]
    fn losses_nonnegative(data in prop::collection::vec(-100.0f64..100.0, 6)) {
        let p = Matrix::from_vec(2, 3, data.clone());
        let t = Matrix::from_vec(2, 3, data.iter().map(|x| x + 1.0).collect());
        for loss in [Loss::Mse, Loss::Mae, Loss::Huber(1.0)] {
            prop_assert!(loss.value(&p, &t) > 0.0);
            prop_assert_eq!(loss.value(&p, &p), 0.0);
        }
    }
}

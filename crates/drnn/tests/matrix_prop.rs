//! Property-based parity tests for the blocked GEMM kernels.
//!
//! The tiled/micro-kernel GEMM, the fused-accumulate variant and the
//! transpose-free `AᵀB` / `ABᵀ` kernels must agree with a naive
//! triple-loop reference on random shapes, including shapes that straddle
//! the k-panel (`KC = 64`) and register-block boundaries.

use proptest::prelude::*;

use drnn::matrix::Matrix;

/// Naive triple-loop reference GEMM.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows());
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for p in 0..k {
            let av = a.get(i, p);
            for j in 0..n {
                out.set(i, j, out.get(i, j) + av * b.get(p, j));
            }
        }
    }
    out
}

fn naive_transpose(a: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.cols(), a.rows());
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            out.set(j, i, a.get(i, j));
        }
    }
    out
}

/// Deterministic pseudo-random fill in [-10, 10) driven by a proptest seed.
fn pseudo(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(2654435761)
                    .wrapping_add(seed.wrapping_mul(97003))
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15);
                ((x % 2000) as f64) / 100.0 - 10.0
            })
            .collect(),
    )
}

fn approx_eq(a: &Matrix, b: &Matrix, tol: f64) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

/// Random (m, k, n) shapes crossing the 2-row micro-kernel, the ×4 k-unroll
/// remainder and the KC = 64 panel boundary.
fn shapes() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..=40, 1usize..=70, 1usize..=40)
}

proptest! {
    /// Blocked `matmul` equals the naive reference.
    #[test]
    fn tiled_gemm_matches_naive((m, k, n) in shapes(), seed in 0u64..1_000_000) {
        let a = pseudo(m, k, seed);
        let b = pseudo(k, n, seed ^ 1);
        prop_assert!(approx_eq(&a.matmul(&b), &naive_matmul(&a, &b), 1e-10));
    }

    /// `matmul_add_into` computes `out += A·B` without disturbing the
    /// existing contents of `out`.
    #[test]
    fn matmul_add_into_accumulates((m, k, n) in shapes(), seed in 0u64..1_000_000) {
        let a = pseudo(m, k, seed);
        let b = pseudo(k, n, seed ^ 1);
        let c0 = pseudo(m, n, seed ^ 2);
        let mut out = c0.clone();
        a.matmul_add_into(&b, &mut out);
        let mut expect = naive_matmul(&a, &b);
        expect.add_in_place(&c0);
        prop_assert!(approx_eq(&out, &expect, 1e-10));
    }

    /// `A.matmul_at_b_into(B, out)` accumulates `out += Aᵀ·B` and equals
    /// the reference built from an explicit transpose.
    #[test]
    fn at_b_matches_explicit_transpose((m, k, n) in shapes(), seed in 0u64..1_000_000) {
        // A is (k × m) so Aᵀ·B is (m × n) with shared leading dim k.
        let a = pseudo(k, m, seed);
        let b = pseudo(k, n, seed ^ 1);
        let g0 = pseudo(m, n, seed ^ 2);
        let mut out = g0.clone();
        a.matmul_at_b_into(&b, &mut out);
        let mut expect = naive_matmul(&naive_transpose(&a), &b);
        expect.add_in_place(&g0);
        prop_assert!(approx_eq(&out, &expect, 1e-10));
        // The allocating variant starts from zero.
        prop_assert!(approx_eq(
            &a.matmul_at_b(&b),
            &naive_matmul(&naive_transpose(&a), &b),
            1e-10
        ));
    }

    /// `A.matmul_a_bt_into(B, out)` assigns `out = A·Bᵀ`;
    /// `matmul_a_bt_add_into` accumulates.
    #[test]
    fn a_bt_matches_explicit_transpose((m, k, n) in shapes(), seed in 0u64..1_000_000) {
        let a = pseudo(m, k, seed);
        let b = pseudo(n, k, seed ^ 1);
        let d0 = pseudo(m, n, seed ^ 2);
        let expect = naive_matmul(&a, &naive_transpose(&b));
        let mut out = d0.clone();
        a.matmul_a_bt_into(&b, &mut out);
        prop_assert!(approx_eq(&out, &expect, 1e-10));
        prop_assert!(approx_eq(&a.matmul_a_bt(&b), &expect, 1e-10));
        let mut acc = d0.clone();
        a.matmul_a_bt_add_into(&b, &mut acc);
        let mut expect_acc = expect.clone();
        expect_acc.add_in_place(&d0);
        prop_assert!(approx_eq(&acc, &expect_acc, 1e-10));
    }

    /// The 32×32 tiled transpose equals the naive element-wise transpose.
    #[test]
    fn tiled_transpose_matches_naive(r in 1usize..=70, c in 1usize..=70, seed in 0u64..1_000_000) {
        let a = pseudo(r, c, seed);
        prop_assert_eq!(a.transpose(), naive_transpose(&a));
    }
}

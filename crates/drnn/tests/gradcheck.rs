//! Finite-difference gradient checks for the recurrent layers.
//!
//! BPTT through one LSTM layer and one GRU layer is compared against
//! central-difference numeric gradients on every parameter matrix; the two
//! must agree to a relative error below 1e-4.  The loss is a fixed linear
//! functional of the hidden states (a deterministic weighted sum) so every
//! hidden unit contributes a distinct gradient signal.

use drnn::layer::gru::GruLayer;
use drnn::layer::lstm::LstmLayer;
use drnn::matrix::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPS: f64 = 1e-5;
const REL_TOL: f64 = 1e-4;

/// Deterministic input sequence: `steps` matrices of `batch x input`.
fn seq(steps: usize, batch: usize, input: usize, seed: u64) -> Vec<Matrix> {
    (0..steps)
        .map(|t| {
            Matrix::from_vec(
                batch,
                input,
                (0..batch * input)
                    .map(|i| {
                        let x = (seed + 1) * 2654435761 + (t as u64) * 97 + i as u64;
                        ((x % 1000) as f64 / 1000.0) - 0.5
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Fixed per-coordinate loss weights so the loss is not symmetric in the
/// hidden units (a plain sum can hide sign errors that cancel).
fn loss_weights(rows: usize, cols: usize) -> Matrix {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|i| 0.5 + ((i * 37 + 11) % 17) as f64 / 17.0)
            .collect(),
    )
}

fn weighted_loss(hs: &[Matrix]) -> f64 {
    hs.iter()
        .map(|h| {
            let w = loss_weights(h.rows(), h.cols());
            h.as_slice()
                .iter()
                .zip(w.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f64>()
        })
        .sum()
}

/// Checks analytic vs numeric gradients at a few probe coordinates of every
/// parameter matrix.  `forward_loss` must be pure (no grad side effects).
#[allow(clippy::type_complexity)] // mirrors the layers' for_each_param signature
fn check_params<L>(
    layer: &mut L,
    for_each_param: &dyn Fn(&mut L, &mut dyn FnMut(&mut Matrix, &mut Matrix)),
    forward_loss: &dyn Fn(&L) -> f64,
    label: &str,
) {
    let grads: Vec<Matrix> = {
        let mut out = Vec::new();
        for_each_param(layer, &mut |_p, g| out.push(g.clone()));
        out
    };
    assert!(!grads.is_empty(), "{label}: layer exposes no parameters");
    for (pi, analytic) in grads.iter().enumerate() {
        let len = analytic.as_slice().len();
        let probes = [0usize, len / 3, len / 2, 2 * len / 3, len - 1];
        for &k in &probes {
            let param_ptr = {
                let mut params = Vec::new();
                for_each_param(layer, &mut |p, _| params.push(p as *mut Matrix));
                params[pi]
            };
            let orig = unsafe { (*param_ptr).as_slice()[k] };
            unsafe { (*param_ptr).as_mut_slice()[k] = orig + EPS };
            let lp = forward_loss(layer);
            unsafe { (*param_ptr).as_mut_slice()[k] = orig - EPS };
            let lm = forward_loss(layer);
            unsafe { (*param_ptr).as_mut_slice()[k] = orig };
            let numeric = (lp - lm) / (2.0 * EPS);
            let ana = analytic.as_slice()[k];
            let rel = (numeric - ana).abs() / (1.0 + numeric.abs().max(ana.abs()));
            assert!(
                rel < REL_TOL,
                "{label}: param {pi} coord {k}: numeric {numeric} vs analytic {ana} (rel {rel:.2e})"
            );
        }
    }
}

#[test]
fn lstm_bptt_matches_finite_differences() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut layer = LstmLayer::new(3, 4, &mut rng);
    let xs = seq(5, 2, 3, 7);

    let (hs, cache) = layer.forward(&xs);
    let dhs: Vec<Matrix> = hs
        .iter()
        .map(|h| loss_weights(h.rows(), h.cols()))
        .collect();
    layer.zero_grads();
    layer.backward(&xs, &hs, &cache, &dhs);

    let xs2 = xs.clone();
    check_params(
        &mut layer,
        &|l, f| l.for_each_param(f),
        &move |l| weighted_loss(&l.forward(&xs2).0),
        "lstm",
    );
}

#[test]
fn gru_bptt_matches_finite_differences() {
    let mut rng = StdRng::seed_from_u64(43);
    let mut layer = GruLayer::new(3, 4, &mut rng);
    let xs = seq(5, 2, 3, 9);

    let (hs, cache) = layer.forward(&xs);
    let dhs: Vec<Matrix> = hs
        .iter()
        .map(|h| loss_weights(h.rows(), h.cols()))
        .collect();
    layer.zero_grads();
    layer.backward(&xs, &hs, &cache, &dhs);

    let xs2 = xs.clone();
    check_params(
        &mut layer,
        &|l, f| l.for_each_param(f),
        &move |l| weighted_loss(&l.forward(&xs2).0),
        "gru",
    );
}

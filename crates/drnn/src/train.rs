//! Mini-batch BPTT training loop with validation and early stopping.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::data::{batch_to_matrices_into, Sample};
use crate::loss::Loss;
use crate::matrix::Matrix;
use crate::model::{Drnn, DrnnCache};
use crate::optim::{Optimizer, OptimizerKind};
use crate::schedule::LrSchedule;

/// Early-stopping policy: stop after `patience` epochs without at least
/// `min_delta` improvement of the monitored loss.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EarlyStopping {
    /// Epochs to wait for improvement.
    pub patience: usize,
    /// Minimum improvement that resets the counter.
    pub min_delta: f64,
}

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Maximum number of epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Optimizer and its hyper-parameters.
    pub optimizer: OptimizerKind,
    /// Global-norm gradient clip (None disables; RNNs usually need ~1–5).
    pub clip_norm: Option<f64>,
    /// Loss function.
    pub loss: Loss,
    /// Shuffle training samples each epoch.
    pub shuffle: bool,
    /// RNG seed for shuffling.
    pub seed: u64,
    /// Fraction of samples (taken chronologically from the tail) held out
    /// for validation; 0 disables validation.
    pub validation_fraction: f64,
    /// Early stopping on the validation loss (train loss when no
    /// validation split).
    pub early_stopping: Option<EarlyStopping>,
    /// Per-epoch learning-rate schedule applied on top of the optimizer's
    /// base rate.
    pub lr_schedule: LrSchedule,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 100,
            batch_size: 32,
            optimizer: OptimizerKind::adam(1e-3),
            clip_norm: Some(5.0),
            loss: Loss::Mse,
            shuffle: true,
            seed: 42,
            validation_fraction: 0.1,
            early_stopping: Some(EarlyStopping {
                patience: 10,
                min_delta: 1e-5,
            }),
            lr_schedule: LrSchedule::Constant,
        }
    }
}

/// Per-epoch record of a training run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub train_loss: Vec<f64>,
    /// Validation loss per epoch (empty when no validation split).
    pub val_loss: Vec<f64>,
    /// Epochs actually run.
    pub epochs_run: usize,
    /// Whether early stopping triggered.
    pub stopped_early: bool,
}

impl TrainReport {
    /// Final training loss.
    pub fn final_train_loss(&self) -> f64 {
        self.train_loss.last().copied().unwrap_or(f64::NAN)
    }

    /// Best (minimum) validation loss, if validation ran.
    pub fn best_val_loss(&self) -> Option<f64> {
        self.val_loss.iter().copied().reduce(f64::min)
    }
}

/// Evaluates mean loss of `model` on `samples` without training.
///
/// Batches are spread across the worker pool in contiguous bands (one band
/// per thread); each band reuses one set of batch/forward buffers for all
/// of its chunks, so evaluation allocates O(threads) scratch rather than
/// O(batches).
pub fn evaluate(model: &Drnn, samples: &[Sample], loss: Loss, batch_size: usize) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let bs = batch_size.max(1);
    let n_chunks = samples.len().div_ceil(bs);
    let bands = rayon::current_num_threads().clamp(1, n_chunks);
    let band = n_chunks.div_ceil(bands);
    let mut partial = vec![0.0f64; bands];
    partial
        .par_chunks_mut(1)
        .enumerate()
        .for_each(|(ti, slot)| {
            let mut refs: Vec<&Sample> = Vec::new();
            let mut xs: Vec<Matrix> = Vec::new();
            let mut y = Matrix::default();
            let mut cache = DrnnCache::default();
            let mut pred = Matrix::default();
            for ci in ti * band..((ti + 1) * band).min(n_chunks) {
                let chunk = &samples[ci * bs..(ci * bs + bs).min(samples.len())];
                refs.clear();
                refs.extend(chunk.iter());
                batch_to_matrices_into(&refs, &mut xs, &mut y);
                model.predict_into(&xs, &mut cache, &mut pred);
                slot[0] += loss.value(&pred, &y) * chunk.len() as f64;
            }
        });
    partial.iter().sum::<f64>() / samples.len() as f64
}

/// Trains `model` on `samples` and returns the loss history.
pub fn train(model: &mut Drnn, samples: &[Sample], cfg: &TrainConfig) -> TrainReport {
    assert!(cfg.epochs > 0 && cfg.batch_size > 0);
    assert!((0.0..1.0).contains(&cfg.validation_fraction));
    if samples.is_empty() {
        return TrainReport::default();
    }

    // Chronological validation split from the tail.
    let n_val = (samples.len() as f64 * cfg.validation_fraction).round() as usize;
    let (train_set, val_set) = samples.split_at(samples.len() - n_val);
    assert!(
        !train_set.is_empty(),
        "validation fraction leaves no training data"
    );

    let mut optimizer = match cfg.clip_norm {
        Some(c) => Optimizer::new(cfg.optimizer).with_clip_norm(c),
        None => Optimizer::new(cfg.optimizer),
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut indices: Vec<usize> = (0..train_set.len()).collect();

    let mut report = TrainReport::default();
    let mut best_monitor = f64::INFINITY;
    let mut since_best = 0usize;

    let base_lr = optimizer.lr();
    // Batch/forward/backward buffers reused across every batch and epoch.
    let mut refs: Vec<&Sample> = Vec::with_capacity(cfg.batch_size);
    let mut xs: Vec<Matrix> = Vec::new();
    let mut y = Matrix::default();
    let mut cache = DrnnCache::default();
    let mut pred = Matrix::default();
    for epoch in 0..cfg.epochs {
        optimizer.set_lr(cfg.lr_schedule.lr_at(epoch, base_lr));
        if cfg.shuffle {
            indices.shuffle(&mut rng);
        }
        let mut epoch_loss = 0.0;
        let mut seen = 0usize;
        for batch_idx in indices.chunks(cfg.batch_size) {
            refs.clear();
            refs.extend(batch_idx.iter().map(|&i| &train_set[i]));
            batch_to_matrices_into(&refs, &mut xs, &mut y);
            model.forward_train_into(&xs, &mut cache, &mut pred);
            let batch_loss = cfg.loss.value(&pred, &y);
            let dpred = cfg.loss.gradient(&pred, &y);
            model.zero_grads();
            model.backward(&xs, &cache, &dpred);
            optimizer.step(&mut |f| model.for_each_param(f));
            epoch_loss += batch_loss * refs.len() as f64;
            seen += refs.len();
        }
        let train_loss = epoch_loss / seen as f64;
        report.train_loss.push(train_loss);
        report.epochs_run += 1;

        let monitor = if val_set.is_empty() {
            train_loss
        } else {
            let vl = evaluate(model, val_set, cfg.loss, cfg.batch_size);
            report.val_loss.push(vl);
            vl
        };

        if let Some(es) = cfg.early_stopping {
            if monitor < best_monitor - es.min_delta {
                best_monitor = monitor;
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= es.patience {
                    report.stopped_early = true;
                    break;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::make_windows;
    use crate::layer::CellKind;
    use crate::model::DrnnConfig;

    /// Deterministic synthetic series: y_t = 0.6 sin(t/5) + 0.3 cos(t/11).
    fn sine_samples(n: usize, lookback: usize) -> Vec<Sample> {
        let series: Vec<f64> = (0..n)
            .map(|t| 0.6 * (t as f64 / 5.0).sin() + 0.3 * (t as f64 / 11.0).cos())
            .collect();
        let features: Vec<Vec<f64>> = series.iter().map(|&v| vec![v]).collect();
        make_windows(&features, &series, lookback, 1)
    }

    fn small_model(cell: CellKind) -> Drnn {
        Drnn::new(DrnnConfig {
            input: 1,
            hidden: vec![12],
            output: 1,
            cell,
            seed: 3,
        })
    }

    #[test]
    fn training_reduces_loss_substantially() {
        let samples = sine_samples(300, 8);
        let mut model = small_model(CellKind::Lstm);
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 32,
            validation_fraction: 0.0,
            early_stopping: None,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &samples, &cfg);
        assert_eq!(report.epochs_run, 30);
        let first = report.train_loss[0];
        let last = report.final_train_loss();
        assert!(
            last < first * 0.2,
            "loss should drop by >5x: {first} -> {last}"
        );
    }

    #[test]
    fn gru_also_learns() {
        let samples = sine_samples(300, 8);
        let mut model = small_model(CellKind::Gru);
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 32,
            validation_fraction: 0.0,
            early_stopping: None,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &samples, &cfg);
        assert!(report.final_train_loss() < report.train_loss[0] * 0.3);
    }

    #[test]
    fn early_stopping_triggers_on_plateau() {
        // Pure noise target: the model cannot improve validation loss for
        // long, so early stopping must fire well before the epoch cap.
        let features: Vec<Vec<f64>> = (0..200)
            .map(|t| vec![((t * 7919) % 101) as f64 / 101.0])
            .collect();
        let targets: Vec<f64> = (0..200)
            .map(|t| ((t * 104729) % 97) as f64 / 97.0)
            .collect();
        let samples = make_windows(&features, &targets, 4, 1);
        let mut model = small_model(CellKind::Lstm);
        let cfg = TrainConfig {
            epochs: 500,
            batch_size: 16,
            validation_fraction: 0.2,
            early_stopping: Some(EarlyStopping {
                patience: 5,
                min_delta: 1e-4,
            }),
            ..TrainConfig::default()
        };
        let report = train(&mut model, &samples, &cfg);
        assert!(report.stopped_early, "must stop early on noise");
        assert!(report.epochs_run < 500);
        assert_eq!(report.val_loss.len(), report.epochs_run);
    }

    #[test]
    fn validation_split_is_chronological_tail() {
        let samples = sine_samples(100, 4);
        let mut model = small_model(CellKind::Lstm);
        let cfg = TrainConfig {
            epochs: 2,
            validation_fraction: 0.25,
            early_stopping: None,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &samples, &cfg);
        assert_eq!(report.val_loss.len(), 2);
        assert!(report.best_val_loss().unwrap().is_finite());
    }

    #[test]
    fn training_is_reproducible_for_fixed_seeds() {
        let samples = sine_samples(150, 6);
        let run = || {
            let mut model = small_model(CellKind::Lstm);
            let cfg = TrainConfig {
                epochs: 5,
                validation_fraction: 0.0,
                early_stopping: None,
                ..TrainConfig::default()
            };
            train(&mut model, &samples, &cfg).final_train_loss()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn evaluate_on_empty_is_zero() {
        let model = small_model(CellKind::Lstm);
        assert_eq!(evaluate(&model, &[], Loss::Mse, 8), 0.0);
    }

    #[test]
    fn trained_model_forecasts_sine_out_of_sample() {
        let samples = sine_samples(400, 10);
        let (train_set, test_set) = crate::data::split_train_test(&samples, 0.75);
        let mut model = small_model(CellKind::Lstm);
        let cfg = TrainConfig {
            epochs: 40,
            batch_size: 32,
            validation_fraction: 0.0,
            early_stopping: None,
            ..TrainConfig::default()
        };
        train(&mut model, &train_set, &cfg);
        let mse = evaluate(&model, &test_set, Loss::Mse, 32);
        // Series variance is ~0.22; a learned model should be far below.
        assert!(mse < 0.02, "out-of-sample MSE {mse} too high");
    }
}

//! Dataset utilities: feature normalization, sliding-window construction
//! for sequence-to-one forecasting, chronological splits and mini-batching.

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;

/// Per-feature z-score normalizer fitted on training data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Normalizer {
    /// Fits mean/std per column of `rows` (each row = one observation).
    /// Zero-variance features get std 1 so they pass through centered.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit on empty data");
        let dim = rows[0].len();
        let n = rows.len() as f64;
        let mut mean = vec![0.0; dim];
        for r in rows {
            assert_eq!(r.len(), dim, "ragged observations");
            for (m, v) in mean.iter_mut().zip(r) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; dim];
        for r in rows {
            for ((s, v), m) in var.iter_mut().zip(r).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        let std = var
            .into_iter()
            .map(|s| {
                let sd = (s / n).sqrt();
                if sd < 1e-12 {
                    1.0
                } else {
                    sd
                }
            })
            .collect();
        Normalizer { mean, std }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Normalizes one observation in place.
    pub fn transform_in_place(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.dim());
        for ((v, m), s) in row.iter_mut().zip(&self.mean).zip(&self.std) {
            *v = (*v - m) / s;
        }
    }

    /// Normalized copy of `rows`.
    pub fn transform(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter()
            .map(|r| {
                let mut r = r.clone();
                self.transform_in_place(&mut r);
                r
            })
            .collect()
    }

    /// Inverse transform of feature `idx` (to report predictions in
    /// original units).
    pub fn inverse_feature(&self, idx: usize, v: f64) -> f64 {
        v * self.std[idx] + self.mean[idx]
    }

    /// Forward transform of a single feature value.
    pub fn transform_feature(&self, idx: usize, v: f64) -> f64 {
        (v - self.mean[idx]) / self.std[idx]
    }
}

/// One training sample: an input window and its target vector.
#[derive(Debug, Clone)]
pub struct Sample {
    /// `lookback` rows of features (oldest first).
    pub window: Vec<Vec<f64>>,
    /// Regression target(s).
    pub target: Vec<f64>,
}

/// Builds sequence-to-one samples from a feature series and a target series.
///
/// Sample `i` uses feature rows `[i, i + lookback)` to predict
/// `targets[i + lookback + horizon - 1]` — i.e. `horizon = 1` predicts the
/// value immediately after the window.
pub fn make_windows(
    features: &[Vec<f64>],
    targets: &[f64],
    lookback: usize,
    horizon: usize,
) -> Vec<Sample> {
    assert_eq!(
        features.len(),
        targets.len(),
        "feature/target length mismatch"
    );
    assert!(lookback >= 1 && horizon >= 1);
    if features.len() < lookback + horizon {
        return Vec::new();
    }
    (0..=features.len() - lookback - horizon)
        .map(|i| Sample {
            window: features[i..i + lookback].to_vec(),
            target: vec![targets[i + lookback + horizon - 1]],
        })
        .collect()
}

/// Chronological train/test split (no shuffling — this is time-series data).
pub fn split_train_test(samples: &[Sample], train_fraction: f64) -> (Vec<Sample>, Vec<Sample>) {
    assert!((0.0..=1.0).contains(&train_fraction));
    let cut = (samples.len() as f64 * train_fraction).round() as usize;
    (samples[..cut].to_vec(), samples[cut..].to_vec())
}

/// Packs a batch of samples into per-timestep matrices (`seq_len` matrices
/// of shape `batch × features`) plus a target matrix (`batch × out`).
pub fn batch_to_matrices(batch: &[&Sample]) -> (Vec<Matrix>, Matrix) {
    let mut xs = Vec::new();
    let mut y = Matrix::default();
    batch_to_matrices_into(batch, &mut xs, &mut y);
    (xs, y)
}

/// Like [`batch_to_matrices`] but packing into caller-owned buffers, so a
/// training loop stops re-allocating the batch matrices every step once
/// the buffers are warm.
pub fn batch_to_matrices_into(batch: &[&Sample], xs: &mut Vec<Matrix>, y: &mut Matrix) {
    assert!(!batch.is_empty());
    let seq_len = batch[0].window.len();
    let feat = batch[0].window[0].len();
    let out = batch[0].target.len();
    assert!(
        batch.iter().all(|s| s.window.len() == seq_len
            && s.window[0].len() == feat
            && s.target.len() == out),
        "inhomogeneous batch"
    );
    xs.resize_with(seq_len, Matrix::default);
    xs.truncate(seq_len);
    for (t, m) in xs.iter_mut().enumerate() {
        m.resize_uninit(batch.len(), feat);
        for (b, s) in batch.iter().enumerate() {
            m.row_mut(b).copy_from_slice(&s.window[t]);
        }
    }
    y.resize_uninit(batch.len(), out);
    for (b, s) in batch.iter().enumerate() {
        y.row_mut(b).copy_from_slice(&s.target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, 10.0],
            vec![2.0, 20.0],
            vec![3.0, 30.0],
            vec![4.0, 40.0],
        ]
    }

    #[test]
    fn normalizer_zero_mean_unit_variance() {
        let n = Normalizer::fit(&rows());
        let t = n.transform(&rows());
        for c in 0..2 {
            let mean: f64 = t.iter().map(|r| r[c]).sum::<f64>() / 4.0;
            let var: f64 = t.iter().map(|r| r[c] * r[c]).sum::<f64>() / 4.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normalizer_inverse_round_trip() {
        let n = Normalizer::fit(&rows());
        let v = 3.7;
        let fwd = n.transform_feature(0, v);
        assert!((n.inverse_feature(0, fwd) - v).abs() < 1e-12);
    }

    #[test]
    fn normalizer_constant_feature_is_safe() {
        let data = vec![vec![5.0], vec![5.0], vec![5.0]];
        let n = Normalizer::fit(&data);
        let t = n.transform(&data);
        assert!(t.iter().all(|r| r[0] == 0.0));
        assert!(t.iter().all(|r| r[0].is_finite()));
    }

    #[test]
    fn windows_align_target_with_horizon() {
        let features: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..10).map(|i| i as f64 * 100.0).collect();
        let s = make_windows(&features, &targets, 3, 1);
        assert_eq!(s.len(), 7);
        // First sample: window rows 0,1,2 → target at index 3.
        assert_eq!(s[0].window, vec![vec![0.0], vec![1.0], vec![2.0]]);
        assert_eq!(s[0].target, vec![300.0]);
        // Horizon 2 skips one step.
        let s2 = make_windows(&features, &targets, 3, 2);
        assert_eq!(s2.len(), 6);
        assert_eq!(s2[0].target, vec![400.0]);
    }

    #[test]
    fn windows_empty_when_series_too_short() {
        let features: Vec<Vec<f64>> = (0..3).map(|i| vec![i as f64]).collect();
        let targets = vec![0.0; 3];
        assert!(make_windows(&features, &targets, 4, 1).is_empty());
        assert_eq!(make_windows(&features, &targets, 2, 1).len(), 1);
    }

    #[test]
    fn split_is_chronological() {
        let features: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let s = make_windows(&features, &targets, 2, 1);
        let (train, test) = split_train_test(&s, 0.7);
        assert_eq!(train.len() + test.len(), s.len());
        let max_train = train.iter().map(|s| s.target[0] as i64).max().unwrap();
        let min_test = test.iter().map(|s| s.target[0] as i64).min().unwrap();
        assert!(max_train < min_test, "test data must follow train data");
    }

    #[test]
    fn batch_packing_layout() {
        let samples = [
            Sample {
                window: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
                target: vec![10.0],
            },
            Sample {
                window: vec![vec![5.0, 6.0], vec![7.0, 8.0]],
                target: vec![20.0],
            },
        ];
        let refs: Vec<&Sample> = samples.iter().collect();
        let (xs, y) = batch_to_matrices(&refs);
        assert_eq!(xs.len(), 2);
        assert_eq!(xs[0].shape(), (2, 2));
        assert_eq!(xs[0].row(1), &[5.0, 6.0]); // sample 1's first step
        assert_eq!(xs[1].row(0), &[3.0, 4.0]); // sample 0's second step
        assert_eq!(y.get(1, 0), 20.0);
    }

    #[test]
    fn batch_packing_into_reused_buffers_matches_fresh() {
        let make = |n: usize, t: usize| -> Vec<Sample> {
            (0..n)
                .map(|i| Sample {
                    window: (0..t).map(|s| vec![(i * 10 + s) as f64]).collect(),
                    target: vec![i as f64],
                })
                .collect()
        };
        let mut xs = Vec::new();
        let mut y = Matrix::default();
        for (n, t) in [(3usize, 4usize), (5, 2), (1, 6)] {
            let samples = make(n, t);
            let refs: Vec<&Sample> = samples.iter().collect();
            batch_to_matrices_into(&refs, &mut xs, &mut y);
            let (fresh_xs, fresh_y) = batch_to_matrices(&refs);
            assert_eq!(xs, fresh_xs);
            assert_eq!(y, fresh_y);
        }
    }
}

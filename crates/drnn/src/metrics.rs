//! Forecast-accuracy metrics used throughout the evaluation: MAPE (the
//! paper's headline metric), SMAPE, RMSE, MAE and R².

/// Mean absolute percentage error, in percent.  Pairs whose actual value is
/// (near) zero are skipped, matching standard practice.
pub fn mape(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len());
    let mut sum = 0.0;
    let mut n = 0usize;
    for (a, p) in actual.iter().zip(predicted) {
        if a.abs() > 1e-9 {
            sum += ((a - p) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        100.0 * sum / n as f64
    }
}

/// Symmetric MAPE, in percent (bounded by 200).
pub fn smape(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len());
    let mut sum = 0.0;
    let mut n = 0usize;
    for (a, p) in actual.iter().zip(predicted) {
        let denom = (a.abs() + p.abs()) / 2.0;
        if denom > 1e-9 {
            sum += (a - p).abs() / denom;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        100.0 * sum / n as f64
    }
}

/// Root mean squared error.
pub fn rmse(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len());
    if actual.is_empty() {
        return 0.0;
    }
    let mse: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p) * (a - p))
        .sum::<f64>()
        / actual.len() as f64;
    mse.sqrt()
}

/// Mean absolute error.
pub fn mae(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len());
    if actual.is_empty() {
        return 0.0;
    }
    actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p).abs())
        .sum::<f64>()
        / actual.len() as f64
}

/// Coefficient of determination.  1 is perfect; 0 means no better than
/// predicting the mean; negative is worse than the mean.
pub fn r2(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len());
    if actual.is_empty() {
        return 0.0;
    }
    let mean: f64 = actual.iter().sum::<f64>() / actual.len() as f64;
    let ss_tot: f64 = actual.iter().map(|a| (a - mean) * (a - mean)).sum();
    let ss_res: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p) * (a - p))
        .sum();
    if ss_tot < 1e-12 {
        if ss_res < 1e-12 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_scores() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(mape(&a, &a), 0.0);
        assert_eq!(smape(&a, &a), 0.0);
        assert_eq!(rmse(&a, &a), 0.0);
        assert_eq!(mae(&a, &a), 0.0);
        assert_eq!(r2(&a, &a), 1.0);
    }

    #[test]
    fn mape_known_value() {
        let a = [100.0, 200.0];
        let p = [110.0, 180.0];
        // |10/100| = 10%, |20/200| = 10% → 10%
        assert!((mape(&a, &p) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let a = [0.0, 100.0];
        let p = [50.0, 110.0];
        assert!((mape(&a, &p) - 10.0).abs() < 1e-12);
        assert_eq!(
            mape(&[0.0], &[1.0]),
            0.0,
            "all-zero actuals → 0 by convention"
        );
    }

    #[test]
    fn smape_is_symmetric_and_bounded() {
        let a = [100.0];
        let p = [0.0001];
        assert!(smape(&a, &p) < 200.0 + 1e-9);
        assert!((smape(&[10.0], &[20.0]) - smape(&[20.0], &[10.0])).abs() < 1e-12);
    }

    #[test]
    fn rmse_and_mae_known_values() {
        let a = [0.0, 0.0];
        let p = [3.0, 4.0];
        assert!((rmse(&a, &p) - (12.5f64).sqrt()).abs() < 1e-12);
        assert!((mae(&a, &p) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn rmse_penalizes_outliers_more_than_mae() {
        let a = [0.0, 0.0, 0.0, 0.0];
        let spread = [1.0, 1.0, 1.0, 1.0];
        let outlier = [0.0, 0.0, 0.0, 4.0];
        assert_eq!(mae(&a, &spread), mae(&a, &outlier));
        assert!(rmse(&a, &outlier) > rmse(&a, &spread));
    }

    #[test]
    fn r2_of_mean_prediction_is_zero() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let p = [2.5, 2.5, 2.5, 2.5];
        assert!(r2(&a, &p).abs() < 1e-12);
        let worse = [10.0, 10.0, 10.0, 10.0];
        assert!(r2(&a, &worse) < 0.0);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(rmse(&[], &[]), 0.0);
        assert_eq!(mae(&[], &[]), 0.0);
        assert_eq!(r2(&[], &[]), 0.0);
    }
}

//! First-order optimizers: SGD (with momentum), RMSProp and Adam, plus
//! global-norm gradient clipping.
//!
//! Optimizers are stateful per parameter tensor; parameters are identified
//! by their visitation order, which the model keeps stable across steps.

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;

/// Optimizer choice and hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Vanilla stochastic gradient descent.
    Sgd {
        /// Learning rate.
        lr: f64,
    },
    /// SGD with classical momentum.
    Momentum {
        /// Learning rate.
        lr: f64,
        /// Momentum coefficient (e.g. 0.9).
        beta: f64,
    },
    /// RMSProp.
    RmsProp {
        /// Learning rate.
        lr: f64,
        /// Decay of the squared-gradient average (e.g. 0.99).
        rho: f64,
    },
    /// Adam (Kingma & Ba, 2015) with bias correction.
    Adam {
        /// Learning rate.
        lr: f64,
        /// First-moment decay (default 0.9).
        beta1: f64,
        /// Second-moment decay (default 0.999).
        beta2: f64,
    },
}

impl OptimizerKind {
    /// Adam with the canonical defaults at the given learning rate.
    pub fn adam(lr: f64) -> Self {
        OptimizerKind::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
        }
    }
}

const EPS: f64 = 1e-8;

/// A stateful optimizer over an ordered list of parameter tensors.
#[derive(Debug, Clone)]
pub struct Optimizer {
    kind: OptimizerKind,
    /// First-moment / velocity buffers, by parameter index.
    m: Vec<Matrix>,
    /// Second-moment buffers (Adam/RMSProp).
    v: Vec<Matrix>,
    /// Adam step counter.
    t: u64,
    /// Optional global-norm clip threshold.
    clip_norm: Option<f64>,
}

impl Optimizer {
    /// Creates an optimizer.
    pub fn new(kind: OptimizerKind) -> Self {
        Optimizer {
            kind,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
            clip_norm: None,
        }
    }

    /// Enables global-norm gradient clipping (essential for RNN training).
    pub fn with_clip_norm(mut self, max_norm: f64) -> Self {
        assert!(max_norm > 0.0);
        self.clip_norm = Some(max_norm);
        self
    }

    /// The configured kind.
    pub fn kind(&self) -> OptimizerKind {
        self.kind
    }

    /// The current base learning rate.
    pub fn lr(&self) -> f64 {
        match self.kind {
            OptimizerKind::Sgd { lr }
            | OptimizerKind::Momentum { lr, .. }
            | OptimizerKind::RmsProp { lr, .. }
            | OptimizerKind::Adam { lr, .. } => lr,
        }
    }

    /// Replaces the learning rate (schedules call this per epoch; moment
    /// buffers are preserved).
    pub fn set_lr(&mut self, new_lr: f64) {
        assert!(new_lr > 0.0, "learning rate must be positive");
        match &mut self.kind {
            OptimizerKind::Sgd { lr }
            | OptimizerKind::Momentum { lr, .. }
            | OptimizerKind::RmsProp { lr, .. }
            | OptimizerKind::Adam { lr, .. } => *lr = new_lr,
        }
    }

    /// Applies one update step.  `visit` must call its argument once per
    /// `(param, grad)` pair in the same order every step (the model's
    /// `for_each_param`).
    #[allow(clippy::type_complexity)] // the double-callback shape IS the interface
    pub fn step(&mut self, visit: &mut dyn FnMut(&mut dyn FnMut(&mut Matrix, &mut Matrix))) {
        self.t += 1;

        // Pass 1 (only when clipping): global gradient norm.
        let scale = if let Some(max_norm) = self.clip_norm {
            let mut sq = 0.0;
            visit(&mut |_p, g| {
                sq += g.as_slice().iter().map(|x| x * x).sum::<f64>();
            });
            let norm = sq.sqrt();
            if norm > max_norm {
                max_norm / norm
            } else {
                1.0
            }
        } else {
            1.0
        };

        // Pass 2: parameter updates.
        let mut idx = 0usize;
        let kind = self.kind;
        let t = self.t;
        let m = &mut self.m;
        let v = &mut self.v;
        visit(&mut |p, g| {
            if idx >= m.len() {
                m.push(Matrix::zeros(p.rows(), p.cols()));
                v.push(Matrix::zeros(p.rows(), p.cols()));
            }
            debug_assert_eq!(m[idx].shape(), p.shape(), "parameter order changed");
            let mm = &mut m[idx];
            let vv = &mut v[idx];
            match kind {
                OptimizerKind::Sgd { lr } => {
                    for (pv, gv) in p.as_mut_slice().iter_mut().zip(g.as_slice()) {
                        *pv -= lr * scale * gv;
                    }
                }
                OptimizerKind::Momentum { lr, beta } => {
                    for ((pv, gv), mv) in p
                        .as_mut_slice()
                        .iter_mut()
                        .zip(g.as_slice())
                        .zip(mm.as_mut_slice())
                    {
                        *mv = beta * *mv + scale * gv;
                        *pv -= lr * *mv;
                    }
                }
                OptimizerKind::RmsProp { lr, rho } => {
                    for ((pv, gv), sv) in p
                        .as_mut_slice()
                        .iter_mut()
                        .zip(g.as_slice())
                        .zip(vv.as_mut_slice())
                    {
                        let gc = scale * gv;
                        *sv = rho * *sv + (1.0 - rho) * gc * gc;
                        *pv -= lr * gc / (sv.sqrt() + EPS);
                    }
                }
                OptimizerKind::Adam { lr, beta1, beta2 } => {
                    let bc1 = 1.0 - beta1.powi(t as i32);
                    let bc2 = 1.0 - beta2.powi(t as i32);
                    for (((pv, gv), mv), sv) in p
                        .as_mut_slice()
                        .iter_mut()
                        .zip(g.as_slice())
                        .zip(mm.as_mut_slice())
                        .zip(vv.as_mut_slice())
                    {
                        let gc = scale * gv;
                        *mv = beta1 * *mv + (1.0 - beta1) * gc;
                        *sv = beta2 * *sv + (1.0 - beta2) * gc * gc;
                        let mhat = *mv / bc1;
                        let vhat = *sv / bc2;
                        *pv -= lr * mhat / (vhat.sqrt() + EPS);
                    }
                }
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(p) = sum(p^2) — gradient 2p — and check convergence.
    fn converges(kind: OptimizerKind, steps: usize, tol: f64) {
        let mut p = Matrix::from_rows(&[vec![5.0, -3.0, 1.0]]);
        let mut g = Matrix::zeros(1, 3);
        let mut opt = Optimizer::new(kind);
        for _ in 0..steps {
            for (gv, pv) in g.as_mut_slice().iter_mut().zip(p.as_slice()) {
                *gv = 2.0 * pv;
            }
            opt.step(&mut |f| f(&mut p, &mut g));
        }
        assert!(
            p.frobenius_norm() < tol,
            "{kind:?} did not converge: |p| = {}",
            p.frobenius_norm()
        );
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        converges(OptimizerKind::Sgd { lr: 0.1 }, 100, 1e-6);
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        converges(
            OptimizerKind::Momentum {
                lr: 0.05,
                beta: 0.9,
            },
            300,
            1e-5,
        );
    }

    #[test]
    fn rmsprop_converges_on_quadratic() {
        converges(
            OptimizerKind::RmsProp {
                lr: 0.05,
                rho: 0.99,
            },
            500,
            1e-2,
        );
    }

    #[test]
    fn adam_converges_on_quadratic() {
        converges(OptimizerKind::adam(0.1), 500, 1e-3);
    }

    #[test]
    fn adam_handles_scale_differences_better_than_sgd() {
        // f(p) = 1000 p0^2 + 0.001 p1^2: pathological conditioning.
        let run = |kind: OptimizerKind| {
            let mut p = Matrix::from_rows(&[vec![1.0, 1.0]]);
            let mut g = Matrix::zeros(1, 2);
            let mut opt = Optimizer::new(kind);
            for _ in 0..300 {
                g.as_mut_slice()[0] = 2000.0 * p.as_slice()[0];
                g.as_mut_slice()[1] = 0.002 * p.as_slice()[1];
                opt.step(&mut |f| f(&mut p, &mut g));
            }
            p.as_slice()[1].abs()
        };
        let adam_p1 = run(OptimizerKind::adam(0.05));
        let sgd_p1 = run(OptimizerKind::Sgd { lr: 0.0004 }); // max stable lr
        assert!(
            adam_p1 < sgd_p1 * 0.5,
            "adam {adam_p1} should beat sgd {sgd_p1} on the flat coordinate"
        );
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut p = Matrix::from_rows(&[vec![0.0; 4]]);
        let mut g = Matrix::from_rows(&[vec![100.0; 4]]); // norm 200
        let mut opt = Optimizer::new(OptimizerKind::Sgd { lr: 1.0 }).with_clip_norm(1.0);
        opt.step(&mut |f| f(&mut p, &mut g));
        // Effective gradient norm clipped to 1 → |Δp| = 1.
        assert!((p.frobenius_norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clipping_leaves_small_gradients_alone() {
        let mut p = Matrix::from_rows(&[vec![0.0]]);
        let mut g = Matrix::from_rows(&[vec![0.5]]);
        let mut opt = Optimizer::new(OptimizerKind::Sgd { lr: 1.0 }).with_clip_norm(10.0);
        opt.step(&mut |f| f(&mut p, &mut g));
        assert!((p.get(0, 0) + 0.5).abs() < 1e-12);
    }

    #[test]
    fn multiple_params_keep_separate_state() {
        let mut p1 = Matrix::from_rows(&[vec![1.0]]);
        let mut p2 = Matrix::from_rows(&[vec![2.0, 3.0]]);
        let mut g1 = Matrix::from_rows(&[vec![0.0]]);
        let mut g2 = Matrix::from_rows(&[vec![0.0, 0.0]]);
        let mut opt = Optimizer::new(OptimizerKind::adam(0.1));
        for _ in 0..200 {
            g1.as_mut_slice()[0] = 2.0 * p1.as_slice()[0];
            for (g, p) in g2.as_mut_slice().iter_mut().zip(p2.as_slice()) {
                *g = 2.0 * p;
            }
            opt.step(&mut |f| {
                f(&mut p1, &mut g1);
                f(&mut p2, &mut g2);
            });
        }
        assert!(p1.frobenius_norm() < 0.01);
        assert!(p2.frobenius_norm() < 0.01);
    }
}

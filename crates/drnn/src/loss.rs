//! Regression losses and their gradients.

use crate::matrix::Matrix;

/// Which loss a trainer minimizes.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Loss {
    /// Mean squared error.
    Mse,
    /// Mean absolute error.
    Mae,
    /// Huber loss with the given transition point `delta`.
    Huber(f64),
}

impl Loss {
    /// Loss value averaged over all elements.
    pub fn value(&self, pred: &Matrix, target: &Matrix) -> f64 {
        assert_eq!(pred.shape(), target.shape());
        let n = pred.as_slice().len() as f64;
        match self {
            Loss::Mse => {
                pred.as_slice()
                    .iter()
                    .zip(target.as_slice())
                    .map(|(p, t)| (p - t).powi(2))
                    .sum::<f64>()
                    / n
            }
            Loss::Mae => {
                pred.as_slice()
                    .iter()
                    .zip(target.as_slice())
                    .map(|(p, t)| (p - t).abs())
                    .sum::<f64>()
                    / n
            }
            Loss::Huber(delta) => {
                pred.as_slice()
                    .iter()
                    .zip(target.as_slice())
                    .map(|(p, t)| {
                        let e = (p - t).abs();
                        if e <= *delta {
                            0.5 * e * e
                        } else {
                            delta * (e - 0.5 * delta)
                        }
                    })
                    .sum::<f64>()
                    / n
            }
        }
    }

    /// Gradient `∂L/∂pred`, same shape as `pred`.
    pub fn gradient(&self, pred: &Matrix, target: &Matrix) -> Matrix {
        assert_eq!(pred.shape(), target.shape());
        let n = pred.as_slice().len() as f64;
        let data: Vec<f64> = pred
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(p, t)| {
                let e = p - t;
                match self {
                    Loss::Mse => 2.0 * e / n,
                    Loss::Mae => e.signum() / n,
                    Loss::Huber(delta) => {
                        if e.abs() <= *delta {
                            e / n
                        } else {
                            delta * e.signum() / n
                        }
                    }
                }
            })
            .collect();
        Matrix::from_vec(pred.rows(), pred.cols(), data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt() -> (Matrix, Matrix) {
        (
            Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]),
            Matrix::from_rows(&[vec![1.5, 2.0], vec![2.0, 6.0]]),
        )
    }

    #[test]
    fn mse_value_and_zero_at_match() {
        let (p, t) = pt();
        // errors: -0.5, 0, 1, -2 → squares 0.25,0,1,4 → mean 1.3125
        assert!((Loss::Mse.value(&p, &t) - 1.3125).abs() < 1e-12);
        assert_eq!(Loss::Mse.value(&p, &p), 0.0);
    }

    #[test]
    fn mae_value() {
        let (p, t) = pt();
        assert!((Loss::Mae.value(&p, &t) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn huber_between_mae_and_mse_behaviour() {
        let (p, t) = pt();
        let h = Loss::Huber(1.0);
        // small errors quadratic, large errors linear
        let v = h.value(&p, &t);
        assert!(v > 0.0 && v < Loss::Mse.value(&p, &t));
    }

    #[test]
    fn gradients_match_finite_differences() {
        let (mut p, t) = pt();
        for loss in [Loss::Mse, Loss::Huber(0.7), Loss::Mae] {
            let g = loss.gradient(&p, &t);
            let eps = 1e-7;
            for k in 0..4 {
                let orig = p.as_slice()[k];
                // Skip MAE/Huber kink points.
                if matches!(loss, Loss::Mae) && (orig - t.as_slice()[k]).abs() < 1e-6 {
                    continue;
                }
                p.as_mut_slice()[k] = orig + eps;
                let lp = loss.value(&p, &t);
                p.as_mut_slice()[k] = orig - eps;
                let lm = loss.value(&p, &t);
                p.as_mut_slice()[k] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - g.as_slice()[k]).abs() < 1e-6,
                    "{loss:?} grad[{k}]: {numeric} vs {}",
                    g.as_slice()[k]
                );
            }
        }
    }

    #[test]
    fn huber_gradient_saturates() {
        let p = Matrix::from_rows(&[vec![100.0]]);
        let t = Matrix::from_rows(&[vec![0.0]]);
        let g = Loss::Huber(1.0).gradient(&p, &t);
        assert_eq!(g.get(0, 0), 1.0, "gradient clamps at delta");
    }
}

//! Weight initialization schemes (seeded, reproducible).

use rand::rngs::StdRng;
use rand::Rng;

use crate::matrix::Matrix;

/// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
/// The standard choice for tanh/sigmoid gates.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let a = (6.0 / (rows + cols) as f64).sqrt();
    random_uniform(rows, cols, -a, a, rng)
}

/// He/Kaiming uniform: `U(-a, a)` with `a = sqrt(6 / fan_in)`, for ReLU.
pub fn he_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let a = (6.0 / rows as f64).sqrt();
    random_uniform(rows, cols, -a, a, rng)
}

/// Uniform random matrix in `[lo, hi)`.
pub fn random_uniform(rows: usize, cols: usize, lo: f64, hi: f64, rng: &mut StdRng) -> Matrix {
    let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds_and_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = xavier_uniform(64, 64, &mut rng);
        let a = (6.0 / 128.0f64).sqrt();
        assert!(w.as_slice().iter().all(|&x| x > -a && x < a));
        // Mean near zero, variance near a^2/3.
        let mean = w.sum() / 4096.0;
        assert!(mean.abs() < 0.02, "mean {mean}");
        let var = w.as_slice().iter().map(|x| (x - mean).powi(2)).sum::<f64>() / 4096.0;
        assert!((var - a * a / 3.0).abs() < 0.002, "var {var}");
    }

    #[test]
    fn he_wider_than_xavier_for_same_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = xavier_uniform(32, 96, &mut rng);
        let h = he_uniform(32, 96, &mut rng);
        let max_x = x.as_slice().iter().cloned().fold(0.0, f64::max);
        let max_h = h.as_slice().iter().cloned().fold(0.0, f64::max);
        assert!(max_h > max_x);
    }

    #[test]
    fn seeded_init_is_reproducible() {
        let a = xavier_uniform(8, 8, &mut StdRng::seed_from_u64(7));
        let b = xavier_uniform(8, 8, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = xavier_uniform(8, 8, &mut StdRng::seed_from_u64(8));
        assert_ne!(a, c);
    }
}

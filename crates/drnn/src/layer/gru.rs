//! Gated Recurrent Unit layer.
//!
//! ```text
//! z = σ(x·Wxz + h·Whz + bz)          update gate
//! r = σ(x·Wxr + h·Whr + br)          reset gate
//! n = tanh(x·Wxn + (r ∘ h)·Whn + bn) candidate
//! h' = (1 - z) ∘ n + z ∘ h
//! ```
//!
//! `Wx` is fused as `[z | r | n]` (I × 3H); the hidden weights are split
//! into `Whzr` (H × 2H) and `Whn` (H × H) because the candidate gate mixes
//! the reset gate in before its GEMM.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::activation::{dsigmoid_from_output, dtanh_from_output, sigmoid};
use crate::init::xavier_uniform;
use crate::matrix::Matrix;

#[derive(Debug, Clone)]
struct StepCache {
    x: Matrix,
    h_prev: Matrix,
    z: Matrix,
    r: Matrix,
    n: Matrix,
    rh: Matrix,
}

/// Opaque forward cache consumed by [`GruLayer::backward`].
#[derive(Debug, Default)]
pub struct GruCache {
    steps: Vec<StepCache>,
    batch: usize,
}

/// A GRU layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GruLayer {
    input: usize,
    hidden: usize,
    wx: Matrix,
    whzr: Matrix,
    whn: Matrix,
    b: Matrix,
    #[serde(skip)]
    gwx: Option<Matrix>,
    #[serde(skip)]
    gwhzr: Option<Matrix>,
    #[serde(skip)]
    gwhn: Option<Matrix>,
    #[serde(skip)]
    gb: Option<Matrix>,
}

impl GruLayer {
    /// New layer with Xavier-initialized weights.
    pub fn new(input: usize, hidden: usize, rng: &mut StdRng) -> Self {
        GruLayer {
            input,
            hidden,
            wx: xavier_uniform(input, 3 * hidden, rng),
            whzr: xavier_uniform(hidden, 2 * hidden, rng),
            whn: xavier_uniform(hidden, hidden, rng),
            b: Matrix::zeros(1, 3 * hidden),
            gwx: None,
            gwhzr: None,
            gwhn: None,
            gb: None,
        }
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.input
    }

    /// Hidden width.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.input * 3 * self.hidden + self.hidden * 3 * self.hidden + 3 * self.hidden
    }

    fn ensure_grads(&mut self) {
        if self.gwx.is_none() {
            self.gwx = Some(Matrix::zeros(self.input, 3 * self.hidden));
            self.gwhzr = Some(Matrix::zeros(self.hidden, 2 * self.hidden));
            self.gwhn = Some(Matrix::zeros(self.hidden, self.hidden));
            self.gb = Some(Matrix::zeros(1, 3 * self.hidden));
        }
    }

    /// Visits `(param, grad)` pairs in a stable order.
    pub fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        self.ensure_grads();
        f(&mut self.wx, self.gwx.as_mut().unwrap());
        f(&mut self.whzr, self.gwhzr.as_mut().unwrap());
        f(&mut self.whn, self.gwhn.as_mut().unwrap());
        f(&mut self.b, self.gb.as_mut().unwrap());
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.ensure_grads();
        self.gwx.as_mut().unwrap().zero_in_place();
        self.gwhzr.as_mut().unwrap().zero_in_place();
        self.gwhn.as_mut().unwrap().zero_in_place();
        self.gb.as_mut().unwrap().zero_in_place();
    }

    /// Runs the layer over a sequence from zero state; returns hidden states
    /// and the backward cache.
    pub fn forward(&self, xs: &[Matrix]) -> (Vec<Matrix>, GruCache) {
        assert!(!xs.is_empty(), "empty sequence");
        let batch = xs[0].rows();
        let h_dim = self.hidden;
        let mut h = Matrix::zeros(batch, h_dim);
        let mut hs = Vec::with_capacity(xs.len());
        let mut cache = GruCache {
            steps: Vec::with_capacity(xs.len()),
            batch,
        };

        for x in xs {
            assert_eq!(x.cols(), self.input, "input width mismatch");
            let xpart = {
                let mut a = x.matmul(&self.wx);
                a.add_row_in_place(self.b.row(0));
                a
            };
            let hzr = h.matmul(&self.whzr); // B × 2H

            let mut z = xpart.cols_slice(0, h_dim);
            z.add_in_place(&hzr.cols_slice(0, h_dim));
            z.map_in_place(sigmoid);

            let mut r = xpart.cols_slice(h_dim, 2 * h_dim);
            r.add_in_place(&hzr.cols_slice(h_dim, 2 * h_dim));
            r.map_in_place(sigmoid);

            let rh = r.hadamard(&h);
            let mut n = xpart.cols_slice(2 * h_dim, 3 * h_dim);
            n.add_in_place(&rh.matmul(&self.whn));
            n.map_in_place(f64::tanh);

            // h' = (1-z)∘n + z∘h
            let mut h_new = Matrix::zeros(batch, h_dim);
            for idx in 0..batch * h_dim {
                let zv = z.as_slice()[idx];
                h_new.as_mut_slice()[idx] = (1.0 - zv) * n.as_slice()[idx] + zv * h.as_slice()[idx];
            }

            cache.steps.push(StepCache {
                x: x.clone(),
                h_prev: h,
                z,
                r,
                n,
                rh,
            });
            h = h_new.clone();
            hs.push(h_new);
        }
        (hs, cache)
    }

    /// Backpropagation through time; returns `∂L/∂x_t` per step.
    pub fn backward(&mut self, cache: &GruCache, dhs: &[Matrix]) -> Vec<Matrix> {
        assert_eq!(cache.steps.len(), dhs.len());
        self.ensure_grads();
        let h_dim = self.hidden;
        let batch = cache.batch;
        let mut dh_next = Matrix::zeros(batch, h_dim);
        let mut dxs = vec![Matrix::zeros(batch, self.input); dhs.len()];

        for t in (0..cache.steps.len()).rev() {
            let s = &cache.steps[t];
            let mut dh = dhs[t].clone();
            dh.add_in_place(&dh_next);

            // h' = (1-z)n + z h_prev
            // dz = dh ∘ (h_prev - n); dn = dh ∘ (1-z); dh_prev = dh ∘ z (plus more below)
            let mut dz = Matrix::zeros(batch, h_dim);
            let mut dn = Matrix::zeros(batch, h_dim);
            let mut dh_prev = Matrix::zeros(batch, h_dim);
            for idx in 0..batch * h_dim {
                let dhv = dh.as_slice()[idx];
                let zv = s.z.as_slice()[idx];
                dz.as_mut_slice()[idx] = dhv * (s.h_prev.as_slice()[idx] - s.n.as_slice()[idx]);
                dn.as_mut_slice()[idx] = dhv * (1.0 - zv);
                dh_prev.as_mut_slice()[idx] = dhv * zv;
            }

            // Candidate gate: a_n = x·Wxn + rh·Whn + bn ; n = tanh(a_n)
            let mut da_n = dn;
            for (v, n) in da_n.as_mut_slice().iter_mut().zip(s.n.as_slice()) {
                *v *= dtanh_from_output(*n);
            }
            let drh = da_n.matmul(&self.whn.transpose());
            self.gwhn
                .as_mut()
                .unwrap()
                .add_in_place(&s.rh.transpose().matmul(&da_n));
            // rh = r ∘ h_prev
            let dr = drh.hadamard(&s.h_prev);
            dh_prev.add_in_place(&drh.hadamard(&s.r));

            // Sigmoid gates.
            let mut da_z = dz;
            for (v, z) in da_z.as_mut_slice().iter_mut().zip(s.z.as_slice()) {
                *v *= dsigmoid_from_output(*z);
            }
            let mut da_r = dr;
            for (v, r) in da_r.as_mut_slice().iter_mut().zip(s.r.as_slice()) {
                *v *= dsigmoid_from_output(*r);
            }

            // Fused [da_z | da_r | da_n] for the x-side parameters.
            let mut da = Matrix::zeros(batch, 3 * h_dim);
            da.set_cols(0, &da_z);
            da.set_cols(h_dim, &da_r);
            da.set_cols(2 * h_dim, &da_n);
            self.gwx
                .as_mut()
                .unwrap()
                .add_in_place(&s.x.transpose().matmul(&da));
            self.gb.as_mut().unwrap().add_in_place(&da.col_sums());
            dxs[t] = da.matmul(&self.wx.transpose());

            // h-side z/r parameters.
            let mut da_zr = Matrix::zeros(batch, 2 * h_dim);
            da_zr.set_cols(0, &da_z);
            da_zr.set_cols(h_dim, &da_r);
            self.gwhzr
                .as_mut()
                .unwrap()
                .add_in_place(&s.h_prev.transpose().matmul(&da_zr));
            dh_prev.add_in_place(&da_zr.matmul(&self.whzr.transpose()));

            dh_next = dh_prev;
        }
        dxs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn make(input: usize, hidden: usize, seed: u64) -> GruLayer {
        GruLayer::new(input, hidden, &mut StdRng::seed_from_u64(seed))
    }

    fn seq(t: usize, b: usize, i: usize) -> Vec<Matrix> {
        (0..t)
            .map(|step| {
                Matrix::from_vec(
                    b,
                    i,
                    (0..b * i)
                        .map(|k| ((step * 5 + k * 7) % 13) as f64 / 13.0 - 0.5)
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn forward_shapes() {
        let layer = make(4, 6, 1);
        let xs = seq(3, 2, 4);
        let (hs, cache) = layer.forward(&xs);
        assert_eq!(hs.len(), 3);
        assert_eq!(hs[2].shape(), (2, 6));
        assert_eq!(cache.steps.len(), 3);
        assert_eq!(layer.param_count(), 4 * 18 + 6 * 18 + 18);
    }

    #[test]
    fn hidden_state_interpolates_between_prev_and_candidate() {
        // With z forced toward 1 (huge update-gate bias), h' ≈ h_prev = 0.
        let mut layer = make(2, 3, 2);
        for c in 0..3 {
            layer.b.set(0, c, 50.0); // z-block bias → z ≈ 1
        }
        let xs = seq(1, 1, 2);
        let (hs, _) = layer.forward(&xs);
        assert!(hs[0].as_slice().iter().all(|v| v.abs() < 1e-6));
    }

    #[test]
    fn bptt_gradients_match_finite_differences() {
        let mut layer = make(3, 4, 5);
        let xs = seq(4, 2, 3);
        let loss = |l: &GruLayer| -> f64 {
            let (hs, _) = l.forward(&xs);
            hs.iter().map(Matrix::sum).sum()
        };
        let (hs, cache) = layer.forward(&xs);
        let dhs: Vec<Matrix> = hs
            .iter()
            .map(|h| Matrix::full(h.rows(), h.cols(), 1.0))
            .collect();
        layer.zero_grads();
        layer.backward(&cache, &dhs);

        let grads: Vec<Matrix> = {
            let mut out = Vec::new();
            layer.for_each_param(&mut |_p, g| out.push(g.clone()));
            out
        };
        let eps = 1e-5;
        for (pi, analytic) in grads.iter().enumerate() {
            let len = analytic.as_slice().len();
            for k in [0usize, len / 2, len - 1] {
                let base = {
                    let mut params = Vec::new();
                    layer.for_each_param(&mut |p, _| params.push(p as *mut Matrix));
                    params[pi]
                };
                let orig = unsafe { (*base).as_slice()[k] };
                unsafe { (*base).as_mut_slice()[k] = orig + eps };
                let lp = loss(&layer);
                unsafe { (*base).as_mut_slice()[k] = orig - eps };
                let lm = loss(&layer);
                unsafe { (*base).as_mut_slice()[k] = orig };
                let numeric = (lp - lm) / (2.0 * eps);
                let ana = analytic.as_slice()[k];
                assert!(
                    (numeric - ana).abs() < 1e-4 * (1.0 + numeric.abs().max(ana.abs())),
                    "param {pi} coord {k}: numeric {numeric} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn dx_matches_finite_differences() {
        let mut layer = make(2, 3, 7);
        let mut xs = seq(3, 1, 2);
        let (hs, cache) = layer.forward(&xs);
        let dhs: Vec<Matrix> = hs
            .iter()
            .map(|h| Matrix::full(h.rows(), h.cols(), 1.0))
            .collect();
        layer.zero_grads();
        let dxs = layer.backward(&cache, &dhs);
        let eps = 1e-5;
        for t in 0..3 {
            for k in 0..2 {
                let orig = xs[t].as_slice()[k];
                xs[t].as_mut_slice()[k] = orig + eps;
                let lp: f64 = layer.forward(&xs).0.iter().map(Matrix::sum).sum();
                xs[t].as_mut_slice()[k] = orig - eps;
                let lm: f64 = layer.forward(&xs).0.iter().map(Matrix::sum).sum();
                xs[t].as_mut_slice()[k] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let ana = dxs[t].as_slice()[k];
                assert!(
                    (numeric - ana).abs() < 1e-6 + 1e-4 * numeric.abs(),
                    "dx[{t}][{k}]: {numeric} vs {ana}"
                );
            }
        }
    }

    #[test]
    fn serde_round_trip() {
        let layer = make(3, 4, 9);
        let json = serde_json::to_string(&layer).unwrap();
        let back: GruLayer = serde_json::from_str(&json).unwrap();
        let xs = seq(2, 1, 3);
        assert_eq!(layer.forward(&xs).0.last(), back.forward(&xs).0.last());
    }
}

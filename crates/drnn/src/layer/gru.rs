//! Gated Recurrent Unit layer.
//!
//! ```text
//! z = σ(x·Wxz + h·Whz + bz)          update gate
//! r = σ(x·Wxr + h·Whr + br)          reset gate
//! n = tanh(x·Wxn + (r ∘ h)·Whn + bn) candidate
//! h' = (1 - z) ∘ n + z ∘ h
//! ```
//!
//! `Wx` is fused as `[z | r | n]` (I × 3H); the hidden weights are split
//! into `Whzr` (H × 2H) and `Whn` (H × H) because the candidate gate mixes
//! the reset gate in before its GEMM.
//!
//! Like the LSTM, the hot path activates gates in place on the fused
//! preactivation buffer, reuses every per-step buffer across batches, and
//! backpropagates with the transpose-free GEMM variants — the only copies
//! left are the cheap block moves that assemble the fused `[z|r|n]` /
//! `[z|r]` gradient buffers for the fused weight GEMMs.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::activation::{dsigmoid_from_output, dtanh_from_output, sigmoid_slice, tanh_slice};
use crate::init::xavier_uniform;
use crate::layer::ensure_seq;
use crate::matrix::Matrix;

/// Reusable forward cache consumed by [`GruLayer::backward`].  Per step:
/// the **activated** fused gate block `[z|r|n]` (`B × 3H`) and the reset
/// hidden product `r ∘ h_prev` (`B × H`).  `hzr`/`hn` are forward scratch
/// (hidden-side GEMM outputs) that ride along so `forward(&self)` stays
/// allocation-free on reuse.
#[derive(Debug, Clone, Default)]
pub struct GruCache {
    gates: Vec<Matrix>,
    rh: Vec<Matrix>,
    hzr: Matrix,
    hn: Matrix,
    len: usize,
    batch: usize,
}

impl GruCache {
    /// Number of cached steps.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no steps are cached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Reusable backward scratch.
#[derive(Debug, Clone, Default)]
struct GruScratch {
    dh: Matrix,
    dh_next: Matrix,
    da: Matrix,
    da_n: Matrix,
    da_zr: Matrix,
    drh: Matrix,
}

/// A GRU layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GruLayer {
    input: usize,
    hidden: usize,
    wx: Matrix,
    whzr: Matrix,
    whn: Matrix,
    b: Matrix,
    #[serde(skip)]
    gwx: Option<Matrix>,
    #[serde(skip)]
    gwhzr: Option<Matrix>,
    #[serde(skip)]
    gwhn: Option<Matrix>,
    #[serde(skip)]
    gb: Option<Matrix>,
    #[serde(skip, default)]
    scratch: GruScratch,
}

impl GruLayer {
    /// New layer with Xavier-initialized weights.
    pub fn new(input: usize, hidden: usize, rng: &mut StdRng) -> Self {
        GruLayer {
            input,
            hidden,
            wx: xavier_uniform(input, 3 * hidden, rng),
            whzr: xavier_uniform(hidden, 2 * hidden, rng),
            whn: xavier_uniform(hidden, hidden, rng),
            b: Matrix::zeros(1, 3 * hidden),
            gwx: None,
            gwhzr: None,
            gwhn: None,
            gb: None,
            scratch: GruScratch::default(),
        }
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.input
    }

    /// Hidden width.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.input * 3 * self.hidden + self.hidden * 3 * self.hidden + 3 * self.hidden
    }

    fn ensure_grads(&mut self) {
        if self.gwx.is_none() {
            self.gwx = Some(Matrix::zeros(self.input, 3 * self.hidden));
            self.gwhzr = Some(Matrix::zeros(self.hidden, 2 * self.hidden));
            self.gwhn = Some(Matrix::zeros(self.hidden, self.hidden));
            self.gb = Some(Matrix::zeros(1, 3 * self.hidden));
        }
    }

    /// Visits `(param, grad)` pairs in a stable order.
    pub fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        self.ensure_grads();
        f(&mut self.wx, self.gwx.as_mut().unwrap());
        f(&mut self.whzr, self.gwhzr.as_mut().unwrap());
        f(&mut self.whn, self.gwhn.as_mut().unwrap());
        f(&mut self.b, self.gb.as_mut().unwrap());
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.ensure_grads();
        self.gwx.as_mut().unwrap().zero_in_place();
        self.gwhzr.as_mut().unwrap().zero_in_place();
        self.gwhn.as_mut().unwrap().zero_in_place();
        self.gb.as_mut().unwrap().zero_in_place();
    }

    /// Runs the layer over a sequence from zero state; returns hidden states
    /// and the backward cache.  Allocating wrapper over
    /// [`forward_into`](Self::forward_into).
    pub fn forward(&self, xs: &[Matrix]) -> (Vec<Matrix>, GruCache) {
        let mut hs = Vec::new();
        let mut cache = GruCache::default();
        self.forward_into(xs, &mut hs, &mut cache);
        (hs, cache)
    }

    /// Forward pass into caller-owned, reusable buffers.
    pub fn forward_into(&self, xs: &[Matrix], hs: &mut Vec<Matrix>, cache: &mut GruCache) {
        assert!(!xs.is_empty(), "empty sequence");
        let batch = xs[0].rows();
        let h_dim = self.hidden;
        let steps = xs.len();
        ensure_seq(hs, steps);
        ensure_seq(&mut cache.gates, steps);
        ensure_seq(&mut cache.rh, steps);
        cache.len = steps;
        cache.batch = batch;

        for (t, x) in xs.iter().enumerate() {
            assert_eq!(x.cols(), self.input, "input width mismatch");
            assert_eq!(x.rows(), batch, "batch size changed mid-sequence");

            // a = bias ⊕ x·Wx, then the hidden-side contributions land on
            // the [z|r] and n column blocks separately.
            let a = &mut cache.gates[t];
            a.resize_uninit(batch, 3 * h_dim);
            for r in 0..batch {
                a.row_mut(r).copy_from_slice(self.b.row(0));
            }
            x.matmul_add_into(&self.wx, a);

            if t > 0 {
                // h_0 = 0: both hidden-side GEMMs vanish at t = 0.
                let h_prev = &hs[t - 1];
                self.hzr_add(h_prev, a, &mut cache.hzr, batch, h_dim);
            }

            // Activate z and r in place: σ on the [z|r] block.
            for r in 0..batch {
                sigmoid_slice(&mut a.row_mut(r)[..2 * h_dim]);
            }

            // rh = r ∘ h_prev, then its GEMM lands on the n block.
            let rh_t = &mut cache.rh[t];
            rh_t.resize_uninit(batch, h_dim);
            if t > 0 {
                let h_prev = &hs[t - 1];
                for r in 0..batch {
                    let arow = a.row(r);
                    let hrow = h_prev.row(r);
                    let rhrow = rh_t.row_mut(r);
                    for j in 0..h_dim {
                        rhrow[j] = arow[h_dim + j] * hrow[j];
                    }
                }
                rh_t.matmul_into(&self.whn, &mut cache.hn);
                for r in 0..batch {
                    let hnrow = cache.hn.row(r);
                    let arow = &mut a.row_mut(r)[2 * h_dim..];
                    for j in 0..h_dim {
                        arow[j] += hnrow[j];
                    }
                }
            } else {
                rh_t.zero_in_place();
            }

            // Activate the candidate: tanh on the n block.
            for r in 0..batch {
                tanh_slice(&mut a.row_mut(r)[2 * h_dim..]);
            }

            // h' = (1-z) ∘ n + z ∘ h_prev
            let (prev_hs, cur_hs) = hs.split_at_mut(t);
            let h_t = &mut cur_hs[0];
            h_t.resize_uninit(batch, h_dim);
            for r in 0..batch {
                let arow = a.row(r);
                let hrow = h_t.row_mut(r);
                if t > 0 {
                    let hprev = prev_hs[t - 1].row(r);
                    for j in 0..h_dim {
                        let z = arow[j];
                        hrow[j] = (1.0 - z) * arow[2 * h_dim + j] + z * hprev[j];
                    }
                } else {
                    for j in 0..h_dim {
                        hrow[j] = (1.0 - arow[j]) * arow[2 * h_dim + j];
                    }
                }
            }
        }
    }

    /// `a[:, 0..2H] += h_prev · Whzr`, staged through the `hzr` scratch
    /// (GEMMs write whole rows; the fused gate buffer is 3H wide).
    fn hzr_add(&self, h_prev: &Matrix, a: &mut Matrix, hzr: &mut Matrix, batch: usize, h: usize) {
        h_prev.matmul_into(&self.whzr, hzr);
        for r in 0..batch {
            let src = hzr.row(r);
            let dst = &mut a.row_mut(r)[..2 * h];
            for j in 0..2 * h {
                dst[j] += src[j];
            }
        }
    }

    /// Backpropagation through time; returns `∂L/∂x_t` per step.  `xs`/`hs`
    /// are the forward inputs/outputs.  Allocating wrapper over
    /// [`backward_into`](Self::backward_into).
    pub fn backward(
        &mut self,
        xs: &[Matrix],
        hs: &[Matrix],
        cache: &GruCache,
        dhs: &[Matrix],
    ) -> Vec<Matrix> {
        let mut dxs = Vec::new();
        self.backward_into(xs, hs, cache, dhs, &mut dxs);
        dxs
    }

    /// BPTT into a caller-owned `dxs` buffer; scratch is reused across
    /// calls.
    pub fn backward_into(
        &mut self,
        xs: &[Matrix],
        hs: &[Matrix],
        cache: &GruCache,
        dhs: &[Matrix],
        dxs: &mut Vec<Matrix>,
    ) {
        assert_eq!(cache.len, dhs.len(), "cache/grad length mismatch");
        assert_eq!(cache.len, xs.len(), "cache/input length mismatch");
        assert_eq!(cache.len, hs.len(), "cache/output length mismatch");
        self.ensure_grads();
        let h_dim = self.hidden;
        let batch = cache.batch;
        ensure_seq(dxs, cache.len);

        let s = &mut self.scratch;
        s.dh_next.resize_zeroed(batch, h_dim);

        for t in (0..cache.len).rev() {
            let gates = &cache.gates[t];

            // dh = dhs[t] + dh_next
            s.dh.copy_from(&dhs[t]);
            s.dh.add_in_place(&s.dh_next);

            // h' = (1-z)∘n + z∘h_prev:
            //   dz = dh ∘ (h_prev − n),  dn = dh ∘ (1 − z),
            //   dh_prev ← dh ∘ z  (more contributions accumulate below).
            s.da.resize_uninit(batch, 3 * h_dim);
            s.da_n.resize_uninit(batch, h_dim);
            for r in 0..batch {
                let arow = gates.row(r);
                let dhrow = s.dh.row(r);
                let darow = s.da.row_mut(r);
                let danrow = s.da_n.row_mut(r);
                let hprev = if t > 0 { Some(hs[t - 1].row(r)) } else { None };
                let dhnrow = s.dh_next.row_mut(r);
                for j in 0..h_dim {
                    let (z, n) = (arow[j], arow[2 * h_dim + j]);
                    let hp = hprev.map_or(0.0, |h| h[j]);
                    darow[j] = dhrow[j] * (hp - n) * dsigmoid_from_output(z);
                    danrow[j] = dhrow[j] * (1.0 - z) * dtanh_from_output(n);
                    dhnrow[j] = dhrow[j] * z;
                }
                darow[2 * h_dim..].copy_from_slice(danrow);
            }

            if t > 0 {
                // Candidate gate: drh = da_n·Whnᵀ; gWhn += rhᵀ·da_n.
                s.da_n.matmul_a_bt_into(&self.whn, &mut s.drh);
                cache.rh[t].matmul_at_b_into(&s.da_n, self.gwhn.as_mut().unwrap());

                // rh = r ∘ h_prev: dr = drh ∘ h_prev, dh_prev += drh ∘ r.
                s.da_zr.resize_uninit(batch, 2 * h_dim);
                for r in 0..batch {
                    let arow = gates.row(r);
                    let drhrow = s.drh.row(r);
                    let hprev = hs[t - 1].row(r);
                    let darow = s.da.row_mut(r);
                    let dhnrow = s.dh_next.row_mut(r);
                    for j in 0..h_dim {
                        let rg = arow[h_dim + j];
                        darow[h_dim + j] = drhrow[j] * hprev[j] * dsigmoid_from_output(rg);
                        dhnrow[j] += drhrow[j] * rg;
                    }
                    s.da_zr.row_mut(r).copy_from_slice(&darow[..2 * h_dim]);
                }

                // h-side z/r parameters and state gradient.
                hs[t - 1].matmul_at_b_into(&s.da_zr, self.gwhzr.as_mut().unwrap());
                s.da_zr.matmul_a_bt_add_into(&self.whzr, &mut s.dh_next);
            } else {
                // h_prev = 0: dr ≡ 0 and every h-side product vanishes.
                for r in 0..batch {
                    s.da.row_mut(r)[h_dim..2 * h_dim].fill(0.0);
                }
            }

            // x-side parameters and input gradient from the fused block.
            xs[t].matmul_at_b_into(&s.da, self.gwx.as_mut().unwrap());
            s.da.col_sums_add_into(self.gb.as_mut().unwrap());
            s.da.matmul_a_bt_into(&self.wx, &mut dxs[t]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn make(input: usize, hidden: usize, seed: u64) -> GruLayer {
        GruLayer::new(input, hidden, &mut StdRng::seed_from_u64(seed))
    }

    fn seq(t: usize, b: usize, i: usize) -> Vec<Matrix> {
        (0..t)
            .map(|step| {
                Matrix::from_vec(
                    b,
                    i,
                    (0..b * i)
                        .map(|k| ((step * 5 + k * 7) % 13) as f64 / 13.0 - 0.5)
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn forward_shapes() {
        let layer = make(4, 6, 1);
        let xs = seq(3, 2, 4);
        let (hs, cache) = layer.forward(&xs);
        assert_eq!(hs.len(), 3);
        assert_eq!(hs[2].shape(), (2, 6));
        assert_eq!(cache.len(), 3);
        assert_eq!(layer.param_count(), 4 * 18 + 6 * 18 + 18);
    }

    #[test]
    fn hidden_state_interpolates_between_prev_and_candidate() {
        // With z forced toward 1 (huge update-gate bias), h' ≈ h_prev = 0.
        let mut layer = make(2, 3, 2);
        for c in 0..3 {
            layer.b.set(0, c, 50.0); // z-block bias → z ≈ 1
        }
        let xs = seq(1, 1, 2);
        let (hs, _) = layer.forward(&xs);
        assert!(hs[0].as_slice().iter().all(|v| v.abs() < 1e-6));
    }

    #[test]
    fn reused_buffers_match_fresh_forward() {
        let layer = make(3, 4, 8);
        let mut hs = Vec::new();
        let mut cache = GruCache::default();
        for (t, b) in [(3usize, 2usize), (1, 1), (4, 3)] {
            let xs = seq(t, b, 3);
            layer.forward_into(&xs, &mut hs, &mut cache);
            let (fresh, _) = layer.forward(&xs);
            assert_eq!(hs.len(), fresh.len());
            for (a, b) in hs.iter().zip(&fresh) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn bptt_gradients_match_finite_differences() {
        let mut layer = make(3, 4, 5);
        let xs = seq(4, 2, 3);
        let loss = |l: &GruLayer| -> f64 {
            let (hs, _) = l.forward(&xs);
            hs.iter().map(Matrix::sum).sum()
        };
        let (hs, cache) = layer.forward(&xs);
        let dhs: Vec<Matrix> = hs
            .iter()
            .map(|h| Matrix::full(h.rows(), h.cols(), 1.0))
            .collect();
        layer.zero_grads();
        layer.backward(&xs, &hs, &cache, &dhs);

        let grads: Vec<Matrix> = {
            let mut out = Vec::new();
            layer.for_each_param(&mut |_p, g| out.push(g.clone()));
            out
        };
        let eps = 1e-5;
        for (pi, analytic) in grads.iter().enumerate() {
            let len = analytic.as_slice().len();
            for k in [0usize, len / 2, len - 1] {
                let base = {
                    let mut params = Vec::new();
                    layer.for_each_param(&mut |p, _| params.push(p as *mut Matrix));
                    params[pi]
                };
                let orig = unsafe { (*base).as_slice()[k] };
                unsafe { (*base).as_mut_slice()[k] = orig + eps };
                let lp = loss(&layer);
                unsafe { (*base).as_mut_slice()[k] = orig - eps };
                let lm = loss(&layer);
                unsafe { (*base).as_mut_slice()[k] = orig };
                let numeric = (lp - lm) / (2.0 * eps);
                let ana = analytic.as_slice()[k];
                assert!(
                    (numeric - ana).abs() < 1e-4 * (1.0 + numeric.abs().max(ana.abs())),
                    "param {pi} coord {k}: numeric {numeric} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn dx_matches_finite_differences() {
        let mut layer = make(2, 3, 7);
        let mut xs = seq(3, 1, 2);
        let (hs, cache) = layer.forward(&xs);
        let dhs: Vec<Matrix> = hs
            .iter()
            .map(|h| Matrix::full(h.rows(), h.cols(), 1.0))
            .collect();
        layer.zero_grads();
        let dxs = layer.backward(&xs, &hs, &cache, &dhs);
        let eps = 1e-5;
        for t in 0..3 {
            for k in 0..2 {
                let orig = xs[t].as_slice()[k];
                xs[t].as_mut_slice()[k] = orig + eps;
                let lp: f64 = layer.forward(&xs).0.iter().map(Matrix::sum).sum();
                xs[t].as_mut_slice()[k] = orig - eps;
                let lm: f64 = layer.forward(&xs).0.iter().map(Matrix::sum).sum();
                xs[t].as_mut_slice()[k] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let ana = dxs[t].as_slice()[k];
                assert!(
                    (numeric - ana).abs() < 1e-6 + 1e-4 * numeric.abs(),
                    "dx[{t}][{k}]: {numeric} vs {ana}"
                );
            }
        }
    }

    #[test]
    fn serde_round_trip() {
        let layer = make(3, 4, 9);
        let json = serde_json::to_string(&layer).unwrap();
        let back: GruLayer = serde_json::from_str(&json).unwrap();
        let xs = seq(2, 1, 3);
        assert_eq!(layer.forward(&xs).0.last(), back.forward(&xs).0.last());
    }
}

//! Network layers: LSTM, GRU and dense.

pub mod dense;
pub mod gru;
pub mod lstm;

pub use dense::{DenseActivation, DenseCache, DenseLayer};
pub use gru::{GruCache, GruLayer};
pub use lstm::{LstmCache, LstmLayer};

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;

/// Resizes a per-step matrix buffer to exactly `n` entries, keeping the
/// allocations of the entries that survive (each step then reshapes its
/// matrix in place via `resize_uninit`).
pub(crate) fn ensure_seq(v: &mut Vec<Matrix>, n: usize) {
    v.resize_with(n, Matrix::default);
}

/// Which recurrent cell a stacked layer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellKind {
    /// Long Short-Term Memory.
    Lstm,
    /// Gated Recurrent Unit.
    Gru,
}

/// A recurrent layer of either cell kind, presenting one interface to the
/// stacked model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Recurrent {
    /// LSTM variant.
    Lstm(LstmLayer),
    /// GRU variant.
    Gru(GruLayer),
}

/// Forward cache of a [`Recurrent`] layer.
#[derive(Debug, Clone)]
pub enum RecurrentCache {
    /// LSTM cache.
    Lstm(LstmCache),
    /// GRU cache.
    Gru(GruCache),
}

impl Recurrent {
    /// Builds a recurrent layer of the requested kind.
    pub fn new(kind: CellKind, input: usize, hidden: usize, rng: &mut StdRng) -> Self {
        match kind {
            CellKind::Lstm => Recurrent::Lstm(LstmLayer::new(input, hidden, rng)),
            CellKind::Gru => Recurrent::Gru(GruLayer::new(input, hidden, rng)),
        }
    }

    /// Hidden width.
    pub fn hidden_size(&self) -> usize {
        match self {
            Recurrent::Lstm(l) => l.hidden_size(),
            Recurrent::Gru(l) => l.hidden_size(),
        }
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        match self {
            Recurrent::Lstm(l) => l.input_size(),
            Recurrent::Gru(l) => l.input_size(),
        }
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        match self {
            Recurrent::Lstm(l) => l.param_count(),
            Recurrent::Gru(l) => l.param_count(),
        }
    }

    /// Sequence forward pass.  Allocating wrapper over
    /// [`forward_into`](Self::forward_into).
    pub fn forward(&self, xs: &[Matrix]) -> (Vec<Matrix>, RecurrentCache) {
        match self {
            Recurrent::Lstm(l) => {
                let (hs, c) = l.forward(xs);
                (hs, RecurrentCache::Lstm(c))
            }
            Recurrent::Gru(l) => {
                let (hs, c) = l.forward(xs);
                (hs, RecurrentCache::Gru(c))
            }
        }
    }

    /// Sequence forward pass into caller-owned, reusable buffers.  `cache`
    /// is re-seeded to the matching variant if its kind differs.
    pub fn forward_into(&self, xs: &[Matrix], hs: &mut Vec<Matrix>, cache: &mut RecurrentCache) {
        match self {
            Recurrent::Lstm(l) => {
                if !matches!(cache, RecurrentCache::Lstm(_)) {
                    *cache = RecurrentCache::Lstm(LstmCache::default());
                }
                let RecurrentCache::Lstm(c) = cache else {
                    unreachable!()
                };
                l.forward_into(xs, hs, c);
            }
            Recurrent::Gru(l) => {
                if !matches!(cache, RecurrentCache::Gru(_)) {
                    *cache = RecurrentCache::Gru(GruCache::default());
                }
                let RecurrentCache::Gru(c) = cache else {
                    unreachable!()
                };
                l.forward_into(xs, hs, c);
            }
        }
    }

    /// BPTT backward pass.  `xs`/`hs` are the forward inputs and outputs
    /// (caches no longer duplicate them).
    pub fn backward(
        &mut self,
        xs: &[Matrix],
        hs: &[Matrix],
        cache: &RecurrentCache,
        dhs: &[Matrix],
    ) -> Vec<Matrix> {
        let mut dxs = Vec::new();
        self.backward_into(xs, hs, cache, dhs, &mut dxs);
        dxs
    }

    /// BPTT backward pass into a caller-owned `dxs` buffer.
    pub fn backward_into(
        &mut self,
        xs: &[Matrix],
        hs: &[Matrix],
        cache: &RecurrentCache,
        dhs: &[Matrix],
        dxs: &mut Vec<Matrix>,
    ) {
        match (self, cache) {
            (Recurrent::Lstm(l), RecurrentCache::Lstm(c)) => l.backward_into(xs, hs, c, dhs, dxs),
            (Recurrent::Gru(l), RecurrentCache::Gru(c)) => l.backward_into(xs, hs, c, dhs, dxs),
            _ => panic!("cache kind does not match layer kind"),
        }
    }

    /// Visits `(param, grad)` pairs.
    pub fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        match self {
            Recurrent::Lstm(l) => l.for_each_param(f),
            Recurrent::Gru(l) => l.for_each_param(f),
        }
    }

    /// Zeroes gradients.
    pub fn zero_grads(&mut self) {
        match self {
            Recurrent::Lstm(l) => l.zero_grads(),
            Recurrent::Gru(l) => l.zero_grads(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn wrapper_dispatches_both_kinds() {
        let mut rng = StdRng::seed_from_u64(1);
        for kind in [CellKind::Lstm, CellKind::Gru] {
            let mut layer = Recurrent::new(kind, 3, 4, &mut rng);
            assert_eq!(layer.input_size(), 3);
            assert_eq!(layer.hidden_size(), 4);
            assert!(layer.param_count() > 0);
            let xs = vec![Matrix::zeros(2, 3), Matrix::zeros(2, 3)];
            let (hs, cache) = layer.forward(&xs);
            assert_eq!(hs.len(), 2);
            layer.zero_grads();
            let dhs = vec![Matrix::zeros(2, 4), Matrix::zeros(2, 4)];
            let dxs = layer.backward(&xs, &hs, &cache, &dhs);
            assert_eq!(dxs[0].shape(), (2, 3));
        }
    }

    #[test]
    fn forward_into_reseeds_mismatched_cache_kind() {
        let mut rng = StdRng::seed_from_u64(3);
        let lstm = Recurrent::new(CellKind::Lstm, 2, 3, &mut rng);
        let gru = Recurrent::new(CellKind::Gru, 2, 3, &mut rng);
        let xs = vec![Matrix::zeros(1, 2)];
        let mut hs = Vec::new();
        let mut cache = RecurrentCache::Gru(GruCache::default());
        lstm.forward_into(&xs, &mut hs, &mut cache);
        assert!(matches!(cache, RecurrentCache::Lstm(_)));
        gru.forward_into(&xs, &mut hs, &mut cache);
        assert!(matches!(cache, RecurrentCache::Gru(_)));
    }

    #[test]
    #[should_panic(expected = "cache kind does not match")]
    fn mismatched_cache_panics() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lstm = Recurrent::new(CellKind::Lstm, 2, 2, &mut rng);
        let gru = Recurrent::new(CellKind::Gru, 2, 2, &mut rng);
        let xs = vec![Matrix::zeros(1, 2)];
        let (hs, gru_cache) = gru.forward(&xs);
        let dhs = vec![Matrix::zeros(1, 2)];
        lstm.backward(&xs, &hs, &gru_cache, &dhs);
    }
}

//! Long Short-Term Memory layer with fused gate matrices.
//!
//! Gates are stored fused as `[i | f | g | o]` blocks of width `H` so one
//! GEMM per step computes all pre-activations:
//!
//! ```text
//! a_t = x_t · Wx + h_{t-1} · Wh + b          (B × 4H)
//! i = σ(a_i)   f = σ(a_f)   g = tanh(a_g)   o = σ(a_o)
//! c_t = f ∘ c_{t-1} + i ∘ g
//! h_t = o ∘ tanh(c_t)
//! ```
//!
//! The forget-gate bias initializes to 1.0 (Jozefowicz et al., 2015), which
//! materially speeds up learning of long temporal dependencies.
//!
//! Hot-path structure: forward activates gates **in place** on the
//! preactivation buffer (the cache stores activated gates, which is all
//! backward needs), and every per-step buffer lives in the reusable
//! [`LstmCache`] / layer scratch so steady-state training allocates
//! nothing.  Backward uses the transpose-free GEMM variants
//! (`matmul_at_b_into` for `gW += xᵀ·da`, `matmul_a_bt_into` for
//! `dx = da·Wᵀ`), so no transpose is ever materialized.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::activation::{dsigmoid_from_output, dtanh_from_output, sigmoid_slice, tanh_slice};
use crate::init::xavier_uniform;
use crate::layer::ensure_seq;
use crate::matrix::Matrix;

/// Reusable forward cache consumed by [`LstmLayer::backward`].  Holds, per
/// step, the **activated** fused gate block `[i|f|g|o]` (`B × 4H`), the
/// cell state and its tanh (`B × H` each).  Inputs and hidden outputs are
/// not duplicated here — backward receives them from the caller.
#[derive(Debug, Clone, Default)]
pub struct LstmCache {
    gates: Vec<Matrix>,
    c: Vec<Matrix>,
    tanh_c: Vec<Matrix>,
    len: usize,
    batch: usize,
}

impl LstmCache {
    /// Number of cached steps.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no steps are cached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Reusable backward scratch (gradient flow buffers).  Lives in the layer
/// under `#[serde(skip)]` so repeated BPTT passes are allocation-free.
#[derive(Debug, Clone, Default)]
struct LstmScratch {
    dh: Matrix,
    dc: Matrix,
    dh_next: Matrix,
    dc_next: Matrix,
    da: Matrix,
}

/// An LSTM layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmLayer {
    input: usize,
    hidden: usize,
    wx: Matrix,
    wh: Matrix,
    b: Matrix,
    #[serde(skip)]
    gwx: Option<Matrix>,
    #[serde(skip)]
    gwh: Option<Matrix>,
    #[serde(skip)]
    gb: Option<Matrix>,
    #[serde(skip, default)]
    scratch: LstmScratch,
}

impl LstmLayer {
    /// New layer with Xavier-initialized weights and forget bias 1.0.
    pub fn new(input: usize, hidden: usize, rng: &mut StdRng) -> Self {
        let mut b = Matrix::zeros(1, 4 * hidden);
        for h in 0..hidden {
            b.set(0, hidden + h, 1.0); // forget gate block
        }
        LstmLayer {
            input,
            hidden,
            wx: xavier_uniform(input, 4 * hidden, rng),
            wh: xavier_uniform(hidden, 4 * hidden, rng),
            b,
            gwx: None,
            gwh: None,
            gb: None,
            scratch: LstmScratch::default(),
        }
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.input
    }

    /// Hidden width.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        (self.input + self.hidden + 1) * 4 * self.hidden
    }

    fn ensure_grads(&mut self) {
        if self.gwx.is_none() {
            self.gwx = Some(Matrix::zeros(self.input, 4 * self.hidden));
            self.gwh = Some(Matrix::zeros(self.hidden, 4 * self.hidden));
            self.gb = Some(Matrix::zeros(1, 4 * self.hidden));
        }
    }

    /// Visits `(param, grad)` pairs in a stable order.
    pub fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        self.ensure_grads();
        f(&mut self.wx, self.gwx.as_mut().unwrap());
        f(&mut self.wh, self.gwh.as_mut().unwrap());
        f(&mut self.b, self.gb.as_mut().unwrap());
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.ensure_grads();
        self.gwx.as_mut().unwrap().zero_in_place();
        self.gwh.as_mut().unwrap().zero_in_place();
        self.gb.as_mut().unwrap().zero_in_place();
    }

    /// Runs the layer over a sequence of inputs (each `B × input`), starting
    /// from zero state.  Returns the hidden state at every step and a cache
    /// for backward.  Allocating wrapper over
    /// [`forward_into`](Self::forward_into).
    pub fn forward(&self, xs: &[Matrix]) -> (Vec<Matrix>, LstmCache) {
        let mut hs = Vec::new();
        let mut cache = LstmCache::default();
        self.forward_into(xs, &mut hs, &mut cache);
        (hs, cache)
    }

    /// Forward pass into caller-owned buffers.  `hs` and `cache` are
    /// resized in place, reusing prior allocations — calling this in a
    /// training loop with the same buffers makes the steady state
    /// allocation-free.
    pub fn forward_into(&self, xs: &[Matrix], hs: &mut Vec<Matrix>, cache: &mut LstmCache) {
        assert!(!xs.is_empty(), "empty sequence");
        let batch = xs[0].rows();
        let h_dim = self.hidden;
        let steps = xs.len();
        ensure_seq(hs, steps);
        ensure_seq(&mut cache.gates, steps);
        ensure_seq(&mut cache.c, steps);
        ensure_seq(&mut cache.tanh_c, steps);
        cache.len = steps;
        cache.batch = batch;

        for (t, x) in xs.iter().enumerate() {
            assert_eq!(x.cols(), self.input, "input width mismatch");
            assert_eq!(x.rows(), batch, "batch size changed mid-sequence");

            // a = bias ⊕ x·Wx ⊕ h_prev·Wh, built in place.
            let a = &mut cache.gates[t];
            a.resize_uninit(batch, 4 * h_dim);
            for r in 0..batch {
                a.row_mut(r).copy_from_slice(self.b.row(0));
            }
            x.matmul_add_into(&self.wx, a);
            if t > 0 {
                // h_0 is the zero matrix: its GEMM is skipped entirely.
                let (prev, _) = hs.split_at(t);
                prev[t - 1].matmul_add_into(&self.wh, a);
            }

            // Activate the fused block in place: σ on [i|f], tanh on g,
            // σ on o.
            for r in 0..batch {
                let row = a.row_mut(r);
                let (ifg, o) = row.split_at_mut(3 * h_dim);
                let (i_f, g) = ifg.split_at_mut(2 * h_dim);
                sigmoid_slice(i_f);
                tanh_slice(g);
                sigmoid_slice(o);
            }

            // c_t = f ∘ c_prev + i ∘ g   (c_prev = 0 at t = 0)
            let (c_head, c_tail) = cache.c.split_at_mut(t);
            let c_t = &mut c_tail[0];
            c_t.resize_uninit(batch, h_dim);
            for r in 0..batch {
                let arow = a.row(r);
                let crow = c_t.row_mut(r);
                if t > 0 {
                    let cprev = c_head[t - 1].row(r);
                    for j in 0..h_dim {
                        crow[j] = arow[h_dim + j] * cprev[j] + arow[j] * arow[2 * h_dim + j];
                    }
                } else {
                    for j in 0..h_dim {
                        crow[j] = arow[j] * arow[2 * h_dim + j];
                    }
                }
            }

            // tanh(c_t), then h_t = o ∘ tanh(c_t).
            let tc = &mut cache.tanh_c[t];
            tc.copy_from(c_t);
            tanh_slice(tc.as_mut_slice());
            let h_t = &mut hs[t];
            h_t.resize_uninit(batch, h_dim);
            for r in 0..batch {
                let arow = a.row(r);
                let tcrow = tc.row(r);
                let hrow = h_t.row_mut(r);
                for j in 0..h_dim {
                    hrow[j] = arow[3 * h_dim + j] * tcrow[j];
                }
            }
        }
    }

    /// Backpropagation through time.  `xs`/`hs` are the forward inputs and
    /// outputs (the cache does not duplicate them), `dhs[t]` is `∂L/∂h_t`
    /// from above.  Accumulates parameter gradients and returns `∂L/∂x_t`
    /// per step.  Allocating wrapper over
    /// [`backward_into`](Self::backward_into).
    pub fn backward(
        &mut self,
        xs: &[Matrix],
        hs: &[Matrix],
        cache: &LstmCache,
        dhs: &[Matrix],
    ) -> Vec<Matrix> {
        let mut dxs = Vec::new();
        self.backward_into(xs, hs, cache, dhs, &mut dxs);
        dxs
    }

    /// BPTT into a caller-owned `dxs` buffer; all gradient-flow scratch is
    /// reused across calls.
    pub fn backward_into(
        &mut self,
        xs: &[Matrix],
        hs: &[Matrix],
        cache: &LstmCache,
        dhs: &[Matrix],
        dxs: &mut Vec<Matrix>,
    ) {
        assert_eq!(cache.len, dhs.len(), "cache/grad length mismatch");
        assert_eq!(cache.len, xs.len(), "cache/input length mismatch");
        assert_eq!(cache.len, hs.len(), "cache/output length mismatch");
        self.ensure_grads();
        let h_dim = self.hidden;
        let batch = cache.batch;
        ensure_seq(dxs, cache.len);

        let s = &mut self.scratch;
        s.dh_next.resize_zeroed(batch, h_dim);
        s.dc_next.resize_zeroed(batch, h_dim);

        for t in (0..cache.len).rev() {
            let gates = &cache.gates[t];
            let tanh_c = &cache.tanh_c[t];

            // dh = dhs[t] + dh_next
            s.dh.copy_from(&dhs[t]);
            s.dh.add_in_place(&s.dh_next);

            // dc = dh ∘ o ∘ (1 − tanh(c)²) + dc_next
            s.dc.resize_uninit(batch, h_dim);
            for r in 0..batch {
                let arow = gates.row(r);
                let tcrow = tanh_c.row(r);
                let dhrow = s.dh.row(r);
                let dcnrow = s.dc_next.row(r);
                let dcrow = s.dc.row_mut(r);
                for j in 0..h_dim {
                    dcrow[j] =
                        dhrow[j] * arow[3 * h_dim + j] * dtanh_from_output(tcrow[j]) + dcnrow[j];
                }
            }

            // Fused gate pre-activation gradients, written block-wise into
            // one B × 4H buffer (no per-gate temporaries).
            s.da.resize_uninit(batch, 4 * h_dim);
            for r in 0..batch {
                let arow = gates.row(r);
                let tcrow = tanh_c.row(r);
                let dhrow = s.dh.row(r);
                let dcrow = s.dc.row(r);
                let darow = s.da.row_mut(r);
                if t > 0 {
                    let cprev = cache.c[t - 1].row(r);
                    for j in 0..h_dim {
                        darow[h_dim + j] =
                            dcrow[j] * cprev[j] * dsigmoid_from_output(arow[h_dim + j]);
                    }
                } else {
                    darow[h_dim..2 * h_dim].fill(0.0); // c_prev = 0
                }
                for j in 0..h_dim {
                    let (i, g, o) = (arow[j], arow[2 * h_dim + j], arow[3 * h_dim + j]);
                    darow[j] = dcrow[j] * g * dsigmoid_from_output(i);
                    darow[2 * h_dim + j] = dcrow[j] * i * dtanh_from_output(g);
                    darow[3 * h_dim + j] = dhrow[j] * tcrow[j] * dsigmoid_from_output(o);
                }
            }

            // Transpose-free parameter gradients: gW += inputᵀ · da.
            xs[t].matmul_at_b_into(&s.da, self.gwx.as_mut().unwrap());
            if t > 0 {
                hs[t - 1].matmul_at_b_into(&s.da, self.gwh.as_mut().unwrap());
            }
            s.da.col_sums_add_into(self.gb.as_mut().unwrap());

            // Transpose-free input/state gradients: d· = da · Wᵀ.
            s.da.matmul_a_bt_into(&self.wx, &mut dxs[t]);
            s.da.matmul_a_bt_into(&self.wh, &mut s.dh_next);

            // dc_next = dc ∘ f
            s.dc_next.resize_uninit(batch, h_dim);
            for r in 0..batch {
                let arow = gates.row(r);
                let dcrow = s.dc.row(r);
                let out = s.dc_next.row_mut(r);
                for j in 0..h_dim {
                    out[j] = dcrow[j] * arow[h_dim + j];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn make(input: usize, hidden: usize, seed: u64) -> LstmLayer {
        LstmLayer::new(input, hidden, &mut StdRng::seed_from_u64(seed))
    }

    fn seq(t: usize, b: usize, i: usize, scale: f64) -> Vec<Matrix> {
        (0..t)
            .map(|step| {
                Matrix::from_vec(
                    b,
                    i,
                    (0..b * i)
                        .map(|k| ((step * 7 + k * 3) % 11) as f64 / 11.0 * scale - scale / 2.0)
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn forward_shapes_and_bounds() {
        let layer = make(3, 5, 1);
        let xs = seq(4, 2, 3, 2.0);
        let (hs, cache) = layer.forward(&xs);
        assert_eq!(hs.len(), 4);
        assert_eq!(hs[0].shape(), (2, 5));
        assert_eq!(cache.len(), 4);
        // h = o * tanh(c) is bounded by (-1, 1).
        for h in &hs {
            assert!(h.as_slice().iter().all(|v| v.abs() < 1.0));
        }
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let layer = make(2, 3, 1);
        for h in 0..3 {
            assert_eq!(layer.b.get(0, 3 + h), 1.0);
            assert_eq!(layer.b.get(0, h), 0.0);
        }
    }

    #[test]
    fn state_carries_information_forward() {
        // Same input at t=1 but different input at t=0 must change h_1.
        let layer = make(2, 4, 3);
        let x_same = Matrix::from_rows(&[vec![0.5, -0.5]]);
        let a = vec![Matrix::from_rows(&[vec![1.0, 1.0]]), x_same.clone()];
        let b = vec![Matrix::from_rows(&[vec![-1.0, 0.2]]), x_same];
        let (ha, _) = layer.forward(&a);
        let (hb, _) = layer.forward(&b);
        let diff: f64 = ha[1]
            .as_slice()
            .iter()
            .zip(hb[1].as_slice())
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(diff > 1e-4, "hidden state ignored history (diff {diff})");
    }

    #[test]
    fn reused_buffers_match_fresh_forward() {
        // Same layer, shrinking then growing batch/sequence: reused cache
        // buffers must give bit-identical results to a fresh forward.
        let layer = make(3, 4, 7);
        let mut hs = Vec::new();
        let mut cache = LstmCache::default();
        for (t, b) in [(4usize, 3usize), (2, 1), (5, 4)] {
            let xs = seq(t, b, 3, 1.0);
            layer.forward_into(&xs, &mut hs, &mut cache);
            let (fresh, _) = layer.forward(&xs);
            assert_eq!(hs.len(), fresh.len());
            for (a, b) in hs.iter().zip(&fresh) {
                assert_eq!(a, b);
            }
        }
    }

    /// Full finite-difference gradient check of every parameter.
    #[test]
    fn bptt_gradients_match_finite_differences() {
        let mut layer = make(3, 4, 5);
        let xs = seq(5, 2, 3, 1.0);
        // Loss = sum of all h_t elements  →  dL/dh_t = ones.
        let loss = |l: &LstmLayer| -> f64 {
            let (hs, _) = l.forward(&xs);
            hs.iter().map(Matrix::sum).sum()
        };
        let (hs, cache) = layer.forward(&xs);
        let dhs: Vec<Matrix> = hs
            .iter()
            .map(|h| Matrix::full(h.rows(), h.cols(), 1.0))
            .collect();
        layer.zero_grads();
        layer.backward(&xs, &hs, &cache, &dhs);

        let eps = 1e-5;
        // Snapshot analytic grads, then perturb each param.
        let grads: Vec<Matrix> = {
            let mut out = Vec::new();
            layer.for_each_param(&mut |_p, g| out.push(g.clone()));
            out
        };
        for (pi, analytic) in grads.iter().enumerate() {
            // Sample a handful of coordinates per matrix to keep runtime low.
            let len = analytic.as_slice().len();
            for k in [0usize, len / 3, len / 2, len - 1] {
                let base = {
                    let mut params = Vec::new();
                    layer.for_each_param(&mut |p, _| params.push(p as *mut Matrix));
                    params[pi]
                };
                // SAFETY: raw pointer used only to perturb a single param
                // while no other borrow is live.
                let orig = unsafe { (*base).as_slice()[k] };
                unsafe { (*base).as_mut_slice()[k] = orig + eps };
                let lp = loss(&layer);
                unsafe { (*base).as_mut_slice()[k] = orig - eps };
                let lm = loss(&layer);
                unsafe { (*base).as_mut_slice()[k] = orig };
                let numeric = (lp - lm) / (2.0 * eps);
                let ana = analytic.as_slice()[k];
                assert!(
                    (numeric - ana).abs() < 1e-4 * (1.0 + numeric.abs().max(ana.abs())),
                    "param {pi} coord {k}: numeric {numeric} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn dx_gradient_matches_finite_differences() {
        let mut layer = make(2, 3, 9);
        let mut xs = seq(3, 1, 2, 1.0);
        let (hs, cache) = layer.forward(&xs);
        let dhs: Vec<Matrix> = hs
            .iter()
            .map(|h| Matrix::full(h.rows(), h.cols(), 1.0))
            .collect();
        layer.zero_grads();
        let dxs = layer.backward(&xs, &hs, &cache, &dhs);

        let eps = 1e-5;
        for t in 0..3 {
            for k in 0..2 {
                let orig = xs[t].as_slice()[k];
                xs[t].as_mut_slice()[k] = orig + eps;
                let lp: f64 = layer.forward(&xs).0.iter().map(Matrix::sum).sum();
                xs[t].as_mut_slice()[k] = orig - eps;
                let lm: f64 = layer.forward(&xs).0.iter().map(Matrix::sum).sum();
                xs[t].as_mut_slice()[k] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let ana = dxs[t].as_slice()[k];
                assert!(
                    (numeric - ana).abs() < 1e-6 + 1e-4 * numeric.abs(),
                    "dx[{t}][{k}]: {numeric} vs {ana}"
                );
            }
        }
    }

    #[test]
    fn zero_grads_resets_accumulation() {
        let mut layer = make(2, 2, 11);
        let xs = seq(2, 1, 2, 1.0);
        let (hs, cache) = layer.forward(&xs);
        let dhs: Vec<Matrix> = hs.iter().map(|_| Matrix::full(1, 2, 1.0)).collect();
        layer.zero_grads();
        layer.backward(&xs, &hs, &cache, &dhs);
        let norm_once = {
            let mut n = 0.0;
            layer.for_each_param(&mut |_p, g| n += g.frobenius_norm());
            n
        };
        assert!(norm_once > 0.0);
        layer.zero_grads();
        let mut n = 0.0;
        layer.for_each_param(&mut |_p, g| n += g.frobenius_norm());
        assert_eq!(n, 0.0);
    }

    #[test]
    fn serde_round_trip_preserves_weights() {
        let layer = make(3, 4, 2);
        let json = serde_json::to_string(&layer).unwrap();
        let back: LstmLayer = serde_json::from_str(&json).unwrap();
        let xs = seq(3, 2, 3, 1.0);
        let (h1, _) = layer.forward(&xs);
        let (h2, _) = back.forward(&xs);
        assert_eq!(h1.last(), h2.last());
        assert_eq!(back.param_count(), layer.param_count());
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn rejects_wrong_input_width() {
        let layer = make(3, 4, 1);
        let xs = vec![Matrix::zeros(1, 2)];
        layer.forward(&xs);
    }
}

//! Long Short-Term Memory layer with fused gate matrices.
//!
//! Gates are stored fused as `[i | f | g | o]` blocks of width `H` so one
//! GEMM per step computes all pre-activations:
//!
//! ```text
//! a_t = x_t · Wx + h_{t-1} · Wh + b          (B × 4H)
//! i = σ(a_i)   f = σ(a_f)   g = tanh(a_g)   o = σ(a_o)
//! c_t = f ∘ c_{t-1} + i ∘ g
//! h_t = o ∘ tanh(c_t)
//! ```
//!
//! The forget-gate bias initializes to 1.0 (Jozefowicz et al., 2015), which
//! materially speeds up learning of long temporal dependencies.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::activation::{dsigmoid_from_output, dtanh_from_output, sigmoid};
use crate::init::xavier_uniform;
use crate::matrix::Matrix;

/// Per-timestep values saved in forward for use in backward.
#[derive(Debug, Clone)]
struct StepCache {
    x: Matrix,
    h_prev: Matrix,
    c_prev: Matrix,
    i: Matrix,
    f: Matrix,
    g: Matrix,
    o: Matrix,
    tanh_c: Matrix,
}

/// Opaque forward cache consumed by [`LstmLayer::backward`].
#[derive(Debug, Default)]
pub struct LstmCache {
    steps: Vec<StepCache>,
    batch: usize,
}

/// An LSTM layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmLayer {
    input: usize,
    hidden: usize,
    wx: Matrix,
    wh: Matrix,
    b: Matrix,
    #[serde(skip)]
    gwx: Option<Matrix>,
    #[serde(skip)]
    gwh: Option<Matrix>,
    #[serde(skip)]
    gb: Option<Matrix>,
}

impl LstmLayer {
    /// New layer with Xavier-initialized weights and forget bias 1.0.
    pub fn new(input: usize, hidden: usize, rng: &mut StdRng) -> Self {
        let mut b = Matrix::zeros(1, 4 * hidden);
        for h in 0..hidden {
            b.set(0, hidden + h, 1.0); // forget gate block
        }
        LstmLayer {
            input,
            hidden,
            wx: xavier_uniform(input, 4 * hidden, rng),
            wh: xavier_uniform(hidden, 4 * hidden, rng),
            b,
            gwx: None,
            gwh: None,
            gb: None,
        }
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.input
    }

    /// Hidden width.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        (self.input + self.hidden + 1) * 4 * self.hidden
    }

    fn ensure_grads(&mut self) {
        if self.gwx.is_none() {
            self.gwx = Some(Matrix::zeros(self.input, 4 * self.hidden));
            self.gwh = Some(Matrix::zeros(self.hidden, 4 * self.hidden));
            self.gb = Some(Matrix::zeros(1, 4 * self.hidden));
        }
    }

    /// Visits `(param, grad)` pairs in a stable order.
    pub fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        self.ensure_grads();
        f(&mut self.wx, self.gwx.as_mut().unwrap());
        f(&mut self.wh, self.gwh.as_mut().unwrap());
        f(&mut self.b, self.gb.as_mut().unwrap());
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.ensure_grads();
        self.gwx.as_mut().unwrap().zero_in_place();
        self.gwh.as_mut().unwrap().zero_in_place();
        self.gb.as_mut().unwrap().zero_in_place();
    }

    /// Runs the layer over a sequence of inputs (each `B × input`), starting
    /// from zero state.  Returns the hidden state at every step and a cache
    /// for backward.
    pub fn forward(&self, xs: &[Matrix]) -> (Vec<Matrix>, LstmCache) {
        assert!(!xs.is_empty(), "empty sequence");
        let batch = xs[0].rows();
        let h_dim = self.hidden;
        let mut h = Matrix::zeros(batch, h_dim);
        let mut c = Matrix::zeros(batch, h_dim);
        let mut hs = Vec::with_capacity(xs.len());
        let mut cache = LstmCache {
            steps: Vec::with_capacity(xs.len()),
            batch,
        };

        for x in xs {
            assert_eq!(x.cols(), self.input, "input width mismatch");
            assert_eq!(x.rows(), batch, "batch size changed mid-sequence");
            let mut a = x.matmul(&self.wx);
            a.add_in_place(&h.matmul(&self.wh));
            a.add_row_in_place(self.b.row(0));

            let mut i = a.cols_slice(0, h_dim);
            let mut f = a.cols_slice(h_dim, 2 * h_dim);
            let mut g = a.cols_slice(2 * h_dim, 3 * h_dim);
            let mut o = a.cols_slice(3 * h_dim, 4 * h_dim);
            i.map_in_place(sigmoid);
            f.map_in_place(sigmoid);
            g.map_in_place(f64::tanh);
            o.map_in_place(sigmoid);

            let c_prev = c.clone();
            // c = f∘c_prev + i∘g
            let mut c_new = f.hadamard(&c_prev);
            c_new.add_in_place(&i.hadamard(&g));
            let tanh_c = c_new.map(f64::tanh);
            let h_new = o.hadamard(&tanh_c);

            cache.steps.push(StepCache {
                x: x.clone(),
                h_prev: h,
                c_prev,
                i,
                f,
                g,
                o,
                tanh_c: tanh_c.clone(),
            });
            h = h_new.clone();
            c = c_new;
            hs.push(h_new);
        }
        (hs, cache)
    }

    /// Backpropagation through time.  `dhs[t]` is `∂L/∂h_t` from above
    /// (zero matrices for steps the loss does not touch).  Accumulates
    /// parameter gradients and returns `∂L/∂x_t` for each step.
    pub fn backward(&mut self, cache: &LstmCache, dhs: &[Matrix]) -> Vec<Matrix> {
        assert_eq!(cache.steps.len(), dhs.len(), "cache/grad length mismatch");
        self.ensure_grads();
        let h_dim = self.hidden;
        let batch = cache.batch;
        let mut dh_next = Matrix::zeros(batch, h_dim);
        let mut dc_next = Matrix::zeros(batch, h_dim);
        let mut dxs = vec![Matrix::zeros(batch, self.input); dhs.len()];

        for t in (0..cache.steps.len()).rev() {
            let s = &cache.steps[t];
            let mut dh = dhs[t].clone();
            dh.add_in_place(&dh_next);

            // dc = dh ∘ o ∘ (1 - tanh(c)^2) + dc_next
            let mut dc = dh.hadamard(&s.o);
            for (v, tc) in dc.as_mut_slice().iter_mut().zip(s.tanh_c.as_slice()) {
                *v *= dtanh_from_output(*tc);
            }
            dc.add_in_place(&dc_next);

            // Gate pre-activation gradients (B × 4H fused).
            let mut da = Matrix::zeros(batch, 4 * h_dim);
            {
                // da_i = dc ∘ g ∘ i(1-i)
                let mut da_i = dc.hadamard(&s.g);
                for (v, i) in da_i.as_mut_slice().iter_mut().zip(s.i.as_slice()) {
                    *v *= dsigmoid_from_output(*i);
                }
                da.set_cols(0, &da_i);
                // da_f = dc ∘ c_prev ∘ f(1-f)
                let mut da_f = dc.hadamard(&s.c_prev);
                for (v, f) in da_f.as_mut_slice().iter_mut().zip(s.f.as_slice()) {
                    *v *= dsigmoid_from_output(*f);
                }
                da.set_cols(h_dim, &da_f);
                // da_g = dc ∘ i ∘ (1-g^2)
                let mut da_g = dc.hadamard(&s.i);
                for (v, g) in da_g.as_mut_slice().iter_mut().zip(s.g.as_slice()) {
                    *v *= dtanh_from_output(*g);
                }
                da.set_cols(2 * h_dim, &da_g);
                // da_o = dh ∘ tanh(c) ∘ o(1-o)
                let mut da_o = dh.hadamard(&s.tanh_c);
                for (v, o) in da_o.as_mut_slice().iter_mut().zip(s.o.as_slice()) {
                    *v *= dsigmoid_from_output(*o);
                }
                da.set_cols(3 * h_dim, &da_o);
            }

            self.gwx
                .as_mut()
                .unwrap()
                .add_in_place(&s.x.transpose().matmul(&da));
            self.gwh
                .as_mut()
                .unwrap()
                .add_in_place(&s.h_prev.transpose().matmul(&da));
            self.gb.as_mut().unwrap().add_in_place(&da.col_sums());

            dxs[t] = da.matmul(&self.wx.transpose());
            dh_next = da.matmul(&self.wh.transpose());
            dc_next = dc.hadamard(&s.f);
        }
        dxs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn make(input: usize, hidden: usize, seed: u64) -> LstmLayer {
        LstmLayer::new(input, hidden, &mut StdRng::seed_from_u64(seed))
    }

    fn seq(t: usize, b: usize, i: usize, scale: f64) -> Vec<Matrix> {
        (0..t)
            .map(|step| {
                Matrix::from_vec(
                    b,
                    i,
                    (0..b * i)
                        .map(|k| ((step * 7 + k * 3) % 11) as f64 / 11.0 * scale - scale / 2.0)
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn forward_shapes_and_bounds() {
        let layer = make(3, 5, 1);
        let xs = seq(4, 2, 3, 2.0);
        let (hs, cache) = layer.forward(&xs);
        assert_eq!(hs.len(), 4);
        assert_eq!(hs[0].shape(), (2, 5));
        assert_eq!(cache.steps.len(), 4);
        // h = o * tanh(c) is bounded by (-1, 1).
        for h in &hs {
            assert!(h.as_slice().iter().all(|v| v.abs() < 1.0));
        }
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let layer = make(2, 3, 1);
        for h in 0..3 {
            assert_eq!(layer.b.get(0, 3 + h), 1.0);
            assert_eq!(layer.b.get(0, h), 0.0);
        }
    }

    #[test]
    fn state_carries_information_forward() {
        // Same input at t=1 but different input at t=0 must change h_1.
        let layer = make(2, 4, 3);
        let x_same = Matrix::from_rows(&[vec![0.5, -0.5]]);
        let a = vec![Matrix::from_rows(&[vec![1.0, 1.0]]), x_same.clone()];
        let b = vec![Matrix::from_rows(&[vec![-1.0, 0.2]]), x_same];
        let (ha, _) = layer.forward(&a);
        let (hb, _) = layer.forward(&b);
        let diff: f64 = ha[1]
            .as_slice()
            .iter()
            .zip(hb[1].as_slice())
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(diff > 1e-4, "hidden state ignored history (diff {diff})");
    }

    /// Full finite-difference gradient check of every parameter.
    #[test]
    fn bptt_gradients_match_finite_differences() {
        let mut layer = make(3, 4, 5);
        let xs = seq(5, 2, 3, 1.0);
        // Loss = sum of all h_t elements  →  dL/dh_t = ones.
        let loss = |l: &LstmLayer| -> f64 {
            let (hs, _) = l.forward(&xs);
            hs.iter().map(Matrix::sum).sum()
        };
        let (hs, cache) = layer.forward(&xs);
        let dhs: Vec<Matrix> = hs
            .iter()
            .map(|h| Matrix::full(h.rows(), h.cols(), 1.0))
            .collect();
        layer.zero_grads();
        layer.backward(&cache, &dhs);

        let eps = 1e-5;
        // Snapshot analytic grads, then perturb each param.
        let grads: Vec<Matrix> = {
            let mut out = Vec::new();
            layer.for_each_param(&mut |_p, g| out.push(g.clone()));
            out
        };
        for (pi, analytic) in grads.iter().enumerate() {
            // Sample a handful of coordinates per matrix to keep runtime low.
            let len = analytic.as_slice().len();
            for k in [0usize, len / 3, len / 2, len - 1] {
                let base = {
                    let mut params = Vec::new();
                    layer.for_each_param(&mut |p, _| params.push(p as *mut Matrix));
                    params[pi]
                };
                // SAFETY: raw pointer used only to perturb a single param
                // while no other borrow is live.
                let orig = unsafe { (*base).as_slice()[k] };
                unsafe { (*base).as_mut_slice()[k] = orig + eps };
                let lp = loss(&layer);
                unsafe { (*base).as_mut_slice()[k] = orig - eps };
                let lm = loss(&layer);
                unsafe { (*base).as_mut_slice()[k] = orig };
                let numeric = (lp - lm) / (2.0 * eps);
                let ana = analytic.as_slice()[k];
                assert!(
                    (numeric - ana).abs() < 1e-4 * (1.0 + numeric.abs().max(ana.abs())),
                    "param {pi} coord {k}: numeric {numeric} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn dx_gradient_matches_finite_differences() {
        let mut layer = make(2, 3, 9);
        let mut xs = seq(3, 1, 2, 1.0);
        let (hs, cache) = layer.forward(&xs);
        let dhs: Vec<Matrix> = hs
            .iter()
            .map(|h| Matrix::full(h.rows(), h.cols(), 1.0))
            .collect();
        layer.zero_grads();
        let dxs = layer.backward(&cache, &dhs);

        let eps = 1e-5;
        for t in 0..3 {
            for k in 0..2 {
                let orig = xs[t].as_slice()[k];
                xs[t].as_mut_slice()[k] = orig + eps;
                let lp: f64 = layer.forward(&xs).0.iter().map(Matrix::sum).sum();
                xs[t].as_mut_slice()[k] = orig - eps;
                let lm: f64 = layer.forward(&xs).0.iter().map(Matrix::sum).sum();
                xs[t].as_mut_slice()[k] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let ana = dxs[t].as_slice()[k];
                assert!(
                    (numeric - ana).abs() < 1e-6 + 1e-4 * numeric.abs(),
                    "dx[{t}][{k}]: {numeric} vs {ana}"
                );
            }
        }
    }

    #[test]
    fn zero_grads_resets_accumulation() {
        let mut layer = make(2, 2, 11);
        let xs = seq(2, 1, 2, 1.0);
        let (hs, cache) = layer.forward(&xs);
        let dhs: Vec<Matrix> = hs.iter().map(|_| Matrix::full(1, 2, 1.0)).collect();
        layer.zero_grads();
        layer.backward(&cache, &dhs);
        let norm_once = {
            let mut n = 0.0;
            layer.for_each_param(&mut |_p, g| n += g.frobenius_norm());
            n
        };
        assert!(norm_once > 0.0);
        layer.zero_grads();
        let mut n = 0.0;
        layer.for_each_param(&mut |_p, g| n += g.frobenius_norm());
        assert_eq!(n, 0.0);
    }

    #[test]
    fn serde_round_trip_preserves_weights() {
        let layer = make(3, 4, 2);
        let json = serde_json::to_string(&layer).unwrap();
        let back: LstmLayer = serde_json::from_str(&json).unwrap();
        let xs = seq(3, 2, 3, 1.0);
        let (h1, _) = layer.forward(&xs);
        let (h2, _) = back.forward(&xs);
        assert_eq!(h1.last(), h2.last());
        assert_eq!(back.param_count(), layer.param_count());
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn rejects_wrong_input_width() {
        let layer = make(3, 4, 1);
        let xs = vec![Matrix::zeros(1, 2)];
        layer.forward(&xs);
    }
}

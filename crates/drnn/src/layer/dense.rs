//! Fully connected (dense) layer, used as the regression head on top of the
//! recurrent stack.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::activation::{drelu, relu};
use crate::init::{he_uniform, xavier_uniform};
use crate::matrix::Matrix;

/// Activation applied after the affine map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DenseActivation {
    /// No activation (regression output).
    Linear,
    /// Rectified linear unit (hidden dense layers).
    Relu,
}

/// Forward cache for [`DenseLayer::backward`].  Stores only the ReLU
/// preactivation (linear heads cache nothing); the input is passed back to
/// `backward` by the caller instead of being cloned here.
#[derive(Debug, Clone, Default)]
pub struct DenseCache {
    pre: Option<Matrix>,
}

/// Reusable backward scratch.
#[derive(Debug, Clone, Default)]
struct DenseScratch {
    dpre: Matrix,
}

/// A dense layer `y = act(x·W + b)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DenseLayer {
    input: usize,
    output: usize,
    activation: DenseActivation,
    w: Matrix,
    b: Matrix,
    #[serde(skip)]
    gw: Option<Matrix>,
    #[serde(skip)]
    gb: Option<Matrix>,
    #[serde(skip, default)]
    scratch: DenseScratch,
}

impl DenseLayer {
    /// New dense layer.  He init for ReLU, Xavier otherwise.
    pub fn new(input: usize, output: usize, activation: DenseActivation, rng: &mut StdRng) -> Self {
        let w = match activation {
            DenseActivation::Relu => he_uniform(input, output, rng),
            DenseActivation::Linear => xavier_uniform(input, output, rng),
        };
        DenseLayer {
            input,
            output,
            activation,
            w,
            b: Matrix::zeros(1, output),
            gw: None,
            gb: None,
            scratch: DenseScratch::default(),
        }
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.input
    }

    /// Output width.
    pub fn output_size(&self) -> usize {
        self.output
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        (self.input + 1) * self.output
    }

    fn ensure_grads(&mut self) {
        if self.gw.is_none() {
            self.gw = Some(Matrix::zeros(self.input, self.output));
            self.gb = Some(Matrix::zeros(1, self.output));
        }
    }

    /// Visits `(param, grad)` pairs in a stable order.
    pub fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        self.ensure_grads();
        f(&mut self.w, self.gw.as_mut().unwrap());
        f(&mut self.b, self.gb.as_mut().unwrap());
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.ensure_grads();
        self.gw.as_mut().unwrap().zero_in_place();
        self.gb.as_mut().unwrap().zero_in_place();
    }

    /// Forward pass: `x` is `B × input`.  Allocating wrapper over
    /// [`forward_into`](Self::forward_into).
    pub fn forward(&self, x: &Matrix) -> (Matrix, DenseCache) {
        let mut y = Matrix::default();
        let mut cache = DenseCache::default();
        self.forward_into(x, &mut y, &mut cache);
        (y, cache)
    }

    /// Forward pass into caller-owned, reusable buffers.
    pub fn forward_into(&self, x: &Matrix, y: &mut Matrix, cache: &mut DenseCache) {
        assert_eq!(x.cols(), self.input, "input width mismatch");
        x.matmul_into(&self.w, y);
        y.add_row_in_place(self.b.row(0));
        match self.activation {
            DenseActivation::Linear => cache.pre = None,
            DenseActivation::Relu => {
                let pre = cache.pre.get_or_insert_with(Matrix::default);
                pre.copy_from(y);
                y.map_in_place(relu);
            }
        }
    }

    /// Backward pass: accumulates gradients and returns `∂L/∂x`.  `x` is
    /// the forward input (the cache does not duplicate it).
    pub fn backward(&mut self, x: &Matrix, cache: &DenseCache, dy: &Matrix) -> Matrix {
        let mut dx = Matrix::default();
        self.backward_into(x, cache, dy, &mut dx);
        dx
    }

    /// Backward pass into a caller-owned `dx` buffer; transpose-free GEMMs
    /// and reusable scratch throughout.
    pub fn backward_into(&mut self, x: &Matrix, cache: &DenseCache, dy: &Matrix, dx: &mut Matrix) {
        self.ensure_grads();
        let dpre = &mut self.scratch.dpre;
        dpre.copy_from(dy);
        if self.activation == DenseActivation::Relu {
            let pre = cache.pre.as_ref().expect("relu cache");
            for (v, p) in dpre.as_mut_slice().iter_mut().zip(pre.as_slice()) {
                *v *= drelu(*p);
            }
        }
        x.matmul_at_b_into(dpre, self.gw.as_mut().unwrap());
        dpre.col_sums_add_into(self.gb.as_mut().unwrap());
        dpre.matmul_a_bt_into(&self.w, dx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn linear_forward_is_affine() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = DenseLayer::new(2, 1, DenseActivation::Linear, &mut rng);
        layer.w = Matrix::from_rows(&[vec![2.0], vec![-1.0]]);
        layer.b = Matrix::from_rows(&[vec![0.5]]);
        let (y, _) = layer.forward(&Matrix::from_rows(&[vec![3.0, 4.0]]));
        assert!((y.get(0, 0) - (6.0 - 4.0 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn relu_clips_negatives() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = DenseLayer::new(1, 2, DenseActivation::Relu, &mut rng);
        layer.w = Matrix::from_rows(&[vec![1.0, -1.0]]);
        let (y, _) = layer.forward(&Matrix::from_rows(&[vec![2.0]]));
        assert_eq!(y.as_slice(), &[2.0, 0.0]);
    }

    #[test]
    fn gradients_match_finite_differences_both_activations() {
        for act in [DenseActivation::Linear, DenseActivation::Relu] {
            let mut rng = StdRng::seed_from_u64(3);
            let mut layer = DenseLayer::new(3, 2, act, &mut rng);
            let x = Matrix::from_rows(&[vec![0.3, -0.7, 1.1], vec![0.9, 0.2, -0.4]]);
            let loss = |l: &DenseLayer| l.forward(&x).0.sum();
            let (y, cache) = layer.forward(&x);
            layer.zero_grads();
            let dx = layer.backward(&x, &cache, &Matrix::full(y.rows(), y.cols(), 1.0));

            let grads: Vec<Matrix> = {
                let mut out = Vec::new();
                layer.for_each_param(&mut |_p, g| out.push(g.clone()));
                out
            };
            let eps = 1e-6;
            for (pi, analytic) in grads.iter().enumerate() {
                for k in 0..analytic.as_slice().len() {
                    let base = {
                        let mut params = Vec::new();
                        layer.for_each_param(&mut |p, _| params.push(p as *mut Matrix));
                        params[pi]
                    };
                    let orig = unsafe { (*base).as_slice()[k] };
                    unsafe { (*base).as_mut_slice()[k] = orig + eps };
                    let lp = loss(&layer);
                    unsafe { (*base).as_mut_slice()[k] = orig - eps };
                    let lm = loss(&layer);
                    unsafe { (*base).as_mut_slice()[k] = orig };
                    let numeric = (lp - lm) / (2.0 * eps);
                    assert!(
                        (numeric - analytic.as_slice()[k]).abs() < 1e-6,
                        "{act:?} param {pi}[{k}]"
                    );
                }
            }
            // dx check.
            let mut x2 = x.clone();
            for k in 0..x2.as_slice().len() {
                let orig = x2.as_slice()[k];
                x2.as_mut_slice()[k] = orig + eps;
                let lp = layer.forward(&x2).0.sum();
                x2.as_mut_slice()[k] = orig - eps;
                let lm = layer.forward(&x2).0.sum();
                x2.as_mut_slice()[k] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                assert!((numeric - dx.as_slice()[k]).abs() < 1e-6, "{act:?} dx[{k}]");
            }
        }
    }

    #[test]
    fn serde_round_trip() {
        let mut rng = StdRng::seed_from_u64(4);
        let layer = DenseLayer::new(4, 2, DenseActivation::Linear, &mut rng);
        let json = serde_json::to_string(&layer).unwrap();
        let back: DenseLayer = serde_json::from_str(&json).unwrap();
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0]]);
        assert_eq!(layer.forward(&x).0, back.forward(&x).0);
        assert_eq!(back.param_count(), 10);
    }
}

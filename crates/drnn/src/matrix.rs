//! Dense row-major `f64` matrices with the operations a recurrent network
//! needs: GEMM (rayon-parallel for large shapes), transpose, broadcast row
//! addition, element-wise maps and reductions.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Row-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// GEMM switches to rayon when the output has at least this many elements
/// (per the HPC guides: parallelism must pay for its overhead).
const PAR_THRESHOLD: usize = 64 * 64;

impl Matrix {
    /// Zero matrix of shape `rows × cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds from a row-major vector.  Panics if sizes disagree.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds from nested rows (tests/readability; not a hot path).
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        Matrix {
            rows: r,
            cols: c,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Flat row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · rhs`.  Parallelized over rows via rayon when
    /// the output is large enough to amortize the fork-join cost.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            rhs.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let n = rhs.cols;
        let k = self.cols;

        let kernel = |(r, out_row): (usize, &mut [f64])| {
            let a_row = &self.data[r * k..(r + 1) * k];
            // i-k-j loop order: unit-stride inner loop over both B's row and
            // the output row, which the auto-vectorizer handles well.
            for (ki, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[ki * n..(ki + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        };

        if self.rows * n >= PAR_THRESHOLD {
            out.data
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(r, out_row)| kernel((r, out_row)));
        } else {
            out.data.chunks_mut(n).enumerate().for_each(kernel);
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Adds `row` (a 1×C matrix or C-slice) to every row (bias broadcast).
    pub fn add_row_in_place(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "broadcast width mismatch");
        for r in 0..self.rows {
            let base = r * self.cols;
            for (c, &v) in row.iter().enumerate() {
                self.data[base + c] += v;
            }
        }
    }

    /// Element-wise sum with another matrix, in place.
    pub fn add_in_place(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape());
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += alpha * other` (axpy).
    pub fn axpy_in_place(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape());
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape());
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a * b)
                .collect(),
        }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Scales every element by `s` in place.
    pub fn scale_in_place(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Sum of every element.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Column sums as a 1×C matrix (bias gradients).
    pub fn col_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Horizontal slice: columns `[from, to)` as a new matrix.
    pub fn cols_slice(&self, from: usize, to: usize) -> Matrix {
        assert!(from <= to && to <= self.cols);
        let w = to - from;
        let mut out = Matrix::zeros(self.rows, w);
        for r in 0..self.rows {
            out.data[r * w..(r + 1) * w]
                .copy_from_slice(&self.data[r * self.cols + from..r * self.cols + to]);
        }
        out
    }

    /// Writes `block` into columns `[from, from + block.cols)`.
    pub fn set_cols(&mut self, from: usize, block: &Matrix) {
        assert_eq!(self.rows, block.rows);
        assert!(from + block.cols <= self.cols);
        for r in 0..self.rows {
            self.data[r * self.cols + from..r * self.cols + from + block.cols]
                .copy_from_slice(block.row(r));
        }
    }

    /// Stacks matrices with identical column counts vertically.
    pub fn vstack(blocks: &[&Matrix]) -> Matrix {
        assert!(!blocks.is_empty());
        let cols = blocks[0].cols;
        assert!(blocks.iter().all(|b| b.cols == cols));
        let rows = blocks.iter().map(|b| b.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for b in blocks {
            data.extend_from_slice(&b.data);
        }
        Matrix { rows, cols, data }
    }

    /// Zeroes every element (gradient reset).
    pub fn zero_in_place(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a.get(i, k) * b.get(k, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    #[test]
    fn matmul_small_known_result() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matmul_matches_naive_large_enough_to_go_parallel() {
        // 80x96 * 96x80 output = 6400 >= threshold → exercises rayon path.
        let a = Matrix::from_vec(
            80,
            96,
            (0..80 * 96)
                .map(|i| ((i * 31 % 17) as f64 - 8.0) / 8.0)
                .collect(),
        );
        let b = Matrix::from_vec(
            96,
            80,
            (0..96 * 80)
                .map(|i| ((i * 13 % 23) as f64 - 11.0) / 11.0)
                .collect(),
        );
        let fast = a.matmul(&b);
        let slow = naive_matmul(&a, &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        a.matmul(&b);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn broadcast_and_elementwise() {
        let mut a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        a.add_row_in_place(&[10.0, 20.0]);
        assert_eq!(a, Matrix::from_rows(&[vec![11.0, 22.0], vec![13.0, 24.0]]));
        let b = Matrix::full(2, 2, 2.0);
        let h = a.hadamard(&b);
        assert_eq!(h.get(1, 1), 48.0);
        a.add_in_place(&b);
        assert_eq!(a.get(0, 0), 13.0);
        a.axpy_in_place(-1.0, &b);
        assert_eq!(a.get(0, 0), 11.0);
    }

    #[test]
    fn map_scale_sum_norm() {
        let mut a = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert_eq!(a.frobenius_norm(), 5.0);
        assert_eq!(a.sum(), 7.0);
        let sq = a.map(|x| x * x);
        assert_eq!(sq.as_slice(), &[9.0, 16.0]);
        a.scale_in_place(2.0);
        assert_eq!(a.as_slice(), &[6.0, 8.0]);
        a.map_in_place(|x| x - 6.0);
        assert_eq!(a.as_slice(), &[0.0, 2.0]);
        a.zero_in_place();
        assert_eq!(a.sum(), 0.0);
    }

    #[test]
    fn col_sums_and_slices() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 6.0, 7.0, 8.0]]);
        assert_eq!(a.col_sums().as_slice(), &[6.0, 8.0, 10.0, 12.0]);
        let mid = a.cols_slice(1, 3);
        assert_eq!(mid, Matrix::from_rows(&[vec![2.0, 3.0], vec![6.0, 7.0]]));
        let mut b = Matrix::zeros(2, 4);
        b.set_cols(2, &mid);
        assert_eq!(b.get(1, 2), 6.0);
        assert_eq!(b.get(0, 3), 3.0);
        assert_eq!(b.get(0, 0), 0.0);
    }

    #[test]
    fn vstack_blocks() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let s = Matrix::vstack(&[&a, &b]);
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Matrix::zeros(2, 2);
        assert!(!a.has_non_finite());
        a.set(1, 0, f64::NAN);
        assert!(a.has_non_finite());
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn from_rows_rejects_ragged() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn serde_round_trip() {
        let a = Matrix::from_rows(&[vec![1.5, -2.5]]);
        let s = serde_json::to_string(&a).unwrap();
        let b: Matrix = serde_json::from_str(&s).unwrap();
        assert_eq!(a, b);
    }
}

//! Dense row-major `f64` matrices with the operations a recurrent network
//! needs: cache-blocked GEMM (rayon-parallel for large shapes) with fused
//! accumulate-into variants, transpose-free `AᵀB` / `ABᵀ` products for BPTT,
//! blocked transpose, broadcast row addition, element-wise maps and
//! reductions.
//!
//! The GEMM family is written around caller-owned output buffers
//! (`matmul_into` / `matmul_add_into`) so hot loops — LSTM/GRU steps, BPTT —
//! run allocation-free; the allocating `matmul` is a thin wrapper.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Row-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Default for Matrix {
    /// Empty 0×0 matrix (placeholder for lazily-sized scratch buffers).
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

/// GEMM goes parallel when the multiply-add count `m·n·k` reaches this
/// threshold (per the HPC guides: parallelism must pay for its overhead;
/// with the persistent pool a fork-join costs a few µs, so ~256k FLOPs is
/// the break-even on this container).
const PAR_FLOP_THRESHOLD: usize = 128 * 128 * 16;

/// K-panel size for the blocked GEMM kernel: a `KC × n` panel of B
/// (`KC * 8 * n` bytes) stays L1/L2-resident while `KC` rank-1 updates are
/// applied to each output row.
const KC: usize = 64;

/// Column-panel size: output and B rows are processed `NC` columns at a
/// time so one output row segment (8·NC bytes) stays register/L1 friendly
/// even for wide matrices.
const NC: usize = 512;

/// Tile edge for the blocked transpose (32×32 f64 tiles = two 4 KiB pages,
/// touching 32 cache lines per side — fits L1 comfortably).
const TRANSPOSE_TILE: usize = 32;

/// Serial blocked GEMM band: `out[r] += A[r] · B` for `r in 0..band_rows`,
/// where `A` is `(band_rows×k)`, `B` is `(k×n)` and `out` holds `band_rows`
/// rows of width `n`.
///
/// Register-blocked 2×4 micro-kernel inside k/j cache blocks: two output
/// rows are updated together so each B-row load feeds two FMA chains, and
/// k is unrolled ×4 to amortize the output-row load/store over four rank-1
/// updates.  All inner loops are unit-stride zips (bounds checks elide,
/// bodies auto-vectorize).
fn gemm_band(a: &[f64], k: usize, b: &[f64], n: usize, out: &mut [f64], band_rows: usize) {
    for jb in (0..n).step_by(NC) {
        let jw = NC.min(n - jb);
        for kb in (0..k).step_by(KC) {
            let kend = KC.min(k - kb) + kb;
            let mut r = 0;
            // Paired-row micro-kernel.
            while r + 2 <= band_rows {
                let a0_row = &a[r * k..(r + 1) * k];
                let a1_row = &a[(r + 1) * k..(r + 2) * k];
                let (head, tail) = out[r * n..].split_at_mut(n);
                let out0 = &mut head[jb..jb + jw];
                let out1 = &mut tail[jb..jb + jw];
                let mut ki = kb;
                while ki + 4 <= kend {
                    let (p0, p1, p2, p3) =
                        (a0_row[ki], a0_row[ki + 1], a0_row[ki + 2], a0_row[ki + 3]);
                    let (q0, q1, q2, q3) =
                        (a1_row[ki], a1_row[ki + 1], a1_row[ki + 2], a1_row[ki + 3]);
                    let b0 = &b[ki * n + jb..ki * n + jb + jw];
                    let b1 = &b[(ki + 1) * n + jb..(ki + 1) * n + jb + jw];
                    let b2 = &b[(ki + 2) * n + jb..(ki + 2) * n + jb + jw];
                    let b3 = &b[(ki + 3) * n + jb..(ki + 3) * n + jb + jw];
                    for (((((o0, o1), &v0), &v1), &v2), &v3) in out0
                        .iter_mut()
                        .zip(out1.iter_mut())
                        .zip(b0)
                        .zip(b1)
                        .zip(b2)
                        .zip(b3)
                    {
                        *o0 += p0 * v0 + p1 * v1 + p2 * v2 + p3 * v3;
                        *o1 += q0 * v0 + q1 * v1 + q2 * v2 + q3 * v3;
                    }
                    ki += 4;
                }
                while ki < kend {
                    let (p, q) = (a0_row[ki], a1_row[ki]);
                    let b_row = &b[ki * n + jb..ki * n + jb + jw];
                    for ((o0, o1), &bv) in out0.iter_mut().zip(out1.iter_mut()).zip(b_row) {
                        *o0 += p * bv;
                        *o1 += q * bv;
                    }
                    ki += 1;
                }
                r += 2;
            }
            // Remainder row.
            if r < band_rows {
                let a_row = &a[r * k..(r + 1) * k];
                let out_row = &mut out[r * n + jb..r * n + jb + jw];
                let mut ki = kb;
                while ki + 4 <= kend {
                    let (p0, p1, p2, p3) = (a_row[ki], a_row[ki + 1], a_row[ki + 2], a_row[ki + 3]);
                    let b0 = &b[ki * n + jb..ki * n + jb + jw];
                    let b1 = &b[(ki + 1) * n + jb..(ki + 1) * n + jb + jw];
                    let b2 = &b[(ki + 2) * n + jb..(ki + 2) * n + jb + jw];
                    let b3 = &b[(ki + 3) * n + jb..(ki + 3) * n + jb + jw];
                    for ((((o, &v0), &v1), &v2), &v3) in
                        out_row.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3)
                    {
                        *o += p0 * v0 + p1 * v1 + p2 * v2 + p3 * v3;
                    }
                    ki += 4;
                }
                while ki < kend {
                    let av = a_row[ki];
                    let b_row = &b[ki * n + jb..ki * n + jb + jw];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o += av * bv;
                    }
                    ki += 1;
                }
            }
        }
    }
}

/// Dot product with four accumulators (keeps the FMA pipeline full and
/// gives the vectorizer independent chains).
#[inline]
fn dot(x: &[f64], y: &[f64]) -> f64 {
    let n4 = x.len() & !3;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for (cx, cy) in x[..n4].chunks_exact(4).zip(y[..n4].chunks_exact(4)) {
        s0 += cx[0] * cy[0];
        s1 += cx[1] * cy[1];
        s2 += cx[2] * cy[2];
        s3 += cx[3] * cy[3];
    }
    let mut tail = 0.0;
    for (a, b) in x[n4..].iter().zip(&y[n4..]) {
        tail += a * b;
    }
    (s0 + s1) + (s2 + s3) + tail
}

impl Matrix {
    /// Zero matrix of shape `rows × cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds from a row-major vector.  Panics if sizes disagree.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds from nested rows (tests/readability; not a hot path).
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        Matrix {
            rows: r,
            cols: c,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Flat row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reshapes to `rows × cols`, reusing the allocation.  Contents are
    /// unspecified afterwards (every element will be overwritten by the
    /// caller); use [`resize_zeroed`](Self::resize_zeroed) when zeroes are
    /// required.
    pub fn resize_uninit(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshapes to `rows × cols` (reusing the allocation) and zero-fills.
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        self.resize_uninit(rows, cols);
        self.data.fill(0.0);
    }

    /// Becomes an element-wise copy of `src`, reusing the allocation.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.resize_uninit(src.rows, src.cols);
        self.data.copy_from_slice(&src.data);
    }

    /// `out = self · rhs` into a caller-owned buffer (resized as needed).
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        out.resize_zeroed(self.rows, rhs.cols);
        self.matmul_add_into(rhs, out);
    }

    /// `out += self · rhs` — the fused GEMM kernel.  Cache-blocked over k
    /// and the output columns; parallel over output row bands when the
    /// FLOP count justifies waking the pool.
    pub fn matmul_add_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            rhs.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            rhs.shape()
        );
        assert_eq!(
            out.shape(),
            (self.rows, rhs.cols),
            "matmul output shape mismatch"
        );
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        if m * k * n >= PAR_FLOP_THRESHOLD {
            let threads = rayon::current_num_threads();
            // ~2 bands per thread: enough slack for the chunk cursor to
            // absorb scheduling jitter without fragmenting the cache blocks.
            let band = m.div_ceil(2 * threads).max(1);
            let a = &self.data;
            let b = &rhs.data;
            out.data
                .par_chunks_mut(band * n)
                .enumerate()
                .for_each(|(bi, out_band)| {
                    let row0 = bi * band;
                    let rows = out_band.len() / n;
                    gemm_band(&a[row0 * k..(row0 + rows) * k], k, b, n, out_band, rows);
                });
        } else {
            gemm_band(&self.data, k, &rhs.data, n, &mut out.data, m);
        }
    }

    /// Matrix product `self · rhs` (allocating wrapper over
    /// [`matmul_into`](Self::matmul_into)).
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_add_into(rhs, &mut out);
        out
    }

    /// `out += selfᵀ · rhs` without materializing the transpose.
    ///
    /// `self` is `m × n`, `rhs` is `m × p`, `out` is `n × p`.  This is the
    /// BPTT weight-gradient product (`gW += xᵀ·da`): accumulation semantics
    /// fold the gradient add into the GEMM.  Per output row `r`, the inner
    /// loop runs unit-stride over rhs rows with the batch dimension
    /// unrolled ×4 to amortize output-row traffic.
    pub fn matmul_at_b_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows,
            rhs.rows,
            "matmul_at_b shape mismatch: {:?}ᵀ x {:?}",
            self.shape(),
            rhs.shape()
        );
        assert_eq!(
            out.shape(),
            (self.cols, rhs.cols),
            "matmul_at_b output shape mismatch"
        );
        let (m, n, p) = (self.rows, self.cols, rhs.cols);
        let a = &self.data;
        let b = &rhs.data;
        for r in 0..n {
            let out_row = &mut out.data[r * p..(r + 1) * p];
            let mut i = 0;
            while i + 4 <= m {
                let (a0, a1, a2, a3) = (
                    a[i * n + r],
                    a[(i + 1) * n + r],
                    a[(i + 2) * n + r],
                    a[(i + 3) * n + r],
                );
                let b0 = &b[i * p..(i + 1) * p];
                let b1 = &b[(i + 1) * p..(i + 2) * p];
                let b2 = &b[(i + 2) * p..(i + 3) * p];
                let b3 = &b[(i + 3) * p..(i + 4) * p];
                for ((((o, &v0), &v1), &v2), &v3) in
                    out_row.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3)
                {
                    *o += a0 * v0 + a1 * v1 + a2 * v2 + a3 * v3;
                }
                i += 4;
            }
            while i < m {
                let av = a[i * n + r];
                let b_row = &b[i * p..(i + 1) * p];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
                i += 1;
            }
        }
    }

    /// `selfᵀ · rhs` (allocating wrapper over
    /// [`matmul_at_b_into`](Self::matmul_at_b_into)).
    pub fn matmul_at_b(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        self.matmul_at_b_into(rhs, &mut out);
        out
    }

    /// `out = self · rhsᵀ` without materializing the transpose.
    ///
    /// `self` is `m × k`, `rhs` is `n × k`, `out` is `m × n`.  This is the
    /// BPTT input-gradient product (`dx = da·Wᵀ`): every output element is
    /// a dot product of two *contiguous* rows, so the kernel is pure
    /// unit-stride streams.
    pub fn matmul_a_bt_into(&self, rhs: &Matrix, out: &mut Matrix) {
        self.a_bt(rhs, out, false);
    }

    /// `out += self · rhsᵀ` (accumulating form of
    /// [`matmul_a_bt_into`](Self::matmul_a_bt_into); `out` must already be
    /// `m × n`).
    pub fn matmul_a_bt_add_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (self.rows, rhs.rows),
            "matmul_a_bt output shape mismatch"
        );
        self.a_bt(rhs, out, true);
    }

    fn a_bt(&self, rhs: &Matrix, out: &mut Matrix, accumulate: bool) {
        assert_eq!(
            self.cols,
            rhs.cols,
            "matmul_a_bt shape mismatch: {:?} x {:?}ᵀ",
            self.shape(),
            rhs.shape()
        );
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        if !accumulate {
            out.resize_uninit(m, n);
        }
        let a = &self.data;
        let b = &rhs.data;
        let kernel = |row0: usize, out_band: &mut [f64]| {
            for (r, out_row) in out_band.chunks_exact_mut(n).enumerate() {
                let a_row = &a[(row0 + r) * k..(row0 + r + 1) * k];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let d = dot(a_row, &b[j * k..(j + 1) * k]);
                    if accumulate {
                        *o += d;
                    } else {
                        *o = d;
                    }
                }
            }
        };
        if m * k * n >= PAR_FLOP_THRESHOLD {
            let threads = rayon::current_num_threads();
            let band = m.div_ceil(2 * threads).max(1);
            out.data
                .par_chunks_mut(band * n)
                .enumerate()
                .for_each(|(bi, out_band)| kernel(bi * band, out_band));
        } else {
            kernel(0, &mut out.data);
        }
    }

    /// `self · rhsᵀ` (allocating wrapper over
    /// [`matmul_a_bt_into`](Self::matmul_a_bt_into)).
    pub fn matmul_a_bt(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_a_bt_into(rhs, &mut out);
        out
    }

    /// Transpose, tiled so both the read and write sides touch whole cache
    /// lines within a tile (a naive row-major transpose strides the writes
    /// by `rows`, missing on every element for large shapes).
    ///
    /// The BPTT hot paths no longer call this — they use
    /// [`matmul_at_b_into`](Self::matmul_at_b_into) /
    /// [`matmul_a_bt_into`](Self::matmul_a_bt_into) — so it only runs on
    /// cold paths (tests, setup).
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        let t = TRANSPOSE_TILE;
        for rb in (0..self.rows).step_by(t) {
            let rend = (rb + t).min(self.rows);
            for cb in (0..self.cols).step_by(t) {
                let cend = (cb + t).min(self.cols);
                for r in rb..rend {
                    for c in cb..cend {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// Adds `row` (a 1×C matrix or C-slice) to every row (bias broadcast).
    pub fn add_row_in_place(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "broadcast width mismatch");
        for r in 0..self.rows {
            let base = r * self.cols;
            for (c, &v) in row.iter().enumerate() {
                self.data[base + c] += v;
            }
        }
    }

    /// Element-wise sum with another matrix, in place.
    pub fn add_in_place(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape());
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += alpha * other` (axpy).
    pub fn axpy_in_place(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape());
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape());
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a * b)
                .collect(),
        }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Scales every element by `s` in place.
    pub fn scale_in_place(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Sum of every element.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Column sums as a 1×C matrix (bias gradients).
    pub fn col_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        self.col_sums_add_into(&mut out);
        out
    }

    /// Accumulates column sums into a 1×C matrix (`out += Σ_r self[r]`),
    /// fusing the bias-gradient add.
    pub fn col_sums_add_into(&self, out: &mut Matrix) {
        assert_eq!(out.shape(), (1, self.cols), "col_sums output shape");
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, v) in out.data.iter_mut().zip(row) {
                *o += v;
            }
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Horizontal slice: columns `[from, to)` as a new matrix.
    pub fn cols_slice(&self, from: usize, to: usize) -> Matrix {
        assert!(from <= to && to <= self.cols);
        let w = to - from;
        let mut out = Matrix::zeros(self.rows, w);
        for r in 0..self.rows {
            out.data[r * w..(r + 1) * w]
                .copy_from_slice(&self.data[r * self.cols + from..r * self.cols + to]);
        }
        out
    }

    /// Writes `block` into columns `[from, from + block.cols)`.
    pub fn set_cols(&mut self, from: usize, block: &Matrix) {
        assert_eq!(self.rows, block.rows);
        assert!(from + block.cols <= self.cols);
        for r in 0..self.rows {
            self.data[r * self.cols + from..r * self.cols + from + block.cols]
                .copy_from_slice(block.row(r));
        }
    }

    /// Stacks matrices with identical column counts vertically.
    pub fn vstack(blocks: &[&Matrix]) -> Matrix {
        assert!(!blocks.is_empty());
        let cols = blocks[0].cols;
        assert!(blocks.iter().all(|b| b.cols == cols));
        let rows = blocks.iter().map(|b| b.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for b in blocks {
            data.extend_from_slice(&b.data);
        }
        Matrix { rows, cols, data }
    }

    /// Zeroes every element (gradient reset).
    pub fn zero_in_place(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a.get(i, k) * b.get(k, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    fn pseudo(rows: usize, cols: usize, seed: usize) -> Matrix {
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|i| (((i + seed) * 31 % 17) as f64 - 8.0) / 8.0)
                .collect(),
        )
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_small_known_result() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matmul_matches_naive_large_enough_to_go_parallel() {
        // 160x160: m·k·n = 4.1M >= threshold → exercises the pool path.
        let a = pseudo(160, 160, 1);
        let b = pseudo(160, 160, 2);
        assert_close(&a.matmul(&b), &naive_matmul(&a, &b), 1e-10);
    }

    #[test]
    fn matmul_matches_naive_awkward_shapes() {
        // Shapes chosen to leave K and N remainders against KC/NC and the
        // ×4 unroll.
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (32, 16, 256), (33, 67, 130)] {
            let a = pseudo(m, k, m + k);
            let b = pseudo(k, n, n);
            assert_close(&a.matmul(&b), &naive_matmul(&a, &b), 1e-10);
        }
    }

    #[test]
    fn matmul_add_into_accumulates() {
        let a = pseudo(4, 6, 3);
        let b = pseudo(6, 5, 4);
        let mut out = Matrix::full(4, 5, 1.0);
        a.matmul_add_into(&b, &mut out);
        let mut expect = naive_matmul(&a, &b);
        expect.add_row_in_place(&[0.0; 5]); // no-op, keep shape
        for v in expect.as_mut_slice() {
            *v += 1.0;
        }
        assert_close(&out, &expect, 1e-12);
    }

    #[test]
    fn matmul_at_b_matches_explicit_transpose() {
        for (m, n, p) in [(2, 3, 4), (32, 64, 256), (7, 5, 9)] {
            let a = pseudo(m, n, 5);
            let b = pseudo(m, p, 6);
            let expect = naive_matmul(&a.transpose(), &b);
            assert_close(&a.matmul_at_b(&b), &expect, 1e-10);
            // Accumulation semantics.
            let mut out = Matrix::full(n, p, 0.5);
            a.matmul_at_b_into(&b, &mut out);
            for (x, y) in out.as_slice().iter().zip(expect.as_slice()) {
                assert!((x - (y + 0.5)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn matmul_a_bt_matches_explicit_transpose() {
        for (m, k, n) in [(2, 3, 4), (32, 256, 64), (7, 5, 9), (64, 130, 64)] {
            let a = pseudo(m, k, 7);
            let b = pseudo(n, k, 8);
            let expect = naive_matmul(&a, &b.transpose());
            assert_close(&a.matmul_a_bt(&b), &expect, 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        a.matmul(&b);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn transpose_tiled_matches_naive_on_large_uneven_shapes() {
        let a = pseudo(67, 41, 9);
        let t = a.transpose();
        for r in 0..67 {
            for c in 0..41 {
                assert_eq!(t.get(c, r), a.get(r, c));
            }
        }
    }

    #[test]
    fn resize_and_copy_reuse_allocations() {
        let mut m = Matrix::zeros(4, 4);
        m.resize_zeroed(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.sum(), 0.0);
        let src = pseudo(3, 5, 1);
        m.copy_from(&src);
        assert_eq!(m, src);
        m.resize_uninit(1, 2);
        assert_eq!(m.shape(), (1, 2));
    }

    #[test]
    fn broadcast_and_elementwise() {
        let mut a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        a.add_row_in_place(&[10.0, 20.0]);
        assert_eq!(a, Matrix::from_rows(&[vec![11.0, 22.0], vec![13.0, 24.0]]));
        let b = Matrix::full(2, 2, 2.0);
        let h = a.hadamard(&b);
        assert_eq!(h.get(1, 1), 48.0);
        a.add_in_place(&b);
        assert_eq!(a.get(0, 0), 13.0);
        a.axpy_in_place(-1.0, &b);
        assert_eq!(a.get(0, 0), 11.0);
    }

    #[test]
    fn map_scale_sum_norm() {
        let mut a = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert_eq!(a.frobenius_norm(), 5.0);
        assert_eq!(a.sum(), 7.0);
        let sq = a.map(|x| x * x);
        assert_eq!(sq.as_slice(), &[9.0, 16.0]);
        a.scale_in_place(2.0);
        assert_eq!(a.as_slice(), &[6.0, 8.0]);
        a.map_in_place(|x| x - 6.0);
        assert_eq!(a.as_slice(), &[0.0, 2.0]);
        a.zero_in_place();
        assert_eq!(a.sum(), 0.0);
    }

    #[test]
    fn col_sums_and_slices() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 6.0, 7.0, 8.0]]);
        assert_eq!(a.col_sums().as_slice(), &[6.0, 8.0, 10.0, 12.0]);
        let mut acc = Matrix::full(1, 4, 1.0);
        a.col_sums_add_into(&mut acc);
        assert_eq!(acc.as_slice(), &[7.0, 9.0, 11.0, 13.0]);
        let mid = a.cols_slice(1, 3);
        assert_eq!(mid, Matrix::from_rows(&[vec![2.0, 3.0], vec![6.0, 7.0]]));
        let mut b = Matrix::zeros(2, 4);
        b.set_cols(2, &mid);
        assert_eq!(b.get(1, 2), 6.0);
        assert_eq!(b.get(0, 3), 3.0);
        assert_eq!(b.get(0, 0), 0.0);
    }

    #[test]
    fn vstack_blocks() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let s = Matrix::vstack(&[&a, &b]);
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Matrix::zeros(2, 2);
        assert!(!a.has_non_finite());
        a.set(1, 0, f64::NAN);
        assert!(a.has_non_finite());
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn from_rows_rejects_ragged() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn serde_round_trip() {
        let a = Matrix::from_rows(&[vec![1.5, -2.5]]);
        let s = serde_json::to_string(&a).unwrap();
        let b: Matrix = serde_json::from_str(&s).unwrap();
        assert_eq!(a, b);
    }
}

//! Activation functions and their derivatives.

use crate::matrix::Matrix;

/// Logistic sigmoid, numerically stable on both tails.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Derivative of sigmoid expressed from its *output* `s = sigmoid(x)`.
#[inline]
pub fn dsigmoid_from_output(s: f64) -> f64 {
    s * (1.0 - s)
}

/// Derivative of tanh expressed from its *output* `t = tanh(x)`.
#[inline]
pub fn dtanh_from_output(t: f64) -> f64 {
    1.0 - t * t
}

/// Rectified linear unit.
#[inline]
pub fn relu(x: f64) -> f64 {
    x.max(0.0)
}

/// Derivative of ReLU (0 at the kink, matching the usual convention).
#[inline]
pub fn drelu(x: f64) -> f64 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Element-wise sigmoid of a matrix.
pub fn sigmoid_m(m: &Matrix) -> Matrix {
    m.map(sigmoid)
}

/// Element-wise tanh of a matrix.
pub fn tanh_m(m: &Matrix) -> Matrix {
    m.map(f64::tanh)
}

/// Element-wise ReLU of a matrix.
pub fn relu_m(m: &Matrix) -> Matrix {
    m.map(relu)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_range_and_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(10.0) > 0.9999);
        assert!(sigmoid(-10.0) < 0.0001);
        for x in [-3.0, -1.0, 0.5, 2.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert_eq!(sigmoid(1000.0), 1.0);
        assert!(sigmoid(-1000.0).is_finite());
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for x in [-2.0, -0.5, 0.0, 0.7, 3.0] {
            let num = (sigmoid(x + eps) - sigmoid(x - eps)) / (2.0 * eps);
            let ana = dsigmoid_from_output(sigmoid(x));
            assert!((num - ana).abs() < 1e-8, "sigmoid' at {x}");
            let num_t = ((x + eps).tanh() - (x - eps).tanh()) / (2.0 * eps);
            let ana_t = dtanh_from_output(x.tanh());
            assert!((num_t - ana_t).abs() < 1e-8, "tanh' at {x}");
        }
    }

    #[test]
    fn relu_and_derivative() {
        assert_eq!(relu(-1.0), 0.0);
        assert_eq!(relu(2.5), 2.5);
        assert_eq!(drelu(-1.0), 0.0);
        assert_eq!(drelu(1.0), 1.0);
        assert_eq!(drelu(0.0), 0.0);
    }

    #[test]
    fn matrix_variants() {
        let m = Matrix::from_rows(&[vec![-1.0, 0.0, 1.0]]);
        assert_eq!(relu_m(&m).as_slice(), &[0.0, 0.0, 1.0]);
        let s = sigmoid_m(&m);
        assert!((s.get(0, 1) - 0.5).abs() < 1e-12);
        let t = tanh_m(&m);
        assert!((t.get(0, 2) - 1.0f64.tanh()).abs() < 1e-12);
    }
}

//! Activation functions and their derivatives.

use crate::matrix::Matrix;

/// Logistic sigmoid, numerically stable on both tails.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Derivative of sigmoid expressed from its *output* `s = sigmoid(x)`.
#[inline]
pub fn dsigmoid_from_output(s: f64) -> f64 {
    s * (1.0 - s)
}

/// Derivative of tanh expressed from its *output* `t = tanh(x)`.
#[inline]
pub fn dtanh_from_output(t: f64) -> f64 {
    1.0 - t * t
}

/// Rectified linear unit.
#[inline]
pub fn relu(x: f64) -> f64 {
    x.max(0.0)
}

/// Derivative of ReLU (0 at the kink, matching the usual convention).
#[inline]
pub fn drelu(x: f64) -> f64 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

// ---------------------------------------------------------------------------
// Fast batch activations
//
// libm `exp`/`tanh` cost ~5/~11 ns per scalar call on the bench host; an
// LSTM forward over seq 16 × batch 32 × hidden 64 makes ~160k such calls,
// which puts the transcendentals on par with the GEMMs.  The kernels below
// are branch-free (clamp + Cephes-style Padé after ln2 range reduction), so
// the loops in `sigmoid_slice`/`tanh_slice` auto-vectorize.  Absolute error
// is ~1e-16 — far below the 1e-4 tolerance of the finite-difference
// gradient checks, and consistent across forward/backward since both sides
// evaluate the same function.
// ---------------------------------------------------------------------------

const LOG2_E: f64 = std::f64::consts::LOG2_E;
// ln2 split high/low so `x - n*ln2` stays exact to double precision.
const LN2_HI: f64 = 6.931_471_803_691_238e-1;
const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
// 1.5 · 2^52: adding then subtracting rounds to nearest integer, and the
// low 32 bits of the sum's mantissa hold that integer in two's complement.
const ROUND_MAGIC: f64 = 6_755_399_441_055_744.0;

/// Branch-free `exp` accurate to ~1 ulp over the clamped range.  Inputs are
/// clamped to ±708 (the finite range of `f64` exp), which saturates rather
/// than overflows — exactly what sigmoid/tanh tails need.
#[inline(always)]
fn exp_fast(x: f64) -> f64 {
    let x = x.clamp(-708.0, 708.0);
    let t = x * LOG2_E + ROUND_MAGIC;
    let n = t - ROUND_MAGIC;
    let ni = (t.to_bits() as i64) << 32 >> 32; // sign-extended low 32 bits
    let r = x - n * LN2_HI - n * LN2_LO;
    // Cephes Padé: exp(r) = 1 + 2r·P(r²) / (Q(r²) − r·P(r²)), |r| ≤ ln2/2.
    let rr = r * r;
    let p = r * (rr * (rr * 1.261_771_930_748_105_9e-4 + 3.029_944_077_074_419_6e-2) + 1.0);
    let q = rr
        * (rr * (rr * 3.002_046_308_654_773_4e-6 + 2.524_483_403_496_841e-3)
            + 2.272_655_482_081_55e-1)
        + 2.0;
    let e = 1.0 + 2.0 * p / (q - p);
    e * f64::from_bits(((ni + 1023) as u64) << 52)
}

/// In-place sigmoid over a slice (vectorizing batch form of [`sigmoid`]).
pub fn sigmoid_slice(xs: &mut [f64]) {
    for x in xs {
        let e = exp_fast(-*x);
        *x = 1.0 / (1.0 + e);
    }
}

/// In-place tanh over a slice (vectorizing batch form of `f64::tanh`).
pub fn tanh_slice(xs: &mut [f64]) {
    for x in xs {
        let e = exp_fast(2.0 * *x);
        *x = (e - 1.0) / (e + 1.0);
    }
}

/// Element-wise sigmoid of a matrix.
pub fn sigmoid_m(m: &Matrix) -> Matrix {
    m.map(sigmoid)
}

/// Element-wise tanh of a matrix.
pub fn tanh_m(m: &Matrix) -> Matrix {
    m.map(f64::tanh)
}

/// Element-wise ReLU of a matrix.
pub fn relu_m(m: &Matrix) -> Matrix {
    m.map(relu)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_range_and_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(10.0) > 0.9999);
        assert!(sigmoid(-10.0) < 0.0001);
        for x in [-3.0, -1.0, 0.5, 2.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert_eq!(sigmoid(1000.0), 1.0);
        assert!(sigmoid(-1000.0).is_finite());
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for x in [-2.0, -0.5, 0.0, 0.7, 3.0] {
            let num = (sigmoid(x + eps) - sigmoid(x - eps)) / (2.0 * eps);
            let ana = dsigmoid_from_output(sigmoid(x));
            assert!((num - ana).abs() < 1e-8, "sigmoid' at {x}");
            let num_t = ((x + eps).tanh() - (x - eps).tanh()) / (2.0 * eps);
            let ana_t = dtanh_from_output(x.tanh());
            assert!((num_t - ana_t).abs() < 1e-8, "tanh' at {x}");
        }
    }

    #[test]
    fn relu_and_derivative() {
        assert_eq!(relu(-1.0), 0.0);
        assert_eq!(relu(2.5), 2.5);
        assert_eq!(drelu(-1.0), 0.0);
        assert_eq!(drelu(1.0), 1.0);
        assert_eq!(drelu(0.0), 0.0);
    }

    #[test]
    fn fast_batch_activations_match_libm() {
        let xs: Vec<f64> = (-4000..4000).map(|i| i as f64 / 100.0).collect();
        let mut sig = xs.clone();
        sigmoid_slice(&mut sig);
        let mut tan = xs.clone();
        tanh_slice(&mut tan);
        for (i, &x) in xs.iter().enumerate() {
            assert!(
                (sig[i] - sigmoid(x)).abs() < 1e-14,
                "sigmoid at {x}: {} vs {}",
                sig[i],
                sigmoid(x)
            );
            assert!(
                (tan[i] - x.tanh()).abs() < 1e-14,
                "tanh at {x}: {} vs {}",
                tan[i],
                x.tanh()
            );
        }
    }

    #[test]
    fn fast_activations_saturate_cleanly_at_extremes() {
        for x in [-1e4, -750.0, 750.0, 1e4, f64::MIN, f64::MAX] {
            let mut s = [x];
            sigmoid_slice(&mut s);
            assert!(s[0].is_finite() && (0.0..=1.0).contains(&s[0]), "sig({x})");
            let mut t = [x];
            tanh_slice(&mut t);
            assert!(t[0].is_finite() && t[0].abs() <= 1.0, "tanh({x})");
        }
    }

    #[test]
    fn matrix_variants() {
        let m = Matrix::from_rows(&[vec![-1.0, 0.0, 1.0]]);
        assert_eq!(relu_m(&m).as_slice(), &[0.0, 0.0, 1.0]);
        let s = sigmoid_m(&m);
        assert!((s.get(0, 1) - 0.5).abs() < 1e-12);
        let t = tanh_m(&m);
        assert!((t.get(0, 2) - 1.0f64.tanh()).abs() < 1e-12);
    }
}

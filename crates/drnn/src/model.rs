//! The DRNN model: a stack of recurrent layers with a dense regression head,
//! matching the paper's performance-prediction architecture (stacked LSTM →
//! linear output).
//!
//! Inference and training share one buffer-reusing code path
//! ([`Drnn::forward_train_into`]); the layer-sequence outputs live in the
//! [`DrnnCache`] so BPTT never re-clones inputs, and backward's gradient
//! sequence buffers ping-pong inside the model's own scratch.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::layer::{CellKind, DenseActivation, DenseCache, DenseLayer, Recurrent, RecurrentCache};
use crate::matrix::Matrix;

/// Architecture and initialization parameters of a [`Drnn`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DrnnConfig {
    /// Feature width of each input step.
    pub input: usize,
    /// Hidden width of each recurrent layer (one entry per layer).
    pub hidden: Vec<usize>,
    /// Output width (prediction dimension).
    pub output: usize,
    /// Recurrent cell kind.
    pub cell: CellKind,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl DrnnConfig {
    /// The paper-style default: 2 stacked LSTM layers of 64 units.
    pub fn paper_default(input: usize, output: usize) -> Self {
        DrnnConfig {
            input,
            hidden: vec![64, 64],
            output,
            cell: CellKind::Lstm,
            seed: 42,
        }
    }
}

/// Forward cache consumed by [`Drnn::backward`].  Reusable: feeding the
/// same cache to repeated [`Drnn::forward_train_into`] calls keeps every
/// per-step buffer allocation alive across batches.  `seqs[l]` holds the
/// hidden-state sequence produced by recurrent layer `l` (the input to
/// layer `l + 1`), so backward needs no input/output clones of its own.
#[derive(Debug, Clone, Default)]
pub struct DrnnCache {
    seqs: Vec<Vec<Matrix>>,
    rec: Vec<RecurrentCache>,
    head: DenseCache,
    seq_len: usize,
    batch: usize,
    hidden_last: usize,
}

/// Reusable backward scratch: the `∂L/∂h` sequence flowing down the stack
/// and the `∂L/∂x` sequence coming back, swapped between layers.
#[derive(Debug, Clone, Default)]
struct DrnnScratch {
    dh_last: Matrix,
    dhs: Vec<Matrix>,
    dxs: Vec<Matrix>,
}

/// A deep recurrent neural network for sequence-to-one regression.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Drnn {
    config: DrnnConfig,
    layers: Vec<Recurrent>,
    head: DenseLayer,
    #[serde(skip, default)]
    scratch: DrnnScratch,
}

impl Drnn {
    /// Builds a model from its configuration (seeded, reproducible).
    pub fn new(config: DrnnConfig) -> Self {
        assert!(
            !config.hidden.is_empty(),
            "need at least one recurrent layer"
        );
        assert!(config.input > 0 && config.output > 0);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut layers = Vec::with_capacity(config.hidden.len());
        let mut in_dim = config.input;
        for &h in &config.hidden {
            layers.push(Recurrent::new(config.cell, in_dim, h, &mut rng));
            in_dim = h;
        }
        let head = DenseLayer::new(in_dim, config.output, DenseActivation::Linear, &mut rng);
        Drnn {
            config,
            layers,
            head,
            scratch: DrnnScratch::default(),
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &DrnnConfig {
        &self.config
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .map(Recurrent::param_count)
            .sum::<usize>()
            + self.head.param_count()
    }

    /// Inference: runs the sequence (each step `B × input`) through the
    /// stack and returns the head output for the *last* step (`B × output`).
    pub fn predict(&self, xs: &[Matrix]) -> Matrix {
        // Same code path as training so the two agree bit-for-bit; hot
        // loops that predict repeatedly should hold a cache and use
        // `predict_into`.
        let (pred, _) = self.forward_train(xs);
        pred
    }

    /// Buffer-reusing inference: like [`predict`](Self::predict) but writes
    /// into a caller-owned output and reuses `cache` allocations across
    /// calls.
    pub fn predict_into(&self, xs: &[Matrix], cache: &mut DrnnCache, pred: &mut Matrix) {
        self.forward_train_into(xs, cache, pred);
    }

    /// Training forward pass: like [`predict`](Self::predict) but returns
    /// the cache needed by [`backward`](Self::backward).
    pub fn forward_train(&self, xs: &[Matrix]) -> (Matrix, DrnnCache) {
        let mut cache = DrnnCache::default();
        let mut pred = Matrix::default();
        self.forward_train_into(xs, &mut cache, &mut pred);
        (pred, cache)
    }

    /// Training forward pass into caller-owned, reusable buffers.
    pub fn forward_train_into(&self, xs: &[Matrix], cache: &mut DrnnCache, pred: &mut Matrix) {
        assert!(!xs.is_empty());
        let n_layers = self.layers.len();
        cache.seqs.resize_with(n_layers, Vec::new);
        while cache.rec.len() < n_layers {
            // Placeholder kind; `forward_into` reseeds on mismatch.
            cache.rec.push(RecurrentCache::Lstm(Default::default()));
        }
        cache.rec.truncate(n_layers);
        cache.seq_len = xs.len();
        cache.batch = xs[0].rows();
        cache.hidden_last = self.layers.last().unwrap().hidden_size();

        for (l, layer) in self.layers.iter().enumerate() {
            let (inputs, outputs) = if l == 0 {
                let (head, _) = cache.seqs.split_at_mut(1);
                (xs, &mut head[0])
            } else {
                let (prev, cur) = cache.seqs.split_at_mut(l);
                (&prev[l - 1][..], &mut cur[0])
            };
            layer.forward_into(inputs, outputs, &mut cache.rec[l]);
        }
        let last = cache.seqs[n_layers - 1].last().expect("non-empty sequence");
        self.head.forward_into(last, pred, &mut cache.head);
    }

    /// Backward pass: accumulates parameter gradients from `∂L/∂pred`.
    /// `xs` must be the same inputs given to the forward pass (the cache
    /// does not duplicate them).
    pub fn backward(&mut self, xs: &[Matrix], cache: &DrnnCache, dpred: &Matrix) {
        let Drnn {
            layers,
            head,
            scratch,
            ..
        } = self;

        // Head: gradient lands on the last hidden state of the top layer.
        let top_seq = cache.seqs.last().expect("forward_train populated cache");
        let last_h = top_seq.last().expect("non-empty sequence");
        head.backward_into(last_h, &cache.head, dpred, &mut scratch.dh_last);

        // Top layer sees gradient only at the final step.
        scratch.dhs.resize_with(cache.seq_len, Matrix::default);
        scratch.dhs.truncate(cache.seq_len);
        for (t, dh) in scratch.dhs.iter_mut().enumerate() {
            if t + 1 == cache.seq_len {
                dh.copy_from(&scratch.dh_last);
            } else {
                dh.resize_zeroed(cache.batch, cache.hidden_last);
            }
        }

        for l in (0..layers.len()).rev() {
            let inputs = if l == 0 { xs } else { &cache.seqs[l - 1][..] };
            layers[l].backward_into(
                inputs,
                &cache.seqs[l],
                &cache.rec[l],
                &scratch.dhs,
                &mut scratch.dxs,
            );
            std::mem::swap(&mut scratch.dhs, &mut scratch.dxs);
        }
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
        self.head.zero_grads();
    }

    /// Visits every `(param, grad)` pair in a stable order (optimizer use).
    pub fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        for layer in &mut self.layers {
            layer.for_each_param(f);
        }
        self.head.for_each_param(f);
    }

    /// Serializes the model (architecture + weights) to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serialization cannot fail")
    }

    /// Restores a model from [`to_json`](Self::to_json) output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(t: usize, b: usize, i: usize) -> Vec<Matrix> {
        (0..t)
            .map(|step| {
                Matrix::from_vec(
                    b,
                    i,
                    (0..b * i)
                        .map(|k| ((step * 3 + k * 5) % 7) as f64 / 7.0 - 0.5)
                        .collect(),
                )
            })
            .collect()
    }

    fn tiny(cell: CellKind) -> Drnn {
        Drnn::new(DrnnConfig {
            input: 3,
            hidden: vec![5, 4],
            output: 2,
            cell,
            seed: 11,
        })
    }

    #[test]
    fn predict_shape_and_determinism() {
        for cell in [CellKind::Lstm, CellKind::Gru] {
            let model = tiny(cell);
            let xs = seq(6, 3, 3);
            let y1 = model.predict(&xs);
            let y2 = model.predict(&xs);
            assert_eq!(y1.shape(), (3, 2));
            assert_eq!(y1, y2);
        }
    }

    #[test]
    fn same_seed_same_model() {
        let a = tiny(CellKind::Lstm);
        let b = tiny(CellKind::Lstm);
        let xs = seq(4, 1, 3);
        assert_eq!(a.predict(&xs), b.predict(&xs));
        let mut cfg = a.config().clone();
        cfg.seed = 12;
        let c = Drnn::new(cfg);
        assert_ne!(a.predict(&xs), c.predict(&xs));
    }

    #[test]
    fn forward_train_matches_predict() {
        let model = tiny(CellKind::Gru);
        let xs = seq(5, 2, 3);
        let (pred, _) = model.forward_train(&xs);
        assert_eq!(pred, model.predict(&xs));
    }

    #[test]
    fn cache_reuse_across_batch_shapes_matches_fresh() {
        for cell in [CellKind::Lstm, CellKind::Gru] {
            let model = tiny(cell);
            let mut cache = DrnnCache::default();
            let mut pred = Matrix::default();
            for (t, b) in [(5usize, 2usize), (3, 4), (6, 1)] {
                let xs = seq(t, b, 3);
                model.predict_into(&xs, &mut cache, &mut pred);
                assert_eq!(pred, model.predict(&xs), "{cell:?} seq {t} batch {b}");
            }
        }
    }

    #[test]
    fn param_count_consistent() {
        let model = tiny(CellKind::Lstm);
        // LSTM1: (3+5+1)*20 = 180; LSTM2: (5+4+1)*16 = 160; head: (4+1)*2 = 10
        assert_eq!(model.param_count(), 180 + 160 + 10);
    }

    /// End-to-end gradient check through the whole stack (2 layers + head).
    #[test]
    fn full_stack_gradients_match_finite_differences() {
        for cell in [CellKind::Lstm, CellKind::Gru] {
            let mut model = tiny(cell);
            let xs = seq(4, 2, 3);
            let target = Matrix::full(2, 2, 0.3);
            let loss = |m: &Drnn| {
                let p = m.predict(&xs);
                crate::loss::Loss::Mse.value(&p, &target)
            };
            let (pred, cache) = model.forward_train(&xs);
            let dpred = crate::loss::Loss::Mse.gradient(&pred, &target);
            model.zero_grads();
            model.backward(&xs, &cache, &dpred);

            let grads: Vec<Matrix> = {
                let mut out = Vec::new();
                model.for_each_param(&mut |_p, g| out.push(g.clone()));
                out
            };
            let eps = 1e-5;
            for (pi, analytic) in grads.iter().enumerate() {
                let len = analytic.as_slice().len();
                for k in [0usize, len / 2, len - 1] {
                    let base = {
                        let mut params = Vec::new();
                        model.for_each_param(&mut |p, _| params.push(p as *mut Matrix));
                        params[pi]
                    };
                    let orig = unsafe { (*base).as_slice()[k] };
                    unsafe { (*base).as_mut_slice()[k] = orig + eps };
                    let lp = loss(&model);
                    unsafe { (*base).as_mut_slice()[k] = orig - eps };
                    let lm = loss(&model);
                    unsafe { (*base).as_mut_slice()[k] = orig };
                    let numeric = (lp - lm) / (2.0 * eps);
                    let ana = analytic.as_slice()[k];
                    assert!(
                        (numeric - ana).abs() < 1e-5 * (1.0 + numeric.abs().max(ana.abs())),
                        "{cell:?} param {pi}[{k}]: numeric {numeric} vs analytic {ana}"
                    );
                }
            }
        }
    }

    #[test]
    fn json_round_trip_preserves_predictions() {
        let model = tiny(CellKind::Lstm);
        let json = model.to_json();
        let back = Drnn::from_json(&json).unwrap();
        let xs = seq(3, 1, 3);
        assert_eq!(model.predict(&xs), back.predict(&xs));
        assert_eq!(back.config(), model.config());
    }

    #[test]
    #[should_panic(expected = "need at least one recurrent layer")]
    fn rejects_empty_stack() {
        Drnn::new(DrnnConfig {
            input: 1,
            hidden: vec![],
            output: 1,
            cell: CellKind::Lstm,
            seed: 0,
        });
    }
}

#[cfg(test)]
mod multi_output_tests {
    use super::*;
    use crate::data::Sample;
    use crate::loss::Loss;
    use crate::train::{train, TrainConfig};

    #[test]
    fn multi_output_regression_learns_two_targets() {
        // Predict [sin(t/6), cos(t/6)] from the past 6 values of sin(t/6).
        let series: Vec<f64> = (0..300).map(|t| (t as f64 / 6.0).sin()).collect();
        let samples: Vec<Sample> = (0..294 - 1)
            .map(|i| Sample {
                window: (i..i + 6).map(|t| vec![series[t]]).collect(),
                target: vec![((i + 6) as f64 / 6.0).sin(), ((i + 6) as f64 / 6.0).cos()],
            })
            .collect();
        let mut model = Drnn::new(DrnnConfig {
            input: 1,
            hidden: vec![16],
            output: 2,
            cell: crate::layer::CellKind::Lstm,
            seed: 5,
        });
        let cfg = TrainConfig {
            epochs: 80,
            validation_fraction: 0.0,
            early_stopping: None,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &samples, &cfg);
        assert!(
            report.final_train_loss() < 0.02,
            "2-output loss {}",
            report.final_train_loss()
        );
        // Check output shape and that the two heads differ.
        let refs: Vec<&Sample> = samples[..1].iter().collect();
        let (xs, y) = crate::data::batch_to_matrices(&refs);
        let pred = model.predict(&xs);
        assert_eq!(pred.shape(), (1, 2));
        assert!(Loss::Mse.value(&pred, &y) < 0.05);
    }
}

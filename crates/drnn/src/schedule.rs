//! Learning-rate schedules applied per epoch by the training loop.

use serde::{Deserialize, Serialize};

/// How the learning rate evolves over epochs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum LrSchedule {
    /// The optimizer's base learning rate throughout.
    #[default]
    Constant,
    /// Multiply the rate by `factor` every `every` epochs.
    StepDecay {
        /// Epochs between decays (>= 1).
        every: usize,
        /// Multiplicative factor in `(0, 1]`.
        factor: f64,
    },
    /// Cosine annealing from the base rate down to `min_lr` over `t_max`
    /// epochs (then held at `min_lr`).
    Cosine {
        /// Epochs over which to anneal.
        t_max: usize,
        /// Terminal learning rate.
        min_lr: f64,
    },
    /// Linear warmup from `start_fraction × base` to the base rate over
    /// `epochs` epochs, constant afterwards.
    Warmup {
        /// Warmup length in epochs.
        epochs: usize,
        /// Starting fraction of the base rate in `(0, 1]`.
        start_fraction: f64,
    },
}

impl LrSchedule {
    /// Learning rate for `epoch` (0-based) given the optimizer's base rate.
    pub fn lr_at(&self, epoch: usize, base_lr: f64) -> f64 {
        match *self {
            LrSchedule::Constant => base_lr,
            LrSchedule::StepDecay { every, factor } => {
                assert!(every >= 1 && factor > 0.0 && factor <= 1.0);
                base_lr * factor.powi((epoch / every) as i32)
            }
            LrSchedule::Cosine { t_max, min_lr } => {
                assert!(t_max >= 1);
                if epoch >= t_max {
                    return min_lr;
                }
                let progress = epoch as f64 / t_max as f64;
                min_lr + (base_lr - min_lr) * 0.5 * (1.0 + (std::f64::consts::PI * progress).cos())
            }
            LrSchedule::Warmup {
                epochs,
                start_fraction,
            } => {
                assert!(start_fraction > 0.0 && start_fraction <= 1.0);
                if epochs == 0 || epoch >= epochs {
                    return base_lr;
                }
                let frac = start_fraction + (1.0 - start_fraction) * (epoch as f64 / epochs as f64);
                base_lr * frac
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_base() {
        for e in [0, 10, 1000] {
            assert_eq!(LrSchedule::Constant.lr_at(e, 0.01), 0.01);
        }
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = LrSchedule::StepDecay {
            every: 10,
            factor: 0.5,
        };
        assert_eq!(s.lr_at(0, 1.0), 1.0);
        assert_eq!(s.lr_at(9, 1.0), 1.0);
        assert_eq!(s.lr_at(10, 1.0), 0.5);
        assert_eq!(s.lr_at(25, 1.0), 0.25);
    }

    #[test]
    fn cosine_anneals_to_min_and_holds() {
        let s = LrSchedule::Cosine {
            t_max: 100,
            min_lr: 0.001,
        };
        assert!((s.lr_at(0, 0.1) - 0.1).abs() < 1e-12);
        let mid = s.lr_at(50, 0.1);
        assert!((mid - 0.0505).abs() < 1e-4, "midpoint {mid}");
        assert!((s.lr_at(100, 0.1) - 0.001).abs() < 1e-12);
        assert_eq!(s.lr_at(500, 0.1), 0.001);
        // Monotone decreasing over the annealing range.
        let mut last = f64::INFINITY;
        for e in 0..=100 {
            let lr = s.lr_at(e, 0.1);
            assert!(lr <= last + 1e-15);
            last = lr;
        }
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = LrSchedule::Warmup {
            epochs: 10,
            start_fraction: 0.1,
        };
        assert!((s.lr_at(0, 1.0) - 0.1).abs() < 1e-12);
        assert!((s.lr_at(5, 1.0) - 0.55).abs() < 1e-12);
        assert_eq!(s.lr_at(10, 1.0), 1.0);
        assert_eq!(s.lr_at(99, 1.0), 1.0);
    }
}

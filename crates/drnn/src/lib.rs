//! # drnn — a from-scratch deep recurrent neural network library
//!
//! This crate implements the Deep Recurrent Neural Network used by the
//! IPDPS 2019 paper's performance predictor, plus everything needed to
//! train it, with no external ML dependencies:
//!
//! * [`matrix`] — dense `f64` linear algebra with rayon-parallel GEMM;
//! * [`layer`] — LSTM and GRU cells (fused-gate GEMM formulation) and a
//!   dense head, all with exact BPTT gradients (finite-difference checked
//!   in the test suite);
//! * [`model`] — the stacked sequence-to-one regressor [`model::Drnn`];
//! * [`optim`] — SGD / Momentum / RMSProp / Adam with global-norm clipping;
//! * [`train`] — mini-batch training with validation and early stopping;
//! * [`data`] — z-score normalization and sliding-window dataset assembly;
//! * [`metrics`] — MAPE / SMAPE / RMSE / MAE / R².
//!
//! ## Quick example
//!
//! ```
//! use drnn::prelude::*;
//!
//! // y_t = sin(t/4): learn to predict the next value from 8 past values.
//! let series: Vec<f64> = (0..200).map(|t| (t as f64 / 4.0).sin()).collect();
//! let features: Vec<Vec<f64>> = series.iter().map(|&v| vec![v]).collect();
//! let samples = make_windows(&features, &series, 8, 1);
//! let (train_set, test_set) = split_train_test(&samples, 0.8);
//!
//! let mut model = Drnn::new(DrnnConfig {
//!     input: 1,
//!     hidden: vec![16],
//!     output: 1,
//!     cell: CellKind::Lstm,
//!     seed: 7,
//! });
//! let cfg = TrainConfig {
//!     epochs: 10,
//!     validation_fraction: 0.0,
//!     early_stopping: None,
//!     ..TrainConfig::default()
//! };
//! let report = train(&mut model, &train_set, &cfg);
//! assert!(report.final_train_loss() < report.train_loss[0]);
//! assert!(!test_set.is_empty());
//! ```

#![warn(missing_docs)]

pub mod activation;
pub mod data;
pub mod init;
pub mod layer;
pub mod loss;
pub mod matrix;
pub mod metrics;
pub mod model;
pub mod optim;
pub mod schedule;
pub mod train;

/// Commonly used items, re-exported.
pub mod prelude {
    pub use crate::data::{batch_to_matrices, make_windows, split_train_test, Normalizer, Sample};
    pub use crate::layer::CellKind;
    pub use crate::loss::Loss;
    pub use crate::matrix::Matrix;
    pub use crate::metrics::{mae, mape, r2, rmse, smape};
    pub use crate::model::{Drnn, DrnnConfig};
    pub use crate::optim::OptimizerKind;
    pub use crate::schedule::LrSchedule;
    pub use crate::train::{evaluate, train, EarlyStopping, TrainConfig, TrainReport};
}

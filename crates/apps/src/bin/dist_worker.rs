//! Worker-process binary for the evaluation applications on the
//! distributed runtime.
//!
//! Spawned by a coordinator (`dsdps::dist::submit`) with
//! `DSDPS_DIST_ADDR` / `DSDPS_DIST_WORKER` in its environment; builds
//! topologies from [`stream_apps::dist::registry`].  Running it by hand
//! does nothing useful — it exits with status 2.

fn main() {
    if !dsdps::dist::maybe_worker_from_env(&stream_apps::dist::registry()) {
        eprintln!(
            "dist_worker: not spawned by a coordinator \
             (DSDPS_DIST_ADDR / DSDPS_DIST_WORKER unset)"
        );
        std::process::exit(2);
    }
}

//! Fault scenarios: reusable schedules of misbehaving-worker disturbances
//! for the reliability experiments.  One scenario drives both runtimes:
//! [`FaultScenario::apply`] injects it into the simulator on virtual time,
//! [`FaultScenario::rt_plan`] converts it into a wall-clock
//! [`RtFaultPlan`] for the threaded runtime.

use dsdps::rt::{RtFault, RtFaultPlan};
use dsdps::sim::Fault;
use serde::{Deserialize, Serialize};

/// A named, serializable fault scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultScenario {
    /// Scenario name.
    pub name: String,
    /// The faults to inject.
    pub faults: Vec<Fault>,
}

impl FaultScenario {
    /// No faults (control run).
    pub fn none() -> Self {
        FaultScenario {
            name: "fault-free".into(),
            faults: Vec::new(),
        }
    }

    /// The paper's headline scenario: one worker misbehaves mid-run.
    /// `factor`× service-time slowdown on `worker` during `[from_s, until_s)`.
    pub fn single_misbehaving_worker(
        worker: usize,
        factor: f64,
        from_s: f64,
        until_s: f64,
    ) -> Self {
        FaultScenario {
            name: format!("worker{worker}-slowdown-{factor}x"),
            faults: vec![Fault::WorkerSlowdown {
                worker,
                factor,
                from_s,
                until_s,
            }],
        }
    }

    /// A resource-hogging co-located process on `machine`.
    pub fn cpu_hog(machine: usize, cores: f64, from_s: f64, until_s: f64) -> Self {
        FaultScenario {
            name: format!("machine{machine}-hog-{cores}cores"),
            faults: vec![Fault::ExternalLoad {
                machine,
                cores,
                from_s,
                until_s,
            }],
        }
    }

    /// Rolling degradation: each of `workers` misbehaves in turn for
    /// `each_s` seconds, starting at `from_s`.
    pub fn rolling_slowdowns(workers: &[usize], factor: f64, from_s: f64, each_s: f64) -> Self {
        let faults = workers
            .iter()
            .enumerate()
            .map(|(i, &worker)| Fault::WorkerSlowdown {
                worker,
                factor,
                from_s: from_s + i as f64 * each_s,
                until_s: from_s + (i + 1) as f64 * each_s,
            })
            .collect();
        FaultScenario {
            name: format!("rolling-{}workers-{factor}x", workers.len()),
            faults,
        }
    }

    /// Periodic background interference on a machine: load pulses of
    /// `cores` for `on_s` seconds every `every_s`, for `n` pulses.
    pub fn periodic_interference(
        machine: usize,
        cores: f64,
        from_s: f64,
        every_s: f64,
        on_s: f64,
        n: usize,
    ) -> Self {
        let faults = (0..n)
            .map(|i| Fault::ExternalLoad {
                machine,
                cores,
                from_s: from_s + i as f64 * every_s,
                until_s: from_s + i as f64 * every_s + on_s,
            })
            .collect();
        FaultScenario {
            name: format!("periodic-hog-m{machine}"),
            faults,
        }
    }

    /// Applies every fault to a simulation runtime.
    pub fn apply(&self, engine: &mut dsdps::sim::SimRuntime) -> dsdps::error::Result<()> {
        for f in &self.faults {
            engine.inject_fault(f.clone())?;
        }
        Ok(())
    }

    /// The wall-clock twin of [`apply`](Self::apply): the same schedule as a
    /// threaded-runtime fault plan, for [`dsdps::rt::submit_faulty`].
    pub fn rt_plan(&self) -> RtFaultPlan {
        RtFaultPlan::from_sim(&self.faults)
    }

    /// [`rt_plan`](Self::rt_plan) plus runtime-only task faults (panics,
    /// hangs, tuple drops) appended — chaos the simulator cannot express.
    pub fn rt_plan_with(&self, extra: impl IntoIterator<Item = RtFault>) -> RtFaultPlan {
        let mut plan = self.rt_plan();
        for f in extra {
            plan.push(f);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_have_valid_windows() {
        let scenarios = [
            FaultScenario::single_misbehaving_worker(2, 5.0, 300.0, 600.0),
            FaultScenario::cpu_hog(1, 6.0, 100.0, 200.0),
            FaultScenario::rolling_slowdowns(&[0, 1, 2], 4.0, 50.0, 30.0),
            FaultScenario::periodic_interference(0, 3.0, 10.0, 60.0, 15.0, 5),
        ];
        for s in &scenarios {
            assert!(s.faults.iter().all(Fault::is_valid), "{}", s.name);
        }
        assert!(FaultScenario::none().faults.is_empty());
    }

    #[test]
    fn rolling_slowdowns_are_back_to_back() {
        let s = FaultScenario::rolling_slowdowns(&[5, 6], 3.0, 100.0, 20.0);
        assert_eq!(s.faults.len(), 2);
        assert_eq!(s.faults[0].until_s(), s.faults[1].from_s());
    }

    #[test]
    fn periodic_pulses_do_not_overlap() {
        let s = FaultScenario::periodic_interference(0, 2.0, 0.0, 30.0, 10.0, 4);
        for w in s.faults.windows(2) {
            assert!(w[0].until_s() <= w[1].from_s());
        }
    }

    #[test]
    fn rt_plan_mirrors_sim_schedule() {
        let s = FaultScenario::single_misbehaving_worker(2, 5.0, 300.0, 600.0);
        let plan = s.rt_plan();
        assert_eq!(
            plan.faults,
            vec![RtFault::WorkerSlowdown {
                worker: 2,
                factor: 5.0,
                from_s: 300.0,
                until_s: 600.0,
            }]
        );

        let chaotic = s.rt_plan_with([RtFault::TaskPanic { task: 1, at_s: 0.5 }]);
        assert_eq!(chaotic.faults.len(), 2);
        assert!(chaotic.validate(4, 4, 2).is_ok());
        assert!(FaultScenario::none().rt_plan().is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let s = FaultScenario::single_misbehaving_worker(1, 4.0, 10.0, 20.0);
        let json = serde_json::to_string(&s).unwrap();
        let back: FaultScenario = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}

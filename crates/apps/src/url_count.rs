//! **Windowed URL Count** — the paper's first evaluation application.
//!
//! Topology:
//!
//! ```text
//! url-spout ──shuffle──► parse ──dynamic──► count ──global──► report
//! ```
//!
//! The spout replays a Zipf-skewed URL click stream at a time-varying rate;
//! `parse` extracts the domain; `count` keeps tumbling-window per-URL
//! counts; `report` merges the per-task partial counts into one window
//! report.  The `parse → count` edge uses **dynamic grouping** so the
//! control framework can steer tuples away from a misbehaving worker —
//! counts are kept *partial per task* and merged downstream precisely so
//! that re-steering never loses correctness, only locality.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use dsdps::component::{Bolt, BoltOutput, MessageId, Spout, SpoutOutput};
use dsdps::error::Result;
use dsdps::rt::checkpoint::{SnapshotKind, StateSnapshot, StatefulComponent};
use dsdps::topology::{CostModel, Topology, TopologyBuilder};
use dsdps::tuple::{Fields, Tuple, Value};

use crate::workload::{RateDriver, RatePattern, UrlCatalog};

/// Configuration of the Windowed URL Count topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UrlCountConfig {
    /// Arrival-rate curve of the click stream.
    pub pattern: RatePattern,
    /// URL catalog size.
    pub n_urls: usize,
    /// Zipf skew of URL popularity.
    pub zipf_s: f64,
    /// Parallelism of the parse bolt.
    pub parse_parallelism: usize,
    /// Parallelism of the count bolt (the controlled stage).
    pub count_parallelism: usize,
    /// Tumbling-window length, seconds.
    pub window_s: f64,
    /// Top-K URLs reported per window and task.
    pub top_k: usize,
    /// Use dynamic grouping on `parse → count` (fields grouping otherwise).
    pub dynamic_grouping: bool,
    /// Workload seed.
    pub seed: u64,
    /// Simulator cost of one spout emission (µs).
    pub spout_cost_us: f64,
    /// Simulator cost of one parse execution (µs).
    pub parse_cost_us: f64,
    /// Simulator cost of one count execution (µs).
    pub count_cost_us: f64,
}

impl Default for UrlCountConfig {
    fn default() -> Self {
        UrlCountConfig {
            pattern: RatePattern::paper_default(1200.0),
            n_urls: 5000,
            zipf_s: 1.1,
            parse_parallelism: 4,
            count_parallelism: 4,
            window_s: 5.0,
            top_k: 5,
            dynamic_grouping: true,
            seed: 42,
            spout_cost_us: 15.0,
            parse_cost_us: 60.0,
            count_cost_us: 90.0,
        }
    }
}

/// One closed window as seen by the report stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowReport {
    /// Window index (`floor(t / window_s)`).
    pub window: u64,
    /// Total clicks across all count tasks.
    pub total: u64,
    /// Distinct `(task, url)` partial rows merged.
    pub rows: usize,
    /// Most-clicked URL and its count.
    pub top_url: String,
    /// Count of the top URL.
    pub top_count: u64,
}

/// Shared observability of a running URL-count topology.
#[derive(Debug, Default)]
pub struct UrlCountStats {
    /// Tuples emitted by the spout.
    pub emitted: AtomicU64,
    /// Tuples counted by the count stage.
    pub counted: AtomicU64,
    /// Spout-tuple replays triggered by fails/timeouts.
    pub replays: AtomicU64,
    /// Finalized window reports.
    pub reports: Mutex<Vec<WindowReport>>,
}

/// The URL click spout.
struct UrlSpout {
    driver: RateDriver,
    catalog: UrlCatalog,
    next_id: MessageId,
    /// In-flight tuples for replay on failure.
    pending: HashMap<MessageId, Tuple>,
    /// Failed ids awaiting re-emission.
    replay_queue: Vec<MessageId>,
    stats: Arc<UrlCountStats>,
    /// Max emissions per poll, to bound event-queue bursts.
    batch_cap: u64,
    user_rng: StdRng,
}

impl UrlSpout {
    fn new(cfg: &UrlCountConfig, stats: Arc<UrlCountStats>) -> Self {
        UrlSpout {
            driver: RateDriver::new(cfg.pattern.clone()),
            catalog: UrlCatalog::new(cfg.n_urls, cfg.zipf_s, cfg.seed),
            next_id: 0,
            pending: HashMap::new(),
            replay_queue: Vec::new(),
            stats,
            batch_cap: 64,
            user_rng: StdRng::seed_from_u64(cfg.seed ^ 0x5EED),
        }
    }
}

impl Spout for UrlSpout {
    fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
        use rand::Rng;
        let now = out.now_s();
        // Replays first: reliability before fresh load.
        if let Some(id) = self.replay_queue.pop() {
            if let Some(tuple) = self.pending.get(&id) {
                out.emit_with_id(tuple.clone(), id);
                self.stats.replays.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        let due = self.driver.due(now).min(self.batch_cap);
        for _ in 0..due {
            let url = self.catalog.next_url().to_owned();
            let user: i64 = self.user_rng.gen_range(0..100_000);
            let tuple = Tuple::of([Value::from(url), Value::from(user), Value::from(now)]);
            self.next_id += 1;
            self.pending.insert(self.next_id, tuple.clone());
            out.emit_with_id(tuple, self.next_id);
        }
        if due > 0 {
            self.driver.emitted(due);
            self.stats.emitted.fetch_add(due, Ordering::Relaxed);
        }
        true
    }

    fn ack(&mut self, id: MessageId) {
        self.pending.remove(&id);
    }

    fn fail(&mut self, id: MessageId) {
        if self.pending.contains_key(&id) {
            self.replay_queue.push(id);
        }
    }
}

/// Extracts the domain from the URL.
struct ParseBolt;

impl Bolt for ParseBolt {
    fn execute(&mut self, tuple: &Tuple, out: &mut BoltOutput) {
        let Some(url) = tuple.get_by_field("url").and_then(Value::as_str) else {
            out.fail();
            return;
        };
        let domain = url
            .strip_prefix("http://")
            .or_else(|| url.strip_prefix("https://"))
            .unwrap_or(url)
            .split('/')
            .next()
            .unwrap_or("")
            .to_owned();
        let ts = tuple.get_by_field("ts").cloned().unwrap_or(Value::Null);
        out.emit(Tuple::of([
            tuple.get_by_field("url").cloned().unwrap_or(Value::Null),
            Value::from(domain),
            ts,
        ]));
    }
}

/// Tumbling-window partial counter (per task).
struct CountBolt {
    window_s: f64,
    top_k: usize,
    current_window: Option<u64>,
    counts: HashMap<Arc<str>, u64>,
    total: u64,
    stats: Arc<UrlCountStats>,
}

impl CountBolt {
    fn new(cfg: &UrlCountConfig, stats: Arc<UrlCountStats>) -> Self {
        CountBolt {
            window_s: cfg.window_s,
            top_k: cfg.top_k,
            current_window: None,
            counts: HashMap::new(),
            total: 0,
            stats,
        }
    }

    fn flush(&mut self, window: u64, out: &mut BoltOutput) {
        if self.total == 0 {
            return;
        }
        // Emit the top-K partial rows plus the task's total.
        let mut rows: Vec<(&Arc<str>, &u64)> = self.counts.iter().collect();
        rows.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        for (url, &count) in rows.into_iter().take(self.top_k) {
            out.emit_unanchored(Tuple::of([
                Value::from(window as i64),
                Value::Str(Arc::clone(url)),
                Value::from(count as i64),
            ]));
        }
        out.emit_unanchored(Tuple::of([
            Value::from(window as i64),
            Value::from("__total__"),
            Value::from(self.total as i64),
        ]));
        self.counts.clear();
        self.total = 0;
    }

    fn roll_to(&mut self, window: u64, out: &mut BoltOutput) {
        match self.current_window {
            None => self.current_window = Some(window),
            Some(w) if window > w => {
                self.flush(w, out);
                self.current_window = Some(window);
            }
            _ => {}
        }
    }
}

impl Bolt for CountBolt {
    fn execute(&mut self, tuple: &Tuple, out: &mut BoltOutput) {
        let window = (out.now_s() / self.window_s) as u64;
        self.roll_to(window, out);
        if let Some(Value::Str(url)) = tuple.get_by_field("url") {
            *self.counts.entry(Arc::clone(url)).or_insert(0) += 1;
            self.total += 1;
            self.stats.counted.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn tick(&mut self, out: &mut BoltOutput) {
        let window = (out.now_s() / self.window_s) as u64;
        self.roll_to(window, out);
    }

    fn stateful(&mut self) -> Option<&mut dyn StatefulComponent> {
        Some(self)
    }
}

/// Snapshot image of a [`CountBolt`]: current window, per-URL counts
/// (sorted for a deterministic encoding), running total.
type CountState = (Option<u64>, Vec<(String, u64)>, u64);

impl StatefulComponent for CountBolt {
    fn snapshot(&mut self) -> StateSnapshot {
        let mut counts: Vec<(String, u64)> = self
            .counts
            .iter()
            .map(|(url, &n)| (url.to_string(), n))
            .collect();
        counts.sort();
        let state: CountState = (self.current_window, counts, self.total);
        StateSnapshot::encode(SnapshotKind::Full, &state)
    }

    fn restore(
        &mut self,
        base: &StateSnapshot,
        deltas: &[StateSnapshot],
    ) -> std::result::Result<(), String> {
        if !deltas.is_empty() {
            return Err("CountBolt snapshots are full-only".into());
        }
        let (window, counts, total): CountState = base.decode()?;
        self.current_window = window;
        self.counts = counts
            .into_iter()
            .map(|(url, n)| (Arc::<str>::from(url.as_str()), n))
            .collect();
        self.total = total;
        Ok(())
    }
}

/// Merges partial rows from all count tasks into per-window reports.
struct ReportBolt {
    stats: Arc<UrlCountStats>,
    /// window → (total, rows, best)
    open: HashMap<u64, (u64, usize, String, u64)>,
}

impl ReportBolt {
    fn new(stats: Arc<UrlCountStats>) -> Self {
        ReportBolt {
            stats,
            open: HashMap::new(),
        }
    }

    fn finalize_older_than(&mut self, window: u64) {
        let closed: Vec<u64> = self.open.keys().filter(|&&w| w < window).copied().collect();
        for w in closed {
            let (total, rows, top_url, top_count) = self.open.remove(&w).unwrap();
            self.stats.reports.lock().push(WindowReport {
                window: w,
                total,
                rows,
                top_url,
                top_count,
            });
        }
    }
}

impl Bolt for ReportBolt {
    fn execute(&mut self, tuple: &Tuple, out: &mut BoltOutput) {
        let _ = out;
        let (Some(window), Some(key), Some(count)) = (
            tuple.get(0).and_then(Value::as_i64),
            tuple.get(1).and_then(Value::as_str),
            tuple.get(2).and_then(Value::as_i64),
        ) else {
            return;
        };
        let window = window as u64;
        let count = count as u64;
        let entry = self
            .open
            .entry(window)
            .or_insert_with(|| (0, 0, String::new(), 0));
        entry.1 += 1;
        if key == "__total__" {
            entry.0 += count;
        } else if count > entry.3 {
            entry.2 = key.to_owned();
            entry.3 = count;
        }
        // Rows for window w-2 can no longer arrive (tasks flush promptly).
        self.finalize_older_than(window.saturating_sub(1));
    }
}

/// Builds the Windowed URL Count topology.  The returned stats handle is
/// shared with every component instance.
pub fn build_url_count(cfg: &UrlCountConfig) -> Result<(Topology, Arc<UrlCountStats>)> {
    let stats = Arc::new(UrlCountStats::default());
    let mut b = TopologyBuilder::new("windowed-url-count");

    let spout_cfg = cfg.clone();
    let spout_stats = stats.clone();
    b.set_spout("url-spout", 1, move || {
        UrlSpout::new(&spout_cfg, spout_stats.clone())
    })?
    .output_fields(Fields::new(["url", "user", "ts"]))
    .cost(CostModel {
        base_service_time_us: cfg.spout_cost_us,
        jitter: 0.05,
    });

    b.set_bolt("parse", cfg.parse_parallelism, || ParseBolt)?
        .output_fields(Fields::new(["url", "domain", "ts"]))
        .cost(CostModel {
            base_service_time_us: cfg.parse_cost_us,
            jitter: 0.1,
        })
        .shuffle_grouping("url-spout")?;

    let count_cfg = cfg.clone();
    let count_stats = stats.clone();
    {
        let mut count = b.set_bolt("count", cfg.count_parallelism, move || {
            CountBolt::new(&count_cfg, count_stats.clone())
        })?;
        count
            .output_fields(Fields::new(["window", "key", "count"]))
            .cost(CostModel {
                base_service_time_us: cfg.count_cost_us,
                jitter: 0.1,
            });
        if cfg.dynamic_grouping {
            count.dynamic_grouping("parse")?;
        } else {
            count.fields_grouping("parse", &["url"])?;
        }
    }

    let report_stats = stats.clone();
    b.set_bolt("report", 1, move || ReportBolt::new(report_stats.clone()))?
        .cost(CostModel {
            base_service_time_us: 20.0,
            jitter: 0.05,
        })
        .global_grouping("count")?;

    Ok((b.build()?, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsdps::config::EngineConfig;
    use dsdps::sim::SimRuntime;
    use dsdps::stream::StreamId;

    fn small_cfg() -> UrlCountConfig {
        UrlCountConfig {
            pattern: RatePattern::Constant { rate: 500.0 },
            n_urls: 200,
            parse_parallelism: 2,
            count_parallelism: 3,
            window_s: 2.0,
            ..UrlCountConfig::default()
        }
    }

    #[test]
    fn topology_shape() {
        let (topo, _) = build_url_count(&small_cfg()).unwrap();
        assert_eq!(topo.components().count(), 4);
        assert_eq!(topo.task_count(), 1 + 2 + 3 + 1);
        assert!(topo
            .dynamic_handle("parse", &StreamId::default(), "count")
            .is_some());
    }

    #[test]
    fn fields_grouping_variant_has_no_dynamic_handle() {
        let cfg = UrlCountConfig {
            dynamic_grouping: false,
            ..small_cfg()
        };
        let (topo, _) = build_url_count(&cfg).unwrap();
        assert!(topo
            .dynamic_handle("parse", &StreamId::default(), "count")
            .is_none());
    }

    #[test]
    fn runs_and_counts_match_emissions() {
        let (topo, stats) = build_url_count(&small_cfg()).unwrap();
        let mut engine = SimRuntime::new(topo, EngineConfig::default()).unwrap();
        let report = engine.run_until(10.0);
        let emitted = stats.emitted.load(Ordering::Relaxed);
        let counted = stats.counted.load(Ordering::Relaxed);
        assert!(emitted > 4000, "emitted {emitted}");
        // Everything emitted (minus in-flight tail) must reach the counter.
        assert!(
            counted as f64 > emitted as f64 * 0.95,
            "{counted}/{emitted}"
        );
        assert_eq!(report.failed, 0);
        assert!(report.acked > 0);
    }

    #[test]
    fn windows_close_and_totals_are_consistent() {
        let (topo, stats) = build_url_count(&small_cfg()).unwrap();
        let mut engine = SimRuntime::new(topo, EngineConfig::default()).unwrap();
        engine.run_until(21.0);
        let reports = stats.reports.lock();
        assert!(reports.len() >= 5, "got {} window reports", reports.len());
        for r in reports.iter() {
            assert!(r.total > 0);
            assert!(r.top_count > 0);
            assert!(r.top_count <= r.total);
            assert!(r.top_url.starts_with("http://"));
        }
        // ~500 t/s over 2 s windows → totals near 1000 each.
        let mid = &reports[2];
        assert!(
            mid.total > 500 && mid.total < 1600,
            "window total {} out of range",
            mid.total
        );
    }

    #[test]
    fn zipf_head_dominates_window_top() {
        let (topo, stats) = build_url_count(&UrlCountConfig {
            zipf_s: 1.4,
            ..small_cfg()
        })
        .unwrap();
        let mut engine = SimRuntime::new(topo, EngineConfig::default()).unwrap();
        engine.run_until(15.0);
        let reports = stats.reports.lock();
        assert!(!reports.is_empty());
        // With heavy skew the top URL takes a sizeable share of each window.
        let r = &reports[1];
        assert!(
            r.top_count as f64 > r.total as f64 * 0.05,
            "top {} of {}",
            r.top_count,
            r.total
        );
    }

    #[test]
    fn spout_replays_failed_tuples() {
        let stats = Arc::new(UrlCountStats::default());
        let cfg = small_cfg();
        let mut spout = UrlSpout::new(&cfg, stats.clone());
        let mut out = SpoutOutput::new();
        out.set_now(0.1);
        spout.next_tuple(&mut out);
        let emissions = out.drain();
        assert!(!emissions.is_empty());
        let id = emissions[0].message_id.unwrap();
        spout.fail(id);
        out.set_now(0.1001);
        spout.next_tuple(&mut out);
        let replayed = out.drain();
        assert_eq!(
            replayed[0].message_id,
            Some(id),
            "failed tuple re-emitted first"
        );
        assert_eq!(stats.replays.load(Ordering::Relaxed), 1);
        // Acked tuples are forgotten and cannot replay.
        spout.ack(id);
        spout.fail(id);
        out.set_now(0.1002);
        spout.next_tuple(&mut out);
        let after_ack = out.drain();
        assert!(after_ack.iter().all(|e| e.message_id != Some(id)));
    }

    #[test]
    fn count_bolt_snapshot_restore_round_trips() {
        let stats = Arc::new(UrlCountStats::default());
        let cfg = small_cfg();
        let mut bolt = CountBolt::new(&cfg, stats.clone());
        let mut out = BoltOutput::new();
        let click = |url: &str| {
            Tuple::with_fields(
                [Value::from(url), Value::from("d"), Value::from(0.5)],
                Fields::new(["url", "domain", "ts"]),
            )
        };
        out.set_now(0.5);
        bolt.execute(&click("http://a.com/1"), &mut out);
        bolt.execute(&click("http://a.com/1"), &mut out);
        bolt.execute(&click("http://b.com/2"), &mut out);
        let snap = bolt.snapshot();

        let mut fresh = CountBolt::new(&cfg, stats);
        fresh.restore(&snap, &[]).unwrap();
        assert_eq!(fresh.total, 3);
        assert_eq!(fresh.current_window, Some(0));
        assert_eq!(fresh.counts.len(), 2);
        // The restored bolt flushes the pre-snapshot window intact.
        out.drain();
        out.set_now(cfg.window_s + 0.1);
        fresh.tick(&mut out);
        let (emissions, _) = out.drain();
        let total = emissions
            .iter()
            .find(|e| e.tuple.get(1).unwrap().as_str() == Some("__total__"))
            .unwrap();
        assert_eq!(total.tuple.get(2).unwrap().as_i64(), Some(3));
        assert!(
            fresh.restore(&snap, std::slice::from_ref(&snap)).is_err(),
            "full-only"
        );
    }

    #[test]
    fn parse_bolt_extracts_domain() {
        let mut bolt = ParseBolt;
        let mut out = BoltOutput::new();
        let t = Tuple::with_fields(
            [
                Value::from("http://site7.example.com/page123"),
                Value::from(5i64),
                Value::from(1.5),
            ],
            Fields::new(["url", "user", "ts"]),
        );
        bolt.execute(&t, &mut out);
        let (emissions, failed) = out.drain();
        assert!(!failed);
        assert_eq!(
            emissions[0].tuple.get(1).unwrap().as_str(),
            Some("site7.example.com")
        );
    }

    #[test]
    fn parse_bolt_fails_malformed_tuple() {
        let mut bolt = ParseBolt;
        let mut out = BoltOutput::new();
        bolt.execute(&Tuple::of([Value::from(1i64)]), &mut out);
        let (_, failed) = out.drain();
        assert!(failed);
    }
}

//! Distributed-runtime entry points for the evaluation applications.
//!
//! [`registry`] names both paper applications so a coordinator and a
//! fleet of `dist_worker` processes build *identical* topology structures
//! from the same opaque `args` string (here `"rate:seed"`).  The
//! [`Arc`](std::sync::Arc)-backed stats handles the in-process builders
//! return stay local to whichever process built them — across the process
//! boundary the coordinator's
//! [`DistReport`](dsdps::dist::DistReport) (acks, conservation, journal,
//! final snapshots) is the observation channel.
//!
//! The matching worker binary is `dist_worker` (`src/bin/dist_worker.rs`):
//! its whole `main` is a [`dsdps::dist::maybe_worker_from_env`] call
//! against this registry.

use dsdps::dist::TopologyRegistry;
use dsdps::error::Result;
use dsdps::topology::Topology;

use crate::continuous_queries::{build_continuous_queries, CqConfig};
use crate::url_count::{build_url_count, UrlCountConfig};
use crate::workload::RatePattern;

/// Parses `"rate:seed"` (both parts optional) into a constant arrival
/// rate and a workload seed.
fn parse_args(args: &str) -> (f64, u64) {
    let mut it = args.split(':');
    let rate = it.next().and_then(|s| s.parse().ok()).unwrap_or(800.0);
    let seed = it.next().and_then(|s| s.parse().ok()).unwrap_or(42);
    (rate, seed)
}

/// Windowed URL Count at a constant arrival rate; `args` is
/// `"rate:seed"`.  Shorter windows than the paper default so smoke runs
/// close windows quickly.
pub fn build_url_count_dist(args: &str) -> Result<Topology> {
    let (rate, seed) = parse_args(args);
    let cfg = UrlCountConfig {
        pattern: RatePattern::Constant { rate },
        seed,
        window_s: 1.0,
        ..UrlCountConfig::default()
    };
    build_url_count(&cfg).map(|(topo, _stats)| topo)
}

/// Continuous Queries at a constant arrival rate; `args` is
/// `"rate:seed"`.
pub fn build_continuous_queries_dist(args: &str) -> Result<Topology> {
    let (rate, seed) = parse_args(args);
    let cfg = CqConfig {
        pattern: RatePattern::Constant { rate },
        seed,
        window_s: 1.0,
        ..CqConfig::default()
    };
    build_continuous_queries(&cfg).map(|(topo, _stats)| topo)
}

/// Registry of both evaluation applications, shared by coordinators and
/// the `dist_worker` binary.
pub fn registry() -> TopologyRegistry {
    let mut r = TopologyRegistry::new();
    r.register("url-count", build_url_count_dist);
    r.register("continuous-queries", build_continuous_queries_dist);
    r
}

//! **Continuous Queries** — the paper's second evaluation application.
//!
//! Topology:
//!
//! ```text
//! sensor-spout ──dynamic──► query ──global──► alert
//! ```
//!
//! A fleet of simulated devices streams readings; the `query` stage
//! evaluates a set of *standing queries* (predicate + windowed aggregate)
//! against every reading and emits one result row per query per window;
//! `alert` collects the results.  The `spout → query` edge uses dynamic
//! grouping: any query task can evaluate any reading because the standing
//! queries are replicated state, so redirecting tuples is always safe.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use dsdps::component::{Bolt, BoltOutput, MessageId, Spout, SpoutOutput};
use dsdps::error::Result;
use dsdps::rt::checkpoint::{SnapshotKind, StateSnapshot, StatefulComponent};
use dsdps::topology::{CostModel, Topology, TopologyBuilder};
use dsdps::tuple::{Fields, Tuple, Value};

use crate::workload::{RateDriver, RatePattern};

/// Metrics a device reports.
pub const METRICS: [&str; 3] = ["temperature", "load", "rate"];

/// Comparison operator of a query predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryOp {
    /// Value strictly greater than the threshold.
    Gt,
    /// Value strictly less than the threshold.
    Lt,
}

/// Windowed aggregate of a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryAgg {
    /// Number of matching readings.
    Count,
    /// Mean of matching values.
    Avg,
    /// Maximum matching value.
    Max,
}

/// A standing query: `SELECT agg(value) FROM stream WHERE metric = m AND
/// value op threshold GROUP BY window`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Query id.
    pub id: u32,
    /// Metric filter.
    pub metric: String,
    /// Predicate operator.
    pub op: QueryOp,
    /// Predicate threshold.
    pub threshold: f64,
    /// Aggregate.
    pub agg: QueryAgg,
}

impl Query {
    /// Whether a reading satisfies the predicate.
    pub fn matches(&self, metric: &str, value: f64) -> bool {
        if metric != self.metric {
            return false;
        }
        match self.op {
            QueryOp::Gt => value > self.threshold,
            QueryOp::Lt => value < self.threshold,
        }
    }
}

/// Generates `n` deterministic standing queries.
pub fn generate_queries(n: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n as u32)
        .map(|id| {
            let metric = METRICS[rng.gen_range(0..METRICS.len())].to_owned();
            let op = if rng.gen_bool(0.5) {
                QueryOp::Gt
            } else {
                QueryOp::Lt
            };
            let threshold = rng.gen_range(20.0..80.0);
            let agg = match rng.gen_range(0..3) {
                0 => QueryAgg::Count,
                1 => QueryAgg::Avg,
                _ => QueryAgg::Max,
            };
            Query {
                id,
                metric,
                op,
                threshold,
                agg,
            }
        })
        .collect()
}

/// One emitted query result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// Query id.
    pub query: u32,
    /// Window index.
    pub window: u64,
    /// Aggregate value.
    pub value: f64,
    /// Matching readings in the window (for Avg/Max provenance).
    pub matched: u64,
}

/// Shared observability of a running CQ topology.
#[derive(Debug, Default)]
pub struct CqStats {
    /// Readings emitted by the spout.
    pub emitted: AtomicU64,
    /// Predicate evaluations performed.
    pub evaluated: AtomicU64,
    /// Readings that matched at least one query.
    pub matched: AtomicU64,
    /// Collected query results.
    pub results: Mutex<Vec<QueryResult>>,
}

/// Configuration of the Continuous Queries topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CqConfig {
    /// Arrival-rate curve of the readings stream.
    pub pattern: RatePattern,
    /// Number of simulated devices.
    pub n_devices: usize,
    /// Number of standing queries.
    pub n_queries: usize,
    /// Parallelism of the query stage (the controlled stage).
    pub query_parallelism: usize,
    /// Window length, seconds.
    pub window_s: f64,
    /// Use dynamic grouping on `spout → query` (shuffle otherwise).
    pub dynamic_grouping: bool,
    /// Workload seed.
    pub seed: u64,
    /// Simulator cost of one spout emission (µs).
    pub spout_cost_us: f64,
    /// Simulator cost of one query-stage execution (µs).
    pub query_cost_us: f64,
}

impl Default for CqConfig {
    fn default() -> Self {
        CqConfig {
            pattern: RatePattern::paper_default(1000.0),
            n_devices: 500,
            n_queries: 40,
            query_parallelism: 4,
            window_s: 5.0,
            dynamic_grouping: true,
            seed: 42,
            spout_cost_us: 15.0,
            query_cost_us: 120.0,
        }
    }
}

/// Sensor-reading spout: per-device random-walk values.
struct SensorSpout {
    driver: RateDriver,
    values: Vec<f64>,
    next_id: MessageId,
    pending: HashMap<MessageId, Tuple>,
    replay_queue: Vec<MessageId>,
    stats: Arc<CqStats>,
    rng: StdRng,
    batch_cap: u64,
}

impl SensorSpout {
    fn new(cfg: &CqConfig, stats: Arc<CqStats>) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let values = (0..cfg.n_devices)
            .map(|_| rng.gen_range(20.0..80.0))
            .collect();
        SensorSpout {
            driver: RateDriver::new(cfg.pattern.clone()),
            values,
            next_id: 0,
            pending: HashMap::new(),
            replay_queue: Vec::new(),
            stats,
            rng,
            batch_cap: 64,
        }
    }
}

impl Spout for SensorSpout {
    fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
        let now = out.now_s();
        if let Some(id) = self.replay_queue.pop() {
            if let Some(tuple) = self.pending.get(&id) {
                out.emit_with_id(tuple.clone(), id);
                return true;
            }
        }
        let due = self.driver.due(now).min(self.batch_cap);
        for _ in 0..due {
            let device = self.rng.gen_range(0..self.values.len());
            let metric = METRICS[device % METRICS.len()];
            let v = &mut self.values[device];
            *v = (*v + self.rng.gen_range(-2.0..2.0)).clamp(0.0, 100.0);
            let tuple = Tuple::of([
                Value::from(device),
                Value::from(metric),
                Value::from(*v),
                Value::from(now),
            ]);
            self.next_id += 1;
            self.pending.insert(self.next_id, tuple.clone());
            out.emit_with_id(tuple, self.next_id);
        }
        if due > 0 {
            self.driver.emitted(due);
            self.stats.emitted.fetch_add(due, Ordering::Relaxed);
        }
        true
    }

    fn ack(&mut self, id: MessageId) {
        self.pending.remove(&id);
    }

    fn fail(&mut self, id: MessageId) {
        if self.pending.contains_key(&id) {
            self.replay_queue.push(id);
        }
    }
}

#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
struct WindowAcc {
    count: u64,
    sum: f64,
    max: f64,
}

/// Evaluates all standing queries against each reading; emits one result
/// row per query per window.
struct QueryBolt {
    queries: Vec<Query>,
    window_s: f64,
    current_window: Option<u64>,
    acc: Vec<WindowAcc>,
    stats: Arc<CqStats>,
}

impl QueryBolt {
    fn new(queries: Vec<Query>, window_s: f64, stats: Arc<CqStats>) -> Self {
        let acc = vec![WindowAcc::default(); queries.len()];
        QueryBolt {
            queries,
            window_s,
            current_window: None,
            acc,
            stats,
        }
    }

    fn flush(&mut self, window: u64, out: &mut BoltOutput) {
        for (q, a) in self.queries.iter().zip(&mut self.acc) {
            if a.count == 0 {
                continue;
            }
            let value = match q.agg {
                QueryAgg::Count => a.count as f64,
                QueryAgg::Avg => a.sum / a.count as f64,
                QueryAgg::Max => a.max,
            };
            out.emit_unanchored(Tuple::of([
                Value::from(q.id as i64),
                Value::from(window as i64),
                Value::from(value),
                Value::from(a.count as i64),
            ]));
            *a = WindowAcc::default();
        }
    }

    fn roll_to(&mut self, window: u64, out: &mut BoltOutput) {
        match self.current_window {
            None => self.current_window = Some(window),
            Some(w) if window > w => {
                self.flush(w, out);
                self.current_window = Some(window);
            }
            _ => {}
        }
    }
}

impl Bolt for QueryBolt {
    fn execute(&mut self, tuple: &Tuple, out: &mut BoltOutput) {
        let window = (out.now_s() / self.window_s) as u64;
        self.roll_to(window, out);
        let (Some(metric), Some(value)) = (
            tuple.get(1).and_then(Value::as_str),
            tuple.get(2).and_then(Value::as_f64),
        ) else {
            out.fail();
            return;
        };
        let mut any = false;
        for (q, a) in self.queries.iter().zip(&mut self.acc) {
            self.stats.evaluated.fetch_add(1, Ordering::Relaxed);
            if q.matches(metric, value) {
                a.count += 1;
                a.sum += value;
                a.max = if a.count == 1 {
                    value
                } else {
                    a.max.max(value)
                };
                any = true;
            }
        }
        if any {
            self.stats.matched.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn tick(&mut self, out: &mut BoltOutput) {
        let window = (out.now_s() / self.window_s) as u64;
        self.roll_to(window, out);
    }

    fn stateful(&mut self) -> Option<&mut dyn StatefulComponent> {
        Some(self)
    }
}

/// Snapshot image of a [`QueryBolt`]: current window plus one accumulator
/// per standing query (the queries themselves are replicated config, not
/// state).
type QueryState = (Option<u64>, Vec<WindowAcc>);

impl StatefulComponent for QueryBolt {
    fn snapshot(&mut self) -> StateSnapshot {
        let state: QueryState = (self.current_window, self.acc.clone());
        StateSnapshot::encode(SnapshotKind::Full, &state)
    }

    fn restore(
        &mut self,
        base: &StateSnapshot,
        deltas: &[StateSnapshot],
    ) -> std::result::Result<(), String> {
        if !deltas.is_empty() {
            return Err("QueryBolt snapshots are full-only".into());
        }
        let (window, acc): QueryState = base.decode()?;
        if acc.len() != self.queries.len() {
            return Err(format!(
                "snapshot has {} accumulators but {} standing queries",
                acc.len(),
                self.queries.len()
            ));
        }
        self.current_window = window;
        self.acc = acc;
        Ok(())
    }
}

/// Collects query results from all query tasks.
struct AlertBolt {
    stats: Arc<CqStats>,
}

impl Bolt for AlertBolt {
    fn execute(&mut self, tuple: &Tuple, _out: &mut BoltOutput) {
        let (Some(query), Some(window), Some(value), Some(matched)) = (
            tuple.get(0).and_then(Value::as_i64),
            tuple.get(1).and_then(Value::as_i64),
            tuple.get(2).and_then(Value::as_f64),
            tuple.get(3).and_then(Value::as_i64),
        ) else {
            return;
        };
        self.stats.results.lock().push(QueryResult {
            query: query as u32,
            window: window as u64,
            value,
            matched: matched as u64,
        });
    }
}

/// Builds the Continuous Queries topology.
pub fn build_continuous_queries(cfg: &CqConfig) -> Result<(Topology, Arc<CqStats>)> {
    let stats = Arc::new(CqStats::default());
    let queries = generate_queries(cfg.n_queries, cfg.seed);
    let mut b = TopologyBuilder::new("continuous-queries");

    let spout_cfg = cfg.clone();
    let spout_stats = stats.clone();
    b.set_spout("sensor-spout", 1, move || {
        SensorSpout::new(&spout_cfg, spout_stats.clone())
    })?
    .output_fields(Fields::new(["device", "metric", "value", "ts"]))
    .cost(CostModel {
        base_service_time_us: cfg.spout_cost_us,
        jitter: 0.05,
    });

    let q_stats = stats.clone();
    let window_s = cfg.window_s;
    {
        let mut query = b.set_bolt("query", cfg.query_parallelism, move || {
            QueryBolt::new(queries.clone(), window_s, q_stats.clone())
        })?;
        query
            .output_fields(Fields::new(["query", "window", "value", "matched"]))
            .cost(CostModel {
                base_service_time_us: cfg.query_cost_us,
                jitter: 0.1,
            });
        if cfg.dynamic_grouping {
            query.dynamic_grouping("sensor-spout")?;
        } else {
            query.shuffle_grouping("sensor-spout")?;
        }
    }

    let a_stats = stats.clone();
    b.set_bolt("alert", 1, move || AlertBolt {
        stats: a_stats.clone(),
    })?
    .cost(CostModel {
        base_service_time_us: 20.0,
        jitter: 0.05,
    })
    .global_grouping("query")?;

    Ok((b.build()?, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsdps::config::EngineConfig;
    use dsdps::sim::SimRuntime;
    use dsdps::stream::StreamId;

    fn small_cfg() -> CqConfig {
        CqConfig {
            pattern: RatePattern::Constant { rate: 400.0 },
            n_devices: 60,
            n_queries: 12,
            query_parallelism: 3,
            window_s: 2.0,
            ..CqConfig::default()
        }
    }

    #[test]
    fn query_generation_is_deterministic() {
        let a = generate_queries(20, 7);
        let b = generate_queries(20, 7);
        assert_eq!(a, b);
        let c = generate_queries(20, 8);
        assert_ne!(a, c);
        assert!(a.iter().all(|q| METRICS.contains(&q.metric.as_str())));
    }

    #[test]
    fn query_matching_semantics() {
        let q = Query {
            id: 0,
            metric: "load".into(),
            op: QueryOp::Gt,
            threshold: 50.0,
            agg: QueryAgg::Count,
        };
        assert!(q.matches("load", 60.0));
        assert!(!q.matches("load", 50.0));
        assert!(!q.matches("load", 40.0));
        assert!(!q.matches("temperature", 60.0));
        let lt = Query {
            op: QueryOp::Lt,
            ..q
        };
        assert!(lt.matches("load", 40.0));
        assert!(!lt.matches("load", 60.0));
    }

    #[test]
    fn query_bolt_aggregates_per_window() {
        let queries = vec![
            Query {
                id: 0,
                metric: "load".into(),
                op: QueryOp::Gt,
                threshold: 0.0,
                agg: QueryAgg::Avg,
            },
            Query {
                id: 1,
                metric: "load".into(),
                op: QueryOp::Gt,
                threshold: 0.0,
                agg: QueryAgg::Max,
            },
        ];
        let stats = Arc::new(CqStats::default());
        let mut bolt = QueryBolt::new(queries, 1.0, stats);
        let mut out = BoltOutput::new();
        let reading = |v: f64| {
            Tuple::of([
                Value::from(1i64),
                Value::from("load"),
                Value::from(v),
                Value::from(0.0),
            ])
        };
        out.set_now(0.1);
        bolt.execute(&reading(10.0), &mut out);
        out.set_now(0.5);
        bolt.execute(&reading(30.0), &mut out);
        assert!(out.drain().0.is_empty(), "window still open");
        // Crossing into window 1 flushes window 0.
        out.set_now(1.2);
        bolt.tick(&mut out);
        let (emissions, _) = out.drain();
        assert_eq!(emissions.len(), 2);
        let avg = emissions[0].tuple.get(2).unwrap().as_f64().unwrap();
        let max = emissions[1].tuple.get(2).unwrap().as_f64().unwrap();
        assert_eq!(avg, 20.0);
        assert_eq!(max, 30.0);
        assert_eq!(emissions[0].tuple.get(3).unwrap().as_i64(), Some(2));
    }

    #[test]
    fn query_bolt_snapshot_restore_round_trips() {
        let queries = generate_queries(5, 3);
        let stats = Arc::new(CqStats::default());
        let mut bolt = QueryBolt::new(queries.clone(), 1.0, stats.clone());
        let mut out = BoltOutput::new();
        out.set_now(0.2);
        for v in [25.0, 45.0, 65.0] {
            bolt.execute(
                &Tuple::of([
                    Value::from(1i64),
                    Value::from("load"),
                    Value::from(v),
                    Value::from(0.2),
                ]),
                &mut out,
            );
        }
        let snap = bolt.snapshot();

        let mut fresh = QueryBolt::new(queries, 1.0, stats.clone());
        fresh.restore(&snap, &[]).unwrap();
        assert_eq!(fresh.current_window, bolt.current_window);
        assert_eq!(fresh.acc, bolt.acc);
        // Restoring into a bolt with a different query set is rejected.
        let mut other = QueryBolt::new(generate_queries(2, 3), 1.0, stats);
        assert!(other.restore(&snap, &[]).is_err());
    }

    #[test]
    fn topology_runs_and_produces_results() {
        let (topo, stats) = build_continuous_queries(&small_cfg()).unwrap();
        assert!(topo
            .dynamic_handle("sensor-spout", &StreamId::default(), "query")
            .is_some());
        let mut engine = SimRuntime::new(topo, EngineConfig::default()).unwrap();
        let report = engine.run_until(12.0);
        assert!(stats.emitted.load(Ordering::Relaxed) > 3000);
        assert!(stats.evaluated.load(Ordering::Relaxed) > 30_000);
        let results = stats.results.lock();
        assert!(results.len() > 10, "only {} results", results.len());
        assert!(results.iter().all(|r| r.matched > 0));
        assert_eq!(report.failed, 0);
    }

    #[test]
    fn count_aggregate_counts_matches() {
        let (topo, stats) = build_continuous_queries(&CqConfig {
            n_queries: 6,
            ..small_cfg()
        })
        .unwrap();
        let mut engine = SimRuntime::new(topo, EngineConfig::default()).unwrap();
        engine.run_until(9.0);
        let results = stats.results.lock();
        // Count-agg results must be integral.
        let queries = generate_queries(6, small_cfg().seed);
        for r in results.iter() {
            let q = &queries[r.query as usize];
            if q.agg == QueryAgg::Count {
                assert_eq!(r.value, r.matched as f64, "count == matched for {r:?}");
            }
        }
    }
}

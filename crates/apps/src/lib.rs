//! # stream-apps — the paper's evaluation applications
//!
//! The two representative stream applications the IPDPS 2019 paper uses
//! for validation, plus the synthetic workloads and fault scenarios that
//! drive them:
//!
//! * [`url_count`] — **Windowed URL Count**: Zipf-skewed click stream →
//!   parse → tumbling-window partial counts (dynamic grouping) → merged
//!   window reports;
//! * [`continuous_queries`] — **Continuous Queries**: sensor readings
//!   evaluated against standing predicate+aggregate queries (dynamic
//!   grouping) → per-window query results;
//! * [`workload`] — time-varying rate patterns (diurnal/bursty/random
//!   walk) and Zipf catalogs, seeded and deterministic;
//! * [`faults`] — reusable misbehaving-worker scenarios for the
//!   reliability experiments;
//! * [`overload`] — flash-crowd, key-skew-storm, and slow-sink-cascade
//!   topologies for the backpressure experiments.

#![warn(missing_docs)]

pub mod continuous_queries;
pub mod dist;
pub mod faults;
pub mod overload;
pub mod url_count;
pub mod workload;

/// Commonly used items, re-exported.
pub mod prelude {
    pub use crate::continuous_queries::{
        build_continuous_queries, generate_queries, CqConfig, CqStats, Query, QueryAgg, QueryOp,
        QueryResult,
    };
    pub use crate::faults::FaultScenario;
    pub use crate::overload::{
        build_flash_crowd, build_key_skew_storm, build_slow_sink_cascade, OverloadConfig,
        OverloadStats,
    };
    pub use crate::url_count::{build_url_count, UrlCountConfig, UrlCountStats, WindowReport};
    pub use crate::workload::{RateDriver, RatePattern, UrlCatalog, ZipfSampler};
}

//! Synthetic workload generation: time-varying arrival-rate patterns and a
//! Zipf-distributed URL catalog.
//!
//! These substitute for the production traces the paper's evaluation
//! consumed (see `DESIGN.md` §2): the properties that matter to the
//! prediction task are content skew (Zipf) and non-stationary rates
//! (diurnal + bursts + drift), all reproduced here deterministically from a
//! seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A deterministic arrival-rate curve `rate(t)` in tuples/second.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RatePattern {
    /// Constant rate.
    Constant {
        /// Tuples per second.
        rate: f64,
    },
    /// Sinusoidal "diurnal" pattern: `base + amplitude·sin(2πt/period)`.
    Diurnal {
        /// Mean rate.
        base: f64,
        /// Peak deviation from the mean.
        amplitude: f64,
        /// Period in seconds.
        period_s: f64,
    },
    /// Constant base with periodic rectangular bursts.
    Bursty {
        /// Base rate.
        base: f64,
        /// Rate during a burst.
        burst_rate: f64,
        /// Burst spacing (start-to-start), seconds.
        every_s: f64,
        /// Burst duration, seconds.
        len_s: f64,
    },
    /// Piecewise-constant random walk: the rate takes a seeded random step
    /// every `step_every_s`, clamped to `[min, max]`.
    RandomWalk {
        /// Initial rate.
        base: f64,
        /// Maximum |step| per interval.
        step: f64,
        /// Lower clamp.
        min: f64,
        /// Upper clamp.
        max: f64,
        /// Step interval, seconds.
        step_every_s: f64,
        /// Seed for the walk.
        seed: u64,
    },
    /// Flat base with a single flash-crowd spike: the rate jumps to `peak`
    /// during `[at_s, at_s + len_s)` and returns to `base` afterwards.
    /// Unlike [`RatePattern::Bursty`] the spike fires exactly once, which is
    /// what the backpressure overload experiments need: a before/during/after
    /// comparison against one overload event.
    FlashCrowd {
        /// Rate outside the spike.
        base: f64,
        /// Rate during the spike.
        peak: f64,
        /// Spike start, seconds.
        at_s: f64,
        /// Spike duration, seconds.
        len_s: f64,
    },
    /// Sum of two patterns.
    Sum(Box<RatePattern>, Box<RatePattern>),
}

impl RatePattern {
    /// The instantaneous rate at time `t` seconds (never negative).
    pub fn rate_at(&self, t: f64) -> f64 {
        let r = match self {
            RatePattern::Constant { rate } => *rate,
            RatePattern::Diurnal {
                base,
                amplitude,
                period_s,
            } => base + amplitude * (2.0 * std::f64::consts::PI * t / period_s).sin(),
            RatePattern::Bursty {
                base,
                burst_rate,
                every_s,
                len_s,
            } => {
                let phase = t.rem_euclid(*every_s);
                if phase < *len_s {
                    *burst_rate
                } else {
                    *base
                }
            }
            RatePattern::RandomWalk {
                base,
                step,
                min,
                max,
                step_every_s,
                seed,
            } => {
                // Deterministic function of the interval index: replay the
                // walk up to interval k.  Memoization-free but O(k); the
                // spout wrapper below caches incremental state instead.
                let k = (t / step_every_s) as u64;
                let mut rate = *base;
                for i in 0..k {
                    let u = crate::workload::unit_hash(seed.wrapping_add(i));
                    rate = (rate + (u * 2.0 - 1.0) * step).clamp(*min, *max);
                }
                rate
            }
            RatePattern::FlashCrowd {
                base,
                peak,
                at_s,
                len_s,
            } => {
                if t >= *at_s && t < *at_s + *len_s {
                    *peak
                } else {
                    *base
                }
            }
            RatePattern::Sum(a, b) => a.rate_at(t) + b.rate_at(t),
        };
        r.max(0.0)
    }

    /// The paper-style default workload: diurnal base with bursts.
    pub fn paper_default(base: f64) -> Self {
        RatePattern::Sum(
            Box::new(RatePattern::Diurnal {
                base,
                amplitude: base * 0.4,
                period_s: 120.0,
            }),
            Box::new(RatePattern::Bursty {
                base: 0.0,
                burst_rate: base * 0.6,
                every_s: 47.0,
                len_s: 6.0,
            }),
        )
    }
}

/// Scrambles a u64 into a uniform `[0, 1)` float (SplitMix64 finalizer).
pub fn unit_hash(x: u64) -> f64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Incremental rate integrator: tells a spout how many tuples are due.
///
/// Each poll, the spout advances the integrator to the current time; the
/// integral of `rate(t)` determines the cumulative tuple count, so the
/// emitted stream follows the pattern exactly regardless of poll cadence.
#[derive(Debug, Clone)]
pub struct RateDriver {
    pattern: RatePattern,
    last_t: f64,
    cumulative: f64,
    emitted: u64,
}

impl RateDriver {
    /// New driver starting at t = 0.
    pub fn new(pattern: RatePattern) -> Self {
        RateDriver {
            pattern,
            last_t: 0.0,
            cumulative: 0.0,
            emitted: 0,
        }
    }

    /// Advances to time `t` and returns how many tuples are now due
    /// (trapezoidal integration of the rate curve).
    pub fn due(&mut self, t: f64) -> u64 {
        if t > self.last_t {
            let dt = t - self.last_t;
            let r0 = self.pattern.rate_at(self.last_t);
            let r1 = self.pattern.rate_at(t);
            self.cumulative += 0.5 * (r0 + r1) * dt;
            self.last_t = t;
        }
        let due_total = self.cumulative as u64;
        due_total.saturating_sub(self.emitted)
    }

    /// Records that `n` tuples were emitted.
    pub fn emitted(&mut self, n: u64) {
        self.emitted += n;
    }

    /// Total tuples emitted so far.
    pub fn total_emitted(&self) -> u64 {
        self.emitted
    }
}

/// Zipf-distributed sampler over `n` items with exponent `s`
/// (`P(k) ∝ 1/(k+1)^s`), via inverse-CDF binary search.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the CDF for `n` items with skew `s` (s = 0 is uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!(s >= 0.0, "negative skew is not meaningful");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the catalog is empty (never: `new` requires n > 0).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples an item index.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// A synthetic URL catalog with Zipf popularity.
#[derive(Debug, Clone)]
pub struct UrlCatalog {
    urls: Vec<String>,
    sampler: ZipfSampler,
    rng: StdRng,
}

impl UrlCatalog {
    /// `n` URLs over `n/20 + 1` synthetic domains, skew `s`.
    pub fn new(n: usize, s: f64, seed: u64) -> Self {
        let domains = n / 20 + 1;
        let urls = (0..n)
            .map(|i| format!("http://site{}.example.com/page{}", i % domains, i))
            .collect();
        UrlCatalog {
            urls,
            sampler: ZipfSampler::new(n, s),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of URLs.
    pub fn len(&self) -> usize {
        self.urls.len()
    }

    /// True when empty (never by construction).
    pub fn is_empty(&self) -> bool {
        self.urls.is_empty()
    }

    /// Draws the next URL according to the popularity distribution.
    pub fn next_url(&mut self) -> &str {
        let idx = self.sampler.sample(&mut self.rng);
        &self.urls[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_integrates_exactly() {
        let mut d = RateDriver::new(RatePattern::Constant { rate: 100.0 });
        let due = d.due(2.0);
        assert_eq!(due, 200);
        d.emitted(due);
        assert_eq!(d.due(2.0), 0);
        assert_eq!(d.due(2.5), 50);
        assert_eq!(d.total_emitted(), 200);
    }

    #[test]
    fn diurnal_rate_oscillates_around_base() {
        let p = RatePattern::Diurnal {
            base: 100.0,
            amplitude: 50.0,
            period_s: 60.0,
        };
        assert!((p.rate_at(0.0) - 100.0).abs() < 1e-9);
        assert!((p.rate_at(15.0) - 150.0).abs() < 1e-9);
        assert!((p.rate_at(45.0) - 50.0).abs() < 1e-9);
        // One full period integrates to base*period.
        let mut d = RateDriver::new(p);
        let total = d.due(60.0);
        assert!((total as f64 - 6000.0).abs() < 60.0, "total {total}");
    }

    #[test]
    fn bursts_fire_on_schedule() {
        let p = RatePattern::Bursty {
            base: 10.0,
            burst_rate: 500.0,
            every_s: 30.0,
            len_s: 5.0,
        };
        assert_eq!(p.rate_at(2.0), 500.0);
        assert_eq!(p.rate_at(10.0), 10.0);
        assert_eq!(p.rate_at(32.0), 500.0);
        assert_eq!(p.rate_at(36.0), 10.0);
    }

    #[test]
    fn negative_rates_clamped_to_zero() {
        let p = RatePattern::Diurnal {
            base: 10.0,
            amplitude: 100.0,
            period_s: 40.0,
        };
        assert_eq!(p.rate_at(30.0), 0.0);
    }

    #[test]
    fn random_walk_is_deterministic_and_clamped() {
        let p = RatePattern::RandomWalk {
            base: 100.0,
            step: 30.0,
            min: 50.0,
            max: 150.0,
            step_every_s: 1.0,
            seed: 7,
        };
        for t in [0.0, 5.0, 50.0, 500.0] {
            let a = p.rate_at(t);
            let b = p.rate_at(t);
            assert_eq!(a, b);
            assert!((50.0..=150.0).contains(&a), "rate {a} at t={t}");
        }
        // The walk must actually move.
        assert_ne!(p.rate_at(0.0), p.rate_at(100.0));
    }

    #[test]
    fn flash_crowd_spikes_exactly_once() {
        let p = RatePattern::FlashCrowd {
            base: 100.0,
            peak: 4000.0,
            at_s: 2.0,
            len_s: 3.0,
        };
        assert_eq!(p.rate_at(0.0), 100.0);
        assert_eq!(p.rate_at(2.0), 4000.0);
        assert_eq!(p.rate_at(4.9), 4000.0);
        assert_eq!(p.rate_at(5.0), 100.0);
        // Unlike Bursty, no second spike one "period" later.
        assert_eq!(p.rate_at(7.0), 100.0);
        // Integral: 2 s base + 3 s peak + 1 s base = 200 + 12000 + 100.
        // Stepped finely, the way a spout polls — trapezoidal integration
        // only sees a discontinuous spike through sub-spike steps.
        let mut d = RateDriver::new(p);
        let mut total = 0u64;
        for k in 1..=600 {
            let n = d.due(k as f64 * 0.01);
            d.emitted(n);
            total += n;
        }
        assert!(
            (total as f64 - 12_300.0).abs() < 150.0,
            "flash-crowd total {total}"
        );
    }

    #[test]
    fn sum_pattern_adds() {
        let p = RatePattern::Sum(
            Box::new(RatePattern::Constant { rate: 10.0 }),
            Box::new(RatePattern::Constant { rate: 5.0 }),
        );
        assert_eq!(p.rate_at(3.0), 15.0);
    }

    #[test]
    fn zipf_skews_toward_head() {
        let z = ZipfSampler::new(1000, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[99] * 5,
            "head {} vs rank-100 {}",
            counts[0],
            counts[99]
        );
        // All mass accounted for and every index valid.
        assert_eq!(counts.iter().sum::<usize>(), 100_000);
    }

    #[test]
    fn zipf_zero_skew_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 5000.0).abs() < 500.0, "{counts:?}");
        }
    }

    #[test]
    fn url_catalog_deterministic_per_seed() {
        let mut a = UrlCatalog::new(100, 1.0, 9);
        let mut b = UrlCatalog::new(100, 1.0, 9);
        let seq_a: Vec<String> = (0..20).map(|_| a.next_url().to_owned()).collect();
        let seq_b: Vec<String> = (0..20).map(|_| b.next_url().to_owned()).collect();
        assert_eq!(seq_a, seq_b);
        assert_eq!(a.len(), 100);
        let mut c = UrlCatalog::new(100, 1.0, 10);
        let seq_c: Vec<String> = (0..20).map(|_| c.next_url().to_owned()).collect();
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn unit_hash_is_uniformish() {
        let mean: f64 = (0..10_000).map(unit_hash).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!((0..1000).map(unit_hash).all(|v| (0.0..1.0).contains(&v)));
    }
}

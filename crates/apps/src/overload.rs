//! Overload workloads for the backpressure experiments: **flash crowd**,
//! **key-skew storm**, and **slow-sink cascade**.
//!
//! Each builder returns a small topology whose offered load deliberately
//! exceeds what some stage can absorb, in a different way:
//!
//! * [`build_flash_crowd`] — a one-shot arrival spike
//!   ([`RatePattern::FlashCrowd`]) several times the work stage's capacity:
//!   the queue-wait transient the adaptive spout throttle must bound;
//! * [`build_key_skew_storm`] — Zipf-skewed keys under fields grouping, so
//!   one task absorbs a large share of the stream while its siblings idle:
//!   per-edge credits must hold the hot task's queue without stalling the
//!   cold ones;
//! * [`build_slow_sink_cascade`] — spout → relay → slow sink, where only
//!   the *last* stage is under-provisioned: backpressure must propagate
//!   hop by hop (sink credits exhaust first, then the relay's) instead of
//!   letting the relay's output queue grow without bound.
//!
//! The same topologies run on both runtimes.  The simulator charges service
//! time through each component's [`CostModel`]; the threaded runtime
//! executes real code on real threads, so overload there requires
//! [`OverloadConfig::spin_service`] — bolts then busy-wait their configured
//! service time per tuple.  Leave it off for simulator runs (the spin would
//! burn host CPU without advancing virtual time).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use dsdps::component::{Bolt, BoltOutput, MessageId, Spout, SpoutOutput};
use dsdps::error::Result;
use dsdps::topology::{CostModel, Topology, TopologyBuilder};
use dsdps::tuple::{Fields, Tuple, Value};

use crate::workload::{RateDriver, RatePattern, ZipfSampler};

/// Configuration shared by the three overload topologies.  Each builder
/// reads the subset of fields it needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverloadConfig {
    /// Arrival-rate curve of the overload spout.
    pub pattern: RatePattern,
    /// Key-space size (key-skew storm).
    pub n_keys: usize,
    /// Zipf skew of key popularity (key-skew storm; 0 = uniform).
    pub zipf_s: f64,
    /// Parallelism of the work / relay stage.
    pub workers: usize,
    /// Per-tuple service time of the work / relay stage, µs.
    pub work_us: f64,
    /// Per-tuple service time of the cascade's terminal sink, µs.
    pub sink_us: f64,
    /// Busy-wait the configured service times on real threads.  Required
    /// for the threaded runtime (where only real execute time counts);
    /// leave off under the simulator (service time comes from the cost
    /// model there).
    pub spin_service: bool,
    /// Workload seed.
    pub seed: u64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            pattern: RatePattern::FlashCrowd {
                base: 400.0,
                peak: 4000.0,
                at_s: 1.0,
                len_s: 3.0,
            },
            n_keys: 64,
            zipf_s: 1.4,
            workers: 2,
            work_us: 150.0,
            sink_us: 600.0,
            spin_service: false,
            seed: 42,
        }
    }
}

/// Shared observability of a running overload topology.
#[derive(Debug, Default)]
pub struct OverloadStats {
    /// Fresh tuples emitted by the spout (replays not included).
    pub emitted: AtomicU64,
    /// Spout replays triggered by fails/timeouts.
    pub replays: AtomicU64,
    /// Tuples processed by the work / relay stage.
    pub processed: AtomicU64,
    /// Tuples absorbed by the terminal stage.
    pub sunk: AtomicU64,
    /// Terminal-stage tuples carrying the hottest key (key 0).
    pub hot_hits: AtomicU64,
}

/// Consumes `us` microseconds of real service time.  Times below reliable
/// sleep granularity are busy-spun; longer ones sleep, so a heavily
/// over-subscribed host (or a single-core CI box) is not starved by
/// spinning worker threads — sleep overshoot only strengthens the overload.
fn spin_for(us: f64) {
    if us <= 0.0 {
        return;
    }
    let dur = Duration::from_secs_f64(us * 1e-6);
    if us >= 100.0 {
        std::thread::sleep(dur);
        return;
    }
    let end = Instant::now() + dur;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

/// Reliable overload spout: keyed tuples at the configured rate, with
/// failed tuples replayed before fresh load (same discipline as the
/// URL-count spout).
struct OverloadSpout {
    driver: RateDriver,
    sampler: ZipfSampler,
    rng: StdRng,
    next_id: MessageId,
    pending: HashMap<MessageId, Tuple>,
    replay_queue: Vec<MessageId>,
    stats: Arc<OverloadStats>,
    /// Max emissions per poll, to bound per-poll bursts.
    batch_cap: u64,
}

impl OverloadSpout {
    fn new(cfg: &OverloadConfig, stats: Arc<OverloadStats>) -> Self {
        OverloadSpout {
            driver: RateDriver::new(cfg.pattern.clone()),
            sampler: ZipfSampler::new(cfg.n_keys, cfg.zipf_s),
            rng: StdRng::seed_from_u64(cfg.seed),
            next_id: 0,
            pending: HashMap::new(),
            replay_queue: Vec::new(),
            stats,
            batch_cap: 256,
        }
    }
}

impl Spout for OverloadSpout {
    fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
        let now = out.now_s();
        if let Some(id) = self.replay_queue.pop() {
            if let Some(tuple) = self.pending.get(&id) {
                out.emit_with_id(tuple.clone(), id);
                self.stats.replays.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        let due = self.driver.due(now).min(self.batch_cap);
        for _ in 0..due {
            let key = self.sampler.sample(&mut self.rng) as i64;
            self.next_id += 1;
            let tuple = Tuple::of([Value::from(key), Value::from(self.next_id as i64)]);
            self.pending.insert(self.next_id, tuple.clone());
            out.emit_with_id(tuple, self.next_id);
        }
        if due > 0 {
            self.driver.emitted(due);
            self.stats.emitted.fetch_add(due, Ordering::Relaxed);
        }
        true
    }

    fn ack(&mut self, id: MessageId) {
        self.pending.remove(&id);
    }

    fn fail(&mut self, id: MessageId) {
        if self.pending.contains_key(&id) {
            self.replay_queue.push(id);
        }
    }
}

/// Mid-stage bolt: optionally burns service time, then forwards the tuple
/// anchored (cascade relay).
struct RelayBolt {
    service_us: f64,
    spin: bool,
    stats: Arc<OverloadStats>,
}

impl Bolt for RelayBolt {
    fn execute(&mut self, tuple: &Tuple, out: &mut BoltOutput) {
        if self.spin {
            spin_for(self.service_us);
        }
        self.stats.processed.fetch_add(1, Ordering::Relaxed);
        out.emit(Tuple::of([
            tuple.get(0).cloned().unwrap_or(Value::Null),
            tuple.get(1).cloned().unwrap_or(Value::Null),
        ]));
    }
}

/// Terminal bolt: optionally burns service time, then counts the tuple.
struct SinkBolt {
    service_us: f64,
    spin: bool,
    stats: Arc<OverloadStats>,
}

impl Bolt for SinkBolt {
    fn execute(&mut self, tuple: &Tuple, out: &mut BoltOutput) {
        let _ = out;
        if self.spin {
            spin_for(self.service_us);
        }
        self.stats.sunk.fetch_add(1, Ordering::Relaxed);
        if tuple.get(0).and_then(Value::as_i64) == Some(0) {
            self.stats.hot_hits.fetch_add(1, Ordering::Relaxed);
        }
    }
}

const KEYED: [&str; 2] = ["key", "seq"];

fn spout_stage(
    b: &mut TopologyBuilder,
    cfg: &OverloadConfig,
    stats: &Arc<OverloadStats>,
) -> Result<()> {
    let spout_cfg = cfg.clone();
    let spout_stats = stats.clone();
    b.set_spout("overload-spout", 1, move || {
        OverloadSpout::new(&spout_cfg, spout_stats.clone())
    })?
    .output_fields(Fields::new(KEYED))
    .cost(CostModel {
        base_service_time_us: 10.0,
        jitter: 0.05,
    });
    Ok(())
}

/// **Flash crowd**: spout → shuffle → work sink.  The spike rate exceeds
/// `workers / work_us` capacity; queues (and queue-wait) grow until the
/// spike ends — or until credits and the adaptive throttle cap the spout.
pub fn build_flash_crowd(cfg: &OverloadConfig) -> Result<(Topology, Arc<OverloadStats>)> {
    let stats = Arc::new(OverloadStats::default());
    let mut b = TopologyBuilder::new("flash-crowd");
    spout_stage(&mut b, cfg, &stats)?;
    let (service_us, spin, sink_stats) = (cfg.work_us, cfg.spin_service, stats.clone());
    b.set_bolt("work", cfg.workers, move || SinkBolt {
        service_us,
        spin,
        stats: sink_stats.clone(),
    })?
    .cost(CostModel {
        base_service_time_us: cfg.work_us,
        jitter: 0.1,
    })
    .shuffle_grouping("overload-spout")?;
    Ok((b.build()?, stats))
}

/// **Key-skew storm**: spout → fields(key) → count sink.  With Zipf skew
/// the hottest key's task saturates while its siblings stay idle; only the
/// hot edge's credits should exhaust.
pub fn build_key_skew_storm(cfg: &OverloadConfig) -> Result<(Topology, Arc<OverloadStats>)> {
    let stats = Arc::new(OverloadStats::default());
    let mut b = TopologyBuilder::new("key-skew-storm");
    spout_stage(&mut b, cfg, &stats)?;
    let (service_us, spin, sink_stats) = (cfg.work_us, cfg.spin_service, stats.clone());
    b.set_bolt("count", cfg.workers, move || SinkBolt {
        service_us,
        spin,
        stats: sink_stats.clone(),
    })?
    .cost(CostModel {
        base_service_time_us: cfg.work_us,
        jitter: 0.1,
    })
    .fields_grouping("overload-spout", &["key"])?;
    Ok((b.build()?, stats))
}

/// **Slow-sink cascade**: spout → shuffle → relay → global → slow sink.
/// The relay keeps up; the single sink does not.  Backpressure must travel
/// two hops: sink credits exhaust first, the relay blocks on them, the
/// relay's own credits exhaust, and finally the spout throttles.
pub fn build_slow_sink_cascade(cfg: &OverloadConfig) -> Result<(Topology, Arc<OverloadStats>)> {
    let stats = Arc::new(OverloadStats::default());
    let mut b = TopologyBuilder::new("slow-sink-cascade");
    spout_stage(&mut b, cfg, &stats)?;

    let (service_us, spin, relay_stats) = (cfg.work_us, cfg.spin_service, stats.clone());
    b.set_bolt("relay", cfg.workers, move || RelayBolt {
        service_us,
        spin,
        stats: relay_stats.clone(),
    })?
    .output_fields(Fields::new(KEYED))
    .cost(CostModel {
        base_service_time_us: cfg.work_us,
        jitter: 0.1,
    })
    .shuffle_grouping("overload-spout")?;

    let (service_us, spin, sink_stats) = (cfg.sink_us, cfg.spin_service, stats.clone());
    b.set_bolt("sink", 1, move || SinkBolt {
        service_us,
        spin,
        stats: sink_stats.clone(),
    })?
    .cost(CostModel {
        base_service_time_us: cfg.sink_us,
        jitter: 0.1,
    })
    .global_grouping("relay")?;
    Ok((b.build()?, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsdps::config::EngineConfig;
    use dsdps::sim::SimRuntime;

    fn quick_cfg() -> OverloadConfig {
        OverloadConfig {
            pattern: RatePattern::Constant { rate: 400.0 },
            work_us: 50.0,
            sink_us: 80.0,
            ..OverloadConfig::default()
        }
    }

    #[test]
    fn topology_shapes() {
        let cfg = quick_cfg();
        let (flash, _) = build_flash_crowd(&cfg).unwrap();
        assert_eq!(flash.components().count(), 2);
        assert_eq!(flash.task_count(), 1 + cfg.workers);
        let (skew, _) = build_key_skew_storm(&cfg).unwrap();
        assert_eq!(skew.task_count(), 1 + cfg.workers);
        let (cascade, _) = build_slow_sink_cascade(&cfg).unwrap();
        assert_eq!(cascade.components().count(), 3);
        assert_eq!(cascade.task_count(), 1 + cfg.workers + 1);
    }

    #[test]
    fn flash_crowd_runs_and_sinks_everything() {
        let (topo, stats) = build_flash_crowd(&quick_cfg()).unwrap();
        let mut engine = SimRuntime::new(topo, EngineConfig::default()).unwrap();
        let report = engine.run_until(5.0);
        let emitted = stats.emitted.load(Ordering::Relaxed);
        let sunk = stats.sunk.load(Ordering::Relaxed);
        assert!(emitted > 1000, "emitted {emitted}");
        assert!(sunk as f64 > emitted as f64 * 0.95, "{sunk}/{emitted}");
        assert_eq!(report.failed, 0);
    }

    #[test]
    fn key_skew_concentrates_on_hot_key() {
        let (topo, stats) = build_key_skew_storm(&quick_cfg()).unwrap();
        let mut engine = SimRuntime::new(topo, EngineConfig::default()).unwrap();
        engine.run_until(5.0);
        let sunk = stats.sunk.load(Ordering::Relaxed);
        let hot = stats.hot_hits.load(Ordering::Relaxed);
        assert!(sunk > 1000, "sunk {sunk}");
        // Zipf s = 1.4 over 64 keys puts ≳25 % of mass on the head key.
        assert!(
            hot as f64 > sunk as f64 * 0.15,
            "hot share {hot}/{sunk} too small for a storm"
        );
    }

    #[test]
    fn cascade_relays_then_sinks() {
        let (topo, stats) = build_slow_sink_cascade(&quick_cfg()).unwrap();
        let mut engine = SimRuntime::new(topo, EngineConfig::default()).unwrap();
        engine.run_until(5.0);
        let emitted = stats.emitted.load(Ordering::Relaxed);
        let processed = stats.processed.load(Ordering::Relaxed);
        let sunk = stats.sunk.load(Ordering::Relaxed);
        assert!(emitted > 1000, "emitted {emitted}");
        assert!(
            processed as f64 > emitted as f64 * 0.9,
            "{processed}/{emitted}"
        );
        assert!(sunk as f64 > processed as f64 * 0.9, "{sunk}/{processed}");
    }

    #[test]
    fn spout_replays_failed_tuples_first() {
        let stats = Arc::new(OverloadStats::default());
        let mut spout = OverloadSpout::new(&quick_cfg(), stats.clone());
        let mut out = SpoutOutput::new();
        out.set_now(0.05);
        spout.next_tuple(&mut out);
        let emissions = out.drain();
        assert!(!emissions.is_empty());
        let id = emissions[0].message_id.unwrap();
        spout.fail(id);
        out.set_now(0.0501);
        spout.next_tuple(&mut out);
        let replayed = out.drain();
        assert_eq!(replayed[0].message_id, Some(id));
        assert_eq!(stats.replays.load(Ordering::Relaxed), 1);
        // Acked ids are forgotten: a late fail cannot replay them.
        spout.ack(id);
        spout.fail(id);
        out.set_now(0.0502);
        spout.next_tuple(&mut out);
        assert!(out.drain().iter().all(|e| e.message_id != Some(id)));
    }

    #[test]
    fn spin_service_burns_real_time() {
        let t0 = Instant::now();
        spin_for(300.0);
        assert!(t0.elapsed() >= Duration::from_micros(250));
        // And a no-spin sink executes essentially instantly.
        let stats = Arc::new(OverloadStats::default());
        let mut sink = SinkBolt {
            service_us: 50_000.0,
            spin: false,
            stats: stats.clone(),
        };
        let t0 = Instant::now();
        let mut out = BoltOutput::new();
        sink.execute(&Tuple::of([Value::from(0i64), Value::from(1i64)]), &mut out);
        assert!(t0.elapsed() < Duration::from_millis(40));
        assert_eq!(stats.sunk.load(Ordering::Relaxed), 1);
        assert_eq!(stats.hot_hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn serde_round_trip() {
        let cfg = OverloadConfig::default();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: OverloadConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}

//! Smoke tests: the paper's evaluation applications end-to-end on the
//! multi-process runtime, using the `dist_worker` binary as the fleet.
//! The URL-count run additionally SIGKILLs a worker mid-stream and
//! checks the supervisor respawns it and the stream keeps flowing.

use std::time::{Duration, Instant};

use dsdps::config::EngineConfig;
use dsdps::dist::{self, DistConfig};
use dsdps::rt::{RecoveryMode, RtConfig};
use stream_apps::dist::registry;

/// The real worker binary, not a re-exec'd test harness: this is the
/// deployment shape an operator would run.
fn worker_cmd() -> Vec<String> {
    vec![env!("CARGO_BIN_EXE_dist_worker").to_owned()]
}

fn wait_until(timeout: Duration, mut done: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    done()
}

#[test]
fn url_count_runs_distributed_and_survives_a_worker_kill() {
    let engine = EngineConfig {
        message_timeout_s: 2.0,
        ..EngineConfig::default()
    };
    let rt_cfg = RtConfig::default()
        .with_batch_size(16)
        .with_credit_flow(32)
        .with_max_replays(10)
        .with_replay_backoff(Duration::from_millis(20))
        .with_checkpoints(Duration::from_millis(100))
        .with_recovery_mode(RecoveryMode::AtLeastOnce);
    let running = dist::submit(
        &registry(),
        "url-count",
        "600:7",
        engine,
        rt_cfg,
        DistConfig::new(2, worker_cmd()),
    )
    .unwrap();

    assert!(
        wait_until(Duration::from_secs(20), || running.acked() >= 300),
        "url-count stream never got going: acked {}",
        running.acked()
    );
    running.kill_worker(0).expect("kill worker 0");
    let resume_target = running.acked() + 300;
    assert!(
        wait_until(Duration::from_secs(30), || running.acked() >= resume_target),
        "stream did not resume after worker kill: acked {}",
        running.acked()
    );
    let report = running.shutdown();

    assert!(report.worker_disconnects >= 1, "{report:?}");
    assert!(report.worker_restarts >= 1, "{report:?}");
    assert!(report.conservation_holds(), "{report:?}");
    assert!(report.credit_conservation_holds(), "{:?}", report.credits);
    assert_eq!(report.journal_of_kind("worker_spawned").len(), 3);
}

#[test]
fn continuous_queries_runs_distributed() {
    let running = dist::submit(
        &registry(),
        "continuous-queries",
        "800:11",
        EngineConfig::default(),
        RtConfig::default().with_batch_size(32).with_credit_flow(32),
        DistConfig::new(2, worker_cmd()),
    )
    .unwrap();

    assert!(
        wait_until(Duration::from_secs(20), || running.acked() >= 500),
        "continuous-queries stream never got going: acked {}",
        running.acked()
    );
    let report = running.shutdown();

    assert!(report.acked >= 500, "{report:?}");
    assert_eq!(report.permanently_failed, 0, "{report:?}");
    assert!(report.conservation_holds(), "{report:?}");
    assert!(report.frames_sent > 0 && report.frames_received > 0);
}

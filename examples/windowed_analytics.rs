//! Sliding-window analytics with the reusable windowing library: per-domain
//! click rates over overlapping 10-second windows sliding every 2 seconds.
//!
//! ```text
//! cargo run --release --example windowed_analytics
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use streampc::apps::workload::{RateDriver, RatePattern, UrlCatalog};
use streampc::dsdps::component::{BoltOutput, Spout, SpoutOutput};
use streampc::dsdps::config::EngineConfig;
use streampc::dsdps::sim::SimRuntime;
use streampc::dsdps::topology::{CostModel, TopologyBuilder};
use streampc::dsdps::tuple::{Fields, Tuple, Value};
use streampc::dsdps::window::{WindowAggregate, WindowAssigner, WindowedBolt};

/// Click spout reusing the workload generators.
struct ClickSpout {
    driver: RateDriver,
    catalog: UrlCatalog,
    next_id: u64,
}

impl Spout for ClickSpout {
    fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
        let due = self.driver.due(out.now_s()).min(32);
        for _ in 0..due {
            let url = self.catalog.next_url().to_owned();
            let domain = url
                .strip_prefix("http://")
                .unwrap_or(&url)
                .split('/')
                .next()
                .unwrap_or("")
                .to_owned();
            self.next_id += 1;
            out.emit_with_id(
                Tuple::with_fields([Value::from(domain)], Fields::new(["domain"])),
                self.next_id,
            );
        }
        self.driver.emitted(due);
        true
    }
}

/// Per-window aggregate: click count per domain.
struct DomainRates {
    results: Arc<Mutex<Vec<(f64, String, u64)>>>,
}

impl WindowAggregate for DomainRates {
    type Acc = HashMap<String, u64>;

    fn add(&mut self, acc: &mut Self::Acc, tuple: &Tuple) {
        if let Some(domain) = tuple.get_by_field("domain").and_then(Value::as_str) {
            *acc.entry(domain.to_owned()).or_insert(0) += 1;
        }
    }

    fn emit(&mut self, window_start_s: f64, acc: Self::Acc, _out: &mut BoltOutput) {
        let mut results = self.results.lock();
        let mut rows: Vec<(String, u64)> = acc.into_iter().collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1));
        for (domain, count) in rows.into_iter().take(3) {
            results.push((window_start_s, domain, count));
        }
    }
}

fn main() {
    let results: Arc<Mutex<Vec<(f64, String, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let r2 = results.clone();

    let mut builder = TopologyBuilder::new("windowed-analytics");
    builder
        .set_spout("clicks", 1, || ClickSpout {
            driver: RateDriver::new(RatePattern::paper_default(1200.0)),
            catalog: UrlCatalog::new(2000, 1.2, 7),
            next_id: 0,
        })
        .unwrap()
        .output_fields(Fields::new(["domain"]))
        .cost(CostModel {
            base_service_time_us: 10.0,
            jitter: 0.05,
        });
    builder
        .set_bolt("rates", 1, move || {
            WindowedBolt::new(
                WindowAssigner::Sliding {
                    size_s: 10.0,
                    slide_s: 2.0,
                },
                DomainRates {
                    results: r2.clone(),
                },
                0.5, // allowed lateness
            )
        })
        .unwrap()
        .global_grouping("clicks")
        .unwrap();
    let topology = builder.build().unwrap();

    let mut engine =
        SimRuntime::new(topology, EngineConfig::default().with_cluster(2, 2, 4)).unwrap();
    println!("running sliding-window domain analytics for 40 s of virtual time...");
    let report = engine.run_until(40.0);
    println!(
        "acked {} clicks, avg complete latency {:.2} ms\n",
        report.acked, report.avg_complete_latency_ms
    );

    println!("top domains per 10s window (sliding every 2s):");
    let mut last_window = f64::NEG_INFINITY;
    for (start, domain, count) in results.lock().iter() {
        if *start != last_window {
            println!("window [{start:>5.1}, {:>5.1}):", start + 10.0);
            last_window = *start;
        }
        println!("    {count:>5} clicks  {domain}");
    }
}

//! Quickstart: build a topology, run it on the simulated runtime, steer a
//! dynamic grouping while it runs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use streampc::dsdps::component::{Bolt, BoltOutput, Spout, SpoutOutput};
use streampc::dsdps::config::EngineConfig;
use streampc::dsdps::grouping::dynamic::SplitRatio;
use streampc::dsdps::sim::SimRuntime;
use streampc::dsdps::stream::StreamId;
use streampc::dsdps::topology::{CostModel, TopologyBuilder};
use streampc::dsdps::tuple::{Fields, Tuple, Value};

/// Emits 1000 sentences per second.
struct SentenceSpout {
    emitted: u64,
    next_id: u64,
}

const SENTENCES: [&str; 4] = [
    "the quick brown fox",
    "jumps over the lazy dog",
    "streams all the way down",
    "predictive control keeps it flowing",
];

impl Spout for SentenceSpout {
    fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
        let due = (out.now_s() * 1000.0) as u64;
        for _ in 0..due.saturating_sub(self.emitted).min(32) {
            self.emitted += 1;
            self.next_id += 1;
            let s = SENTENCES[(self.next_id % 4) as usize];
            out.emit_with_id(
                Tuple::with_fields([Value::from(s)], Fields::new(["sentence"])),
                self.next_id,
            );
        }
        true
    }
}

/// Splits sentences into words.
struct SplitBolt;

impl Bolt for SplitBolt {
    fn execute(&mut self, tuple: &Tuple, out: &mut BoltOutput) {
        let Some(sentence) = tuple.get_by_field("sentence").and_then(Value::as_str) else {
            out.fail();
            return;
        };
        for word in sentence.split_whitespace() {
            out.emit(Tuple::with_fields(
                [Value::from(word)],
                Fields::new(["word"]),
            ));
        }
    }
}

/// Counts words (partial counts per task; merged downstream in real apps).
struct CountBolt {
    seen: u64,
}

impl Bolt for CountBolt {
    fn execute(&mut self, _tuple: &Tuple, _out: &mut BoltOutput) {
        self.seen += 1;
    }
}

fn main() {
    // 1. Declare the topology: spout -> split (shuffle) -> count (dynamic).
    let mut builder = TopologyBuilder::new("word-count");
    builder
        .set_spout("sentences", 1, || SentenceSpout {
            emitted: 0,
            next_id: 0,
        })
        .unwrap()
        .output_fields(Fields::new(["sentence"]))
        .cost(CostModel {
            base_service_time_us: 10.0,
            jitter: 0.05,
        });
    builder
        .set_bolt("split", 2, || SplitBolt)
        .unwrap()
        .output_fields(Fields::new(["word"]))
        .shuffle_grouping("sentences")
        .unwrap();
    builder
        .set_bolt("count", 4, || CountBolt { seen: 0 })
        .unwrap()
        .dynamic_grouping("split")
        .unwrap();
    let topology = builder.build().unwrap();

    // Grab the live handle of the dynamic edge before starting.
    let handle = topology
        .dynamic_handle("split", &StreamId::default(), "count")
        .expect("dynamic edge declared above");

    // 2. Run on the simulated cluster: 2 machines x 2 workers x 4 cores.
    let config = EngineConfig::default().with_cluster(2, 2, 4);
    let mut engine = SimRuntime::new(topology, config).unwrap();

    println!("running 5 s with a uniform split...");
    let report = engine.run_until(5.0);
    println!(
        "  acked {} tuple trees, avg complete latency {:.2} ms",
        report.acked, report.avg_complete_latency_ms
    );

    // 3. Steer the dynamic grouping while the topology runs: bypass task 2.
    println!("bypassing count task 2 on the fly...");
    handle
        .set_ratio(SplitRatio::new(vec![1.0, 1.0, 0.0, 1.0]).unwrap())
        .unwrap();
    let report = engine.run_until(10.0);
    println!(
        "  acked {} tuple trees total, avg complete latency {:.2} ms",
        report.acked, report.avg_complete_latency_ms
    );

    // 4. Inspect the per-task distribution from the metrics.
    let last = engine.history().latest().unwrap();
    println!("per-task executed counts in the final interval:");
    for task in &last.tasks {
        if task.component == "count" {
            println!(
                "  {} executed {:>5} tuples (queue {})",
                task.task, task.executed, task.queue_len
            );
        }
    }
}

//! The same topology API on real OS threads: run Continuous Queries on the
//! threaded runtime for a few wall-clock seconds and steer its dynamic
//! grouping live.
//!
//! ```text
//! cargo run --release --example threaded_runtime [batch_size] [linger_ms]
//! ```
//!
//! `batch_size` (default 1) and `linger_ms` (default 1) tune the runtime's
//! tuple batching: tuples to the same downstream task ride the channel as
//! one batch, flushed when the buffer holds `batch_size` tuples or the
//! oldest has waited `linger_ms`.  Try `64 1` and compare the acked rate.

use std::sync::atomic::Ordering;
use std::time::Duration;

use streampc::apps::continuous_queries::{build_continuous_queries, CqConfig};
use streampc::apps::workload::RatePattern;
use streampc::dsdps::config::EngineConfig;
use streampc::dsdps::grouping::dynamic::SplitRatio;
use streampc::dsdps::rt::{submit_with, RtConfig};
use streampc::dsdps::stream::StreamId;

fn main() {
    let mut args = std::env::args().skip(1);
    let batch_size: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    let linger_ms: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);

    let cfg = CqConfig {
        pattern: RatePattern::Constant { rate: 2000.0 },
        n_devices: 200,
        n_queries: 20,
        query_parallelism: 4,
        window_s: 1.0,
        ..CqConfig::default()
    };
    let (topology, stats) = build_continuous_queries(&cfg).unwrap();
    let handle = topology
        .dynamic_handle("sensor-spout", &StreamId::default(), "query")
        .expect("dynamic edge");

    let mut engine_cfg = EngineConfig::default().with_cluster(2, 2, 4);
    engine_cfg.metrics_interval_s = 0.5;
    let rt_cfg = RtConfig::default()
        .with_batch_size(batch_size)
        .with_linger(Duration::from_millis(linger_ms));

    println!(
        "submitting Continuous Queries to the threaded runtime \
         (batch_size {batch_size}, linger {linger_ms} ms)..."
    );
    let running = submit_with(topology, engine_cfg, rt_cfg).unwrap();

    std::thread::sleep(Duration::from_secs(2));
    println!(
        "after 2 s: {} readings emitted, {} tuple trees acked",
        running.spout_emitted(),
        running.acked()
    );

    println!("bypassing query task 0 live...");
    handle
        .set_ratio(SplitRatio::new(vec![0.0, 1.0, 1.0, 1.0]).unwrap())
        .unwrap();
    std::thread::sleep(Duration::from_secs(2));

    let (history, report) = running.shutdown();
    println!(
        "\nshut down after {:.1} s wall clock: acked {}, failed {}, avg latency {:.2} ms",
        report.uptime_s, report.acked, report.failed, report.avg_complete_latency_ms
    );
    println!("query results produced: {}", stats.results.lock().len());
    println!(
        "readings matched at least one standing query: {}",
        stats.matched.load(Ordering::Relaxed)
    );
    if let Some(last) = history.latest() {
        println!("\nfinal metrics interval:");
        for task in &last.tasks {
            if task.component == "query" {
                println!(
                    "  {} executed {:>6} readings this interval \
                     ({} batches flushed, {} by linger)",
                    task.task, task.executed, task.batches_flushed, task.linger_flushes
                );
            }
        }
    }
}

//! Windowed URL Count — the paper's first evaluation application, run on
//! the simulated cluster with a diurnal+bursty click stream.
//!
//! ```text
//! cargo run --release --example url_count
//! ```

use std::sync::atomic::Ordering;

use streampc::apps::url_count::{build_url_count, UrlCountConfig};
use streampc::apps::workload::RatePattern;
use streampc::dsdps::config::EngineConfig;
use streampc::dsdps::sim::SimRuntime;

fn main() {
    let cfg = UrlCountConfig {
        pattern: RatePattern::paper_default(1500.0),
        n_urls: 10_000,
        zipf_s: 1.2,
        window_s: 5.0,
        top_k: 3,
        ..UrlCountConfig::default()
    };
    let (topology, stats) = build_url_count(&cfg).expect("valid topology");

    let config = EngineConfig::default().with_cluster(4, 2, 4);
    let mut engine = SimRuntime::new(topology, config).unwrap();

    println!("running Windowed URL Count for 60 s of virtual time...");
    let report = engine.run_until(60.0);

    println!(
        "\nemitted {} clicks, counted {}, replayed {}",
        stats.emitted.load(Ordering::Relaxed),
        stats.counted.load(Ordering::Relaxed),
        stats.replays.load(Ordering::Relaxed),
    );
    println!(
        "acked {} tuple trees  |  avg complete latency {:.2} ms  |  p99 {:.2} ms",
        report.acked, report.avg_complete_latency_ms, report.p99_complete_latency_ms
    );

    println!("\nwindow reports (tumbling {}s windows):", cfg.window_s);
    println!("{:>7}  {:>8}  {:>6}  top url", "window", "clicks", "top");
    for r in stats.reports.lock().iter() {
        println!(
            "{:>7}  {:>8}  {:>6}  {}",
            r.window, r.total, r.top_count, r.top_url
        );
    }

    // The workload is bursty + diurnal: show how throughput followed it.
    println!("\nper-interval spout emission rate (every 5th interval):");
    for snap in engine.history().iter().step_by(5) {
        let bar = "#".repeat((snap.topology.spout_emitted / 60) as usize);
        println!(
            "t={:>3.0}s {:>5} t/s {}",
            snap.time_s, snap.topology.spout_emitted, bar
        );
    }
}

//! The full paper pipeline end-to-end: train a DRNN performance predictor
//! on multilevel runtime metrics, attach the predictive controller, inject
//! a misbehaving worker, and compare against an uncontrolled run.
//!
//! ```text
//! cargo run --release --example predictive_control
//! ```

use std::sync::Arc;

use streampc::apps::continuous_queries::{build_continuous_queries, CqConfig};
use streampc::apps::faults::FaultScenario;
use streampc::apps::workload::RatePattern;
use streampc::control::controller::{control_hook, ControlMode, Controller, ControllerConfig};
use streampc::control::features::FeatureSpec;
use streampc::control::predictor::{DrnnPredictor, DrnnPredictorConfig, PerformancePredictor};
use streampc::drnn::train::TrainConfig;
use streampc::dsdps::config::EngineConfig;
use streampc::dsdps::metrics::MetricsSnapshot;
use streampc::dsdps::scheduler::even_placement;
use streampc::dsdps::sim::{Fault, SimRuntime};

fn app_config() -> CqConfig {
    CqConfig {
        pattern: RatePattern::paper_default(800.0),
        query_cost_us: 600.0,
        ..CqConfig::default()
    }
}

fn cluster() -> EngineConfig {
    EngineConfig::default().with_cluster(4, 2, 4)
}

/// Staggered CPU-hog pulses + short worker slowdowns: the training data
/// must contain the interference regimes the model will act on.
fn training_faults(until_s: f64) -> Vec<Fault> {
    let mut faults = Vec::new();
    for m in 0..4usize {
        let mut t = 10.0 + 9.0 * m as f64;
        while t + 15.0 < until_s {
            faults.push(Fault::ExternalLoad {
                machine: m,
                cores: 6.0 + m as f64,
                from_s: t,
                until_s: t + 15.0,
            });
            t += 40.0 + 7.0 * m as f64;
        }
    }
    for w in 0..8usize {
        let mut t = 12.0 + 16.0 * w as f64;
        while t + 10.0 < until_s {
            faults.push(Fault::WorkerSlowdown {
                worker: w,
                factor: 10.0,
                from_s: t,
                until_s: t + 10.0,
            });
            t += 128.0;
        }
    }
    faults
}

fn main() {
    // ---- Phase 1: collect training data (monitored run, no control) ----
    let train_s = 150.0;
    println!("phase 1: collecting {train_s}s of multilevel metrics under interference...");
    let (topology, _) = build_continuous_queries(&app_config()).unwrap();
    let placement = even_placement(&topology, &cluster()).unwrap();
    let query_workers: Vec<_> = topology
        .component_by_name("query")
        .unwrap()
        .tasks()
        .map(|t| placement.worker_of(t))
        .collect();
    let mut engine = SimRuntime::new(topology, cluster()).unwrap();
    for f in training_faults(train_s) {
        engine.inject_fault(f).unwrap();
    }
    engine.run_until(train_s);
    let history: Vec<MetricsSnapshot> = engine.history().iter().cloned().collect();

    // ---- Phase 2: train the DRNN performance predictor ----
    println!(
        "phase 2: training the DRNN (stacked LSTM) on {} intervals...",
        history.len()
    );
    let mut predictor = DrnnPredictor::new(DrnnPredictorConfig {
        features: FeatureSpec::full(),
        lookback: 16,
        horizon: 1,
        hidden: vec![32, 32],
        train: TrainConfig {
            epochs: 60,
            validation_fraction: 0.1,
            ..TrainConfig::default()
        },
        ..DrnnPredictorConfig::default()
    });
    let refs: Vec<&MetricsSnapshot> = history.iter().collect();
    predictor
        .fit(&refs, &query_workers)
        .expect("training succeeds");
    let report = predictor.last_report().unwrap();
    println!(
        "  trained {} epochs, final loss {:.5}",
        report.epochs_run,
        report.final_train_loss()
    );

    // ---- Phase 3: run with a misbehaving worker, with and without control ----
    let fault_worker = query_workers[1];
    let scenario = FaultScenario::single_misbehaving_worker(fault_worker.0, 10.0, 60.0, 140.0);
    println!(
        "phase 3: injecting a 10x slowdown on worker {} during [60, 140) s",
        fault_worker
    );

    let mut results = Vec::new();
    for (label, controlled) in [("no-control", false), ("predictive", true)] {
        let (topology, _) = build_continuous_queries(&app_config()).unwrap();
        let placement = even_placement(&topology, &cluster()).unwrap();
        let mut engine = SimRuntime::new(topology, cluster()).unwrap();
        scenario.apply(&mut engine).unwrap();
        if controlled {
            // Hand the trained predictor to the controller (the loop body
            // runs once per regime, so take it out of the binding).
            let trained = std::mem::replace(
                &mut predictor,
                DrnnPredictor::new(DrnnPredictorConfig::default()),
            );
            let controller = Controller::for_topology(
                engine.topology(),
                &placement,
                ControllerConfig::default(),
                ControlMode::Predictive(Box::new(trained)),
            )
            .unwrap();
            let shared = Arc::new(parking_lot::Mutex::new(controller));
            engine.add_control_hook(control_hook(shared));
        }
        let report = engine.run_until(200.0);
        // Mean throughput and latency inside the fault window.
        let (mut thr, mut lat, mut n) = (0.0, 0.0, 0u64);
        for snap in engine.history().iter() {
            if snap.time_s > 60.0 && snap.time_s <= 140.0 {
                thr += snap.topology.throughput;
                lat += snap.topology.avg_complete_latency_ms * snap.topology.acked as f64;
                n += snap.topology.acked;
            }
        }
        let intervals = 80.0;
        results.push((label, thr / intervals, lat / n.max(1) as f64, report.acked));
    }

    println!("\nfault-window comparison:");
    println!(
        "{:>12}  {:>14}  {:>16}  {:>12}",
        "regime", "throughput t/s", "avg latency ms", "total acked"
    );
    for (label, thr, lat, acked) in &results {
        println!("{label:>12}  {thr:>14.1}  {lat:>16.2}  {acked:>12}");
    }
    let (_, thr_none, lat_none, _) = results[0];
    let (_, thr_ctrl, lat_ctrl, _) = results[1];
    println!(
        "\npredictive control retained {:.0}% of throughput (vs {:.0}%) and cut \
         fault-window latency {:.0}x",
        100.0 * thr_ctrl / thr_none.max(thr_ctrl),
        100.0 * thr_none / thr_none.max(thr_ctrl),
        lat_none / lat_ctrl.max(0.001),
    );
}

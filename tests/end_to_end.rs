//! Workspace integration tests: the full pipeline across crates —
//! applications on the simulated engine, the control loop closing over
//! dynamic groupings, predictor training on engine metrics, and the
//! threaded runtime running the same topologies.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use streampc::apps::continuous_queries::{build_continuous_queries, CqConfig};
use streampc::apps::faults::FaultScenario;
use streampc::apps::url_count::{build_url_count, UrlCountConfig};
use streampc::apps::workload::RatePattern;
use streampc::control::controller::{
    control_hook, ControlEvent, ControlMode, Controller, ControllerConfig,
};
use streampc::control::detector::DetectorConfig;
use streampc::control::predictor::{ArimaPredictor, PerformancePredictor, SvrPredictor};
use streampc::dsdps::config::EngineConfig;
use streampc::dsdps::metrics::MetricsSnapshot;
use streampc::dsdps::scheduler::even_placement;
use streampc::dsdps::sim::SimRuntime;
use streampc::forecast::svr::SvrParams;

fn cluster(seed: u64) -> EngineConfig {
    EngineConfig::default()
        .with_cluster(4, 2, 4)
        .with_seed(seed)
}

fn wuc_config() -> UrlCountConfig {
    UrlCountConfig {
        pattern: RatePattern::Constant { rate: 800.0 },
        count_cost_us: 600.0,
        window_s: 2.0,
        ..UrlCountConfig::default()
    }
}

fn cq_config() -> CqConfig {
    CqConfig {
        pattern: RatePattern::Constant { rate: 700.0 },
        query_cost_us: 600.0,
        ..CqConfig::default()
    }
}

#[test]
fn url_count_full_pipeline_on_simulator() {
    let (topology, stats) = build_url_count(&wuc_config()).unwrap();
    let mut engine = SimRuntime::new(topology, cluster(1)).unwrap();
    let report = engine.run_until(30.0);
    let emitted = stats.emitted.load(Ordering::Relaxed);
    let counted = stats.counted.load(Ordering::Relaxed);
    assert!(emitted > 20_000, "emitted {emitted}");
    assert!(counted as f64 > emitted as f64 * 0.98);
    assert_eq!(report.failed, 0);
    assert_eq!(report.timed_out, 0);
    assert!(report.avg_complete_latency_ms > 0.0);
    // Window totals across finalized reports add up to the portion of the
    // stream those windows cover (the last couple of windows are still
    // open at shutdown).
    let reports = stats.reports.lock();
    let reported_total: u64 = reports.iter().map(|r| r.total).sum();
    let covered = reports.len() as f64 * 2.0 * 800.0; // windows x window_s x rate
    assert!(
        (reported_total as f64 - covered).abs() < covered * 0.15,
        "window reports cover their windows: {reported_total} vs ~{covered}"
    );
    assert!(
        reports.len() >= 10,
        "most windows finalized: {}",
        reports.len()
    );
}

#[test]
fn continuous_queries_full_pipeline_on_simulator() {
    let (topology, stats) = build_continuous_queries(&cq_config()).unwrap();
    let mut engine = SimRuntime::new(topology, cluster(2)).unwrap();
    engine.run_until(25.0);
    let results = stats.results.lock();
    assert!(results.len() > 20);
    // Results arrive for several distinct standing queries and windows.
    let queries: std::collections::HashSet<u32> = results.iter().map(|r| r.query).collect();
    let windows: std::collections::HashSet<u64> = results.iter().map(|r| r.window).collect();
    assert!(queries.len() >= 5, "queries {}", queries.len());
    assert!(windows.len() >= 3, "windows {}", windows.len());
}

#[test]
fn reactive_control_bypasses_misbehaving_worker_end_to_end() {
    let (topology, _) = build_url_count(&wuc_config()).unwrap();
    let placement = even_placement(&topology, &cluster(3)).unwrap();
    let count_workers: Vec<_> = topology
        .component_by_name("count")
        .unwrap()
        .tasks()
        .map(|t| placement.worker_of(t))
        .collect();
    let fault_worker = count_workers[1];

    let controller = Controller::for_topology(
        &topology,
        &placement,
        ControllerConfig {
            warmup_intervals: 10,
            detector: DetectorConfig {
                trigger_factor: 2.5,
                ..DetectorConfig::default()
            },
            ..ControllerConfig::default()
        },
        ControlMode::Reactive,
    )
    .unwrap();
    let shared = Arc::new(parking_lot::Mutex::new(controller));

    let mut engine = SimRuntime::new(topology, cluster(3)).unwrap();
    FaultScenario::single_misbehaving_worker(fault_worker.0, 10.0, 20.0, 60.0)
        .apply(&mut engine)
        .unwrap();
    engine.add_control_hook(control_hook(shared.clone()));
    engine.run_until(60.0);

    let c = shared.lock();
    let flagged: Vec<_> = c
        .events()
        .iter()
        .filter_map(|e| match e {
            ControlEvent::Flagged {
                worker, interval, ..
            } => Some((*worker, *interval)),
            _ => None,
        })
        .collect();
    assert!(
        flagged.iter().any(|(w, _)| *w == fault_worker),
        "faulted worker must be flagged; events: {:?}",
        c.events()
    );
    let (_, t_flag) = flagged.iter().find(|(w, _)| *w == fault_worker).unwrap();
    assert!(
        *t_flag >= 20 && *t_flag <= 26,
        "detection within a few intervals of fault onset, got t={t_flag}"
    );
    // The ratio must have been re-planned at least once.
    assert!(c
        .events()
        .iter()
        .any(|e| matches!(e, ControlEvent::RatioApplied { .. })));
}

#[test]
fn control_preserves_throughput_under_fault() {
    // Compare fault-window throughput with and without reactive control.
    let run = |with_control: bool| -> f64 {
        let (topology, _) = build_url_count(&wuc_config()).unwrap();
        let placement = even_placement(&topology, &cluster(4)).unwrap();
        let fault_worker = {
            let ws: Vec<_> = topology
                .component_by_name("count")
                .unwrap()
                .tasks()
                .map(|t| placement.worker_of(t))
                .collect();
            ws[1]
        };
        let mut engine = SimRuntime::new(topology, cluster(4)).unwrap();
        FaultScenario::single_misbehaving_worker(fault_worker.0, 12.0, 20.0, 70.0)
            .apply(&mut engine)
            .unwrap();
        if with_control {
            let controller = Controller::for_topology(
                engine.topology(),
                &placement,
                ControllerConfig {
                    warmup_intervals: 10,
                    ..ControllerConfig::default()
                },
                ControlMode::Reactive,
            )
            .unwrap();
            engine.add_control_hook(control_hook(Arc::new(parking_lot::Mutex::new(controller))));
        }
        engine.run_until(70.0);
        let snaps: Vec<&MetricsSnapshot> = engine.history().iter().collect();
        let window: Vec<&&MetricsSnapshot> = snaps
            .iter()
            .filter(|s| s.time_s > 30.0 && s.time_s <= 70.0)
            .collect();
        window.iter().map(|s| s.topology.throughput).sum::<f64>() / window.len() as f64
    };
    let uncontrolled = run(false);
    let controlled = run(true);
    assert!(
        controlled > uncontrolled * 1.1,
        "control must preserve throughput: {controlled:.0} vs {uncontrolled:.0} t/s"
    );
}

#[test]
fn baseline_predictors_fit_on_real_engine_metrics() {
    // ARIMA and SVR train directly on simulator-produced metric histories.
    let (topology, _) = build_continuous_queries(&cq_config()).unwrap();
    let placement = even_placement(&topology, &cluster(5)).unwrap();
    let workers: Vec<_> = topology
        .component_by_name("query")
        .unwrap()
        .tasks()
        .map(|t| placement.worker_of(t))
        .collect();
    let mut engine = SimRuntime::new(topology, cluster(5)).unwrap();
    engine
        .inject_fault(streampc::dsdps::sim::Fault::ExternalLoad {
            machine: 0,
            cores: 6.0,
            from_s: 20.0,
            until_s: 40.0,
        })
        .unwrap();
    engine.run_until(80.0);
    let history: Vec<MetricsSnapshot> = engine.history().iter().cloned().collect();
    let refs: Vec<&MetricsSnapshot> = history.iter().collect();

    let mut arima = ArimaPredictor::new(1, 2, 1, 1);
    arima.fit(&refs[..60], &workers).unwrap();
    let mut svr = SvrPredictor::new(1, 8, SvrParams::default());
    svr.fit(&refs[..60], &workers).unwrap();
    for w in &workers {
        let a = arima.predict(&refs, *w).expect("arima predicts");
        let s = svr.predict(&refs, *w).expect("svr predicts");
        assert!(a.is_finite() && a >= 0.0);
        assert!(s.is_finite() && s >= 0.0);
        // Sanity: predictions in the same order of magnitude as reality.
        let actual = history
            .last()
            .unwrap()
            .worker_avg_latency_us(*w)
            .unwrap_or(600.0);
        assert!(a < actual * 20.0 + 5_000.0, "arima {a} vs actual {actual}");
        assert!(s < actual * 20.0 + 5_000.0, "svr {s} vs actual {actual}");
    }
}

#[test]
fn threaded_runtime_runs_url_count_for_real() {
    let cfg = UrlCountConfig {
        pattern: RatePattern::Constant { rate: 1500.0 },
        n_urls: 500,
        window_s: 0.5,
        ..UrlCountConfig::default()
    };
    let (topology, stats) = build_url_count(&cfg).unwrap();
    let mut engine_cfg = cluster(6);
    engine_cfg.metrics_interval_s = 0.25;
    engine_cfg.tick_interval_s = 0.25;
    let running = streampc::dsdps::rt::submit(topology, engine_cfg).unwrap();
    std::thread::sleep(Duration::from_millis(1500));
    let (history, report) = running.run_for(Duration::from_millis(500));
    assert!(
        report.acked > 1000,
        "threaded runtime acked {}",
        report.acked
    );
    assert_eq!(report.failed, 0);
    assert!(history.len() >= 2);
    assert!(stats.counted.load(Ordering::Relaxed) > 1000);
    assert!(
        !stats.reports.lock().is_empty(),
        "windows closed on wall clock"
    );
}

#[test]
fn simulator_is_deterministic_across_full_apps() {
    let run = || {
        let (topology, stats) = build_url_count(&wuc_config()).unwrap();
        let mut engine = SimRuntime::new(topology, cluster(7)).unwrap();
        let report = engine.run_until(15.0);
        (
            report.acked,
            report.spout_emitted,
            stats.counted.load(Ordering::Relaxed),
            engine
                .history()
                .latest()
                .unwrap()
                .topology
                .throughput
                .to_bits(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn facade_reexports_are_usable() {
    assert!(!streampc::VERSION.is_empty());
    let _cfg = streampc::dsdps::config::EngineConfig::default();
    let _loss = streampc::drnn::loss::Loss::Mse;
    let _order = streampc::forecast::arima::ArimaOrder::new(1, 0, 0);
    let _spec = streampc::control::features::FeatureSpec::full();
    let _pattern = streampc::apps::workload::RatePattern::Constant { rate: 1.0 };
}

#[test]
fn controller_restores_ratio_after_fault_ends() {
    let (topology, _) = build_url_count(&wuc_config()).unwrap();
    let placement = even_placement(&topology, &cluster(8)).unwrap();
    let handle = topology
        .dynamic_handle(
            "parse",
            &streampc::dsdps::stream::StreamId::default(),
            "count",
        )
        .unwrap();
    let fault_worker = {
        let ws: Vec<_> = topology
            .component_by_name("count")
            .unwrap()
            .tasks()
            .map(|t| placement.worker_of(t))
            .collect();
        ws[1]
    };
    let controller = Controller::for_topology(
        &topology,
        &placement,
        ControllerConfig {
            warmup_intervals: 10,
            ..ControllerConfig::default()
        },
        ControlMode::Reactive,
    )
    .unwrap();
    let shared = Arc::new(parking_lot::Mutex::new(controller));

    let mut engine = SimRuntime::new(topology, cluster(8)).unwrap();
    FaultScenario::single_misbehaving_worker(fault_worker.0, 10.0, 20.0, 50.0)
        .apply(&mut engine)
        .unwrap();
    engine.add_control_hook(control_hook(shared.clone()));

    // During the fault: the flagged task holds only the probe share.
    engine.run_until(45.0);
    let during = handle.ratio();
    let min_during = during
        .as_slice()
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    assert!(
        min_during < 0.05,
        "one task should be reduced to probe traffic: {during:?}"
    );

    // Well after the fault: probe observations confirm recovery and the
    // ratio returns to (near) uniform.
    engine.run_until(90.0);
    let after = handle.ratio();
    let c = shared.lock();
    assert!(
        c.events().iter().any(
            |e| matches!(e, ControlEvent::Recovered { worker, .. } if *worker == fault_worker)
        ),
        "recovery must be detected: {:?}",
        c.events()
    );
    let min_after = after
        .as_slice()
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    assert!(
        min_after > 0.15,
        "ratio should be restored after recovery: {after:?}"
    );
}

#[test]
fn sim_and_rt_agree_on_url_counts_at_any_batch_size() {
    // Parity check: the same deterministic URL-count topology (spout ->
    // parse x2 shuffle -> count x3 fields-grouped) produces identical
    // per-URL totals on the simulator, the threaded runtime at batch_size 1
    // (unbatched semantics), and the threaded runtime at batch_size 64.
    use std::collections::HashMap;
    use streampc::dsdps::component::{Bolt, BoltOutput, Spout, SpoutOutput};
    use streampc::dsdps::rt::{self, RtConfig};
    use streampc::dsdps::topology::{Topology, TopologyBuilder};
    use streampc::dsdps::tuple::{Fields, Tuple, Value};

    const N: u64 = 3000;

    fn url_for(i: u64) -> String {
        // Deterministic, skewed over 12 distinct URLs.
        format!("url{}", (i.wrapping_mul(2654435761)) % 97 % 12)
    }

    struct SeqUrlSpout {
        next_id: u64,
    }
    impl Spout for SeqUrlSpout {
        fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
            if self.next_id >= N {
                return false;
            }
            self.next_id += 1;
            let t = Tuple::with_fields(
                [Value::from(url_for(self.next_id).as_str())],
                Fields::new(["url"]),
            );
            out.emit_with_id(t, self.next_id);
            true
        }
    }

    struct PassBolt;
    impl Bolt for PassBolt {
        fn execute(&mut self, t: &Tuple, out: &mut BoltOutput) {
            out.emit(t.clone());
        }
    }

    type Counts = Arc<parking_lot::Mutex<HashMap<String, u64>>>;
    struct CountSink {
        counts: Counts,
    }
    impl Bolt for CountSink {
        fn execute(&mut self, t: &Tuple, _o: &mut BoltOutput) {
            let url = t.get(0).unwrap().as_str().unwrap().to_string();
            *self.counts.lock().entry(url).or_insert(0) += 1;
        }
    }

    fn build(counts: Counts) -> Topology {
        let mut b = TopologyBuilder::new("parity-url-count");
        b.set_spout("src", 1, || SeqUrlSpout { next_id: 0 })
            .unwrap()
            .output_fields(Fields::new(["url"]));
        b.set_bolt("parse", 2, || PassBolt)
            .unwrap()
            .output_fields(Fields::new(["url"]))
            .shuffle_grouping("src")
            .unwrap();
        b.set_bolt("count", 3, move || CountSink {
            counts: counts.clone(),
        })
        .unwrap()
        .fields_grouping("parse", &["url"])
        .unwrap();
        b.build().unwrap()
    }

    let expected: HashMap<String, u64> = {
        let mut m = HashMap::new();
        for i in 1..=N {
            *m.entry(url_for(i)).or_insert(0) += 1;
        }
        m
    };

    // Simulator.
    let sim_counts: Counts = Arc::default();
    let mut engine = SimRuntime::new(build(sim_counts.clone()), cluster(11)).unwrap();
    let sim_report = engine.run_until(30.0);
    assert_eq!(sim_report.acked, N, "simulator acks the whole stream");
    assert_eq!(*sim_counts.lock(), expected, "simulator totals");

    // Threaded runtime at both batch sizes.
    for batch_size in [1usize, 64] {
        let rt_counts: Counts = Arc::default();
        let rt_cfg = RtConfig::default().with_batch_size(batch_size);
        let running = rt::submit_with(build(rt_counts.clone()), cluster(12), rt_cfg).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while running.acked() < N && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        let (_, report) = running.shutdown();
        assert_eq!(report.acked, N, "batch_size {batch_size}: all trees acked");
        assert_eq!(report.failed, 0, "batch_size {batch_size}");
        assert_eq!(report.timed_out, 0, "batch_size {batch_size}");
        assert_eq!(
            *rt_counts.lock(),
            expected,
            "threaded runtime totals at batch_size {batch_size} match the simulator"
        );
    }
}

#[test]
fn reactive_control_routes_around_slowed_worker_on_threaded_runtime() {
    // Closed loop on the real runtime: a CPU-bound dynamically-grouped stage
    // runs on OS threads while an injected fault slows one worker's tasks
    // 10x mid-run.  The reactive controller, fed by the runtime's metrics
    // hook, must flag the degraded worker and shift the split ratio away
    // from its task.
    use streampc::dsdps::component::{Bolt, BoltOutput, Spout, SpoutOutput};
    use streampc::dsdps::rt::{self, RtConfig, RtFault, RtFaultPlan};
    use streampc::dsdps::stream::StreamId;
    use streampc::dsdps::topology::{TaskId, TopologyBuilder};
    use streampc::dsdps::tuple::{Tuple, Value};

    struct LoadSpout {
        next_id: u64,
    }
    impl Spout for LoadSpout {
        fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
            self.next_id += 1;
            out.emit_with_id(Tuple::of([Value::from(self.next_id as i64)]), self.next_id);
            true
        }
    }
    struct SpinBolt;
    impl Bolt for SpinBolt {
        fn execute(&mut self, _t: &Tuple, _o: &mut BoltOutput) {
            let until = std::time::Instant::now() + Duration::from_micros(30);
            while std::time::Instant::now() < until {
                std::hint::spin_loop();
            }
        }
    }
    fn build() -> streampc::dsdps::topology::Topology {
        let mut b = TopologyBuilder::new("rt-closed-loop");
        b.set_spout("src", 1, || LoadSpout { next_id: 0 }).unwrap();
        b.set_bolt("work", 3, || SpinBolt)
            .unwrap()
            .dynamic_grouping("src")
            .unwrap();
        b.build().unwrap()
    }

    let mut engine_cfg = EngineConfig::default().with_cluster(2, 2, 4);
    engine_cfg.metrics_interval_s = 0.25;
    engine_cfg.message_timeout_s = 5.0;

    // Placement is deterministic: pick the worker hosting the stage's
    // second task as the fault target before submitting.
    let probe = build();
    let placement = even_placement(&probe, &engine_cfg).unwrap();
    let work_tasks: Vec<TaskId> = probe.component_by_name("work").unwrap().tasks().collect();
    let faulty_idx = 1usize;
    let fault_worker = placement.worker_of(work_tasks[faulty_idx]);
    let plan = RtFaultPlan::new().with(RtFault::WorkerSlowdown {
        worker: fault_worker.0,
        factor: 10.0,
        from_s: 2.0,
        until_s: 30.0,
    });

    let topology = build();
    let handle = topology
        .dynamic_handle("src", &StreamId::default(), "work")
        .expect("dynamic edge");
    let controller = Controller::for_topology(
        &topology,
        &placement,
        ControllerConfig {
            warmup_intervals: 4,
            detector: DetectorConfig {
                trigger_factor: 2.5,
                trigger_consecutive: 2,
                ..DetectorConfig::default()
            },
            ..ControllerConfig::default()
        },
        ControlMode::Reactive,
    )
    .unwrap();
    let shared = Arc::new(parking_lot::Mutex::new(controller));
    let hook = streampc::control::controller::rt_control_hook(shared.clone());

    let running =
        rt::submit_faulty(topology, engine_cfg, RtConfig::default(), plan, Some(hook)).unwrap();
    // Controller decisions land in the run's control-plane journal, so the
    // reroute below is asserted from the report, not from scraped events.
    shared.lock().attach_journal(running.journal());
    std::thread::sleep(Duration::from_secs(7));
    let (_, report) = running.shutdown();

    assert!(
        report.acked > 1000,
        "stream flowed under the fault: {report:?}"
    );
    assert!(report.conservation_holds(), "conservation: {report:?}");
    let c = shared.lock();
    assert!(
        c.events().iter().any(|e| matches!(
            e,
            ControlEvent::Flagged { worker, .. } if *worker == fault_worker
        )),
        "slowed worker must be flagged; events: {:?}",
        c.events()
    );
    assert!(
        c.events()
            .iter()
            .any(|e| matches!(e, ControlEvent::RatioApplied { .. })),
        "controller must re-plan the split"
    );
    let weights = handle.ratio();
    let faulty_weight = weights.as_slice()[faulty_idx];
    assert!(
        faulty_weight < 0.15,
        "traffic routed around the slowed task: ratio {:?}",
        weights.as_slice()
    );

    // The control-plane journal records the same story: the degraded worker
    // was flagged and a routing update dodged its task.
    use streampc::dsdps::telemetry::JournalEvent;
    assert!(
        report.journal.iter().any(|e| matches!(
            e,
            JournalEvent::WorkerFlagged { worker, .. } if *worker == fault_worker.0
        )),
        "journal must record the flagged worker; journal: {:?}",
        report.journal
    );
    assert!(
        report.journal.iter().any(|e| matches!(
            e,
            JournalEvent::RatioApplied { ratio, .. } if ratio[faulty_idx] < 0.15
        )),
        "journal must record the routing update that dodged the slowed task; journal: {:?}",
        report.journal
    );
}

#[test]
fn threaded_runtime_drives_controller_hook() {
    // The controller runs against the threaded runtime's metrics hook too:
    // healthy run, so it observes without flagging anything.
    let cfg = CqConfig {
        pattern: RatePattern::Constant { rate: 1000.0 },
        n_devices: 100,
        n_queries: 10,
        ..CqConfig::default()
    };
    let (topology, _) = build_continuous_queries(&cfg).unwrap();
    let placement = even_placement(&topology, &cluster(9)).unwrap();
    let controller = Controller::for_topology(
        &topology,
        &placement,
        ControllerConfig {
            warmup_intervals: 3,
            ..ControllerConfig::default()
        },
        ControlMode::Reactive,
    )
    .unwrap();
    let shared = Arc::new(parking_lot::Mutex::new(controller));
    let hook = control_hook(shared.clone());

    let mut engine_cfg = cluster(9);
    engine_cfg.metrics_interval_s = 0.25;
    let running = streampc::dsdps::rt::submit_with_hook(topology, engine_cfg, Some(hook)).unwrap();
    std::thread::sleep(Duration::from_millis(1800));
    let (_, report) = running.shutdown();
    assert!(report.acked > 500);
    let c = shared.lock();
    assert!(
        c.history().len() >= 4,
        "controller saw snapshots: {}",
        c.history().len()
    );
    assert!(
        !c.events()
            .iter()
            .any(|e| matches!(e, ControlEvent::Flagged { .. })),
        "healthy run must not flag: {:?}",
        c.events()
    );
}

#[test]
fn sim_calibrates_to_threaded_runtime_under_fault_plan() {
    // Calibration: one `EngineConfig` + one `RtConfig` drive both runtimes
    // over the same finite workload and the same worker-slowdown fault plan
    // (each runtime's fault vocabulary, same parameters).  The simulator
    // must agree exactly on delivered counts and land within a generous
    // band of the threaded runtime's measured complete latency — the
    // agreement that makes controller policies transferable from simulated
    // sweeps to the real engine (DESIGN.md §14).
    use streampc::dsdps::component::{Bolt, BoltOutput, Spout, SpoutOutput};
    use streampc::dsdps::rt::{self, RtConfig, RtFault, RtFaultPlan};
    use streampc::dsdps::sim::Fault;
    use streampc::dsdps::topology::{CostModel, Topology, TopologyBuilder};
    use streampc::dsdps::tuple::{Fields, Tuple, Value};

    const N: u64 = 1500;
    const SPIN_US: f64 = 400.0;

    struct FiniteSpout {
        next_id: u64,
    }
    impl Spout for FiniteSpout {
        fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
            if self.next_id >= N {
                return false;
            }
            self.next_id += 1;
            let t = Tuple::with_fields([Value::from(self.next_id as i64)], Fields::new(["v"]));
            out.emit_with_id(t, self.next_id);
            true
        }
    }

    /// Burns `SPIN_US` of real CPU per tuple — the physical counterpart of
    /// the simulator's `CostModel` for the same component.
    struct SpinBolt;
    impl Bolt for SpinBolt {
        fn execute(&mut self, _t: &Tuple, _o: &mut BoltOutput) {
            let until = std::time::Instant::now() + Duration::from_micros(SPIN_US as u64);
            while std::time::Instant::now() < until {
                std::hint::spin_loop();
            }
        }
    }

    fn build() -> Topology {
        let mut b = TopologyBuilder::new("calibration");
        b.set_spout("src", 1, || FiniteSpout { next_id: 0 })
            .unwrap()
            .output_fields(Fields::new(["v"]))
            .cost(CostModel {
                base_service_time_us: 5.0,
                jitter: 0.0,
            });
        b.set_bolt("work", 2, || SpinBolt)
            .unwrap()
            .shuffle_grouping("src")
            .unwrap()
            .cost(CostModel {
                base_service_time_us: SPIN_US,
                jitter: 0.0,
            });
        b.build().unwrap()
    }

    let mut cfg = EngineConfig::default().with_cluster(2, 1, 4).with_seed(77);
    cfg.max_spout_pending = 16;
    let rt_cfg = RtConfig::default().with_batch_size(4);
    // The shared fault plan: 3x slowdown of worker 0 across most of the run.
    let (worker, factor, from_s, until_s) = (0usize, 3.0, 0.1, 20.0);

    // Simulated runtime.
    let mut engine = SimRuntime::with_rt_config(build(), cfg.clone(), rt_cfg.clone()).unwrap();
    engine
        .inject_fault(Fault::WorkerSlowdown {
            worker,
            factor,
            from_s,
            until_s,
        })
        .unwrap();
    let sim_report = engine.run_until(60.0);
    assert_eq!(sim_report.acked, N, "simulator acks the whole stream");
    assert_eq!(sim_report.failed, 0);
    assert_eq!(sim_report.timed_out, 0);

    // Threaded runtime, same configs, same plan.
    let plan = RtFaultPlan::new().with(RtFault::WorkerSlowdown {
        worker,
        factor,
        from_s,
        until_s,
    });
    let running = rt::submit_faulty(build(), cfg, rt_cfg, plan, None).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while running.acked() < N && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    let (_, rt_report) = running.shutdown();
    assert_eq!(rt_report.acked, N, "threaded runtime acks the whole stream");
    assert_eq!(rt_report.failed, 0);
    assert_eq!(rt_report.timed_out, 0);

    // Exact count equality between the runtimes.
    assert_eq!(sim_report.acked, rt_report.acked);
    assert_eq!(sim_report.spout_emitted, rt_report.spout_emitted);

    // Latency-band agreement.  The threaded runtime pays real scheduling,
    // channel and batching overheads the simulator abstracts away (and this
    // CI container has a single core), so the band is wide — the simulator
    // must land within an order of magnitude, not to the millisecond.
    let sim_ms = sim_report.avg_complete_latency_ms.max(1e-6);
    let rt_ms = rt_report.avg_complete_latency_ms.max(1e-6);
    let ratio = rt_ms / sim_ms;
    assert!(
        (1.0 / 12.0..=12.0).contains(&ratio),
        "complete latency disagrees beyond the calibration band: sim {sim_ms:.3} ms, rt {rt_ms:.3} ms, ratio {ratio:.2}"
    );
}

//! # streampc — facade crate
//!
//! Reproduction of *"A Deep Recurrent Neural Network Based Predictive
//! Control Framework for Reliable Distributed Stream Data Processing"*
//! (IPDPS 2019).  This crate re-exports the workspace's public API so
//! examples and downstream users need a single dependency:
//!
//! * [`dsdps`] — the Storm-model stream processing engine (simulated +
//!   threaded runtimes, dynamic grouping, acker, multilevel metrics);
//! * [`drnn`] — the from-scratch deep recurrent neural network library;
//! * [`forecast`] — ARIMA and ε-SVR baseline predictors;
//! * [`control`] — the predictive control framework (the paper's
//!   contribution);
//! * [`apps`] — the two evaluation applications (Windowed URL Count and
//!   Continuous Queries) plus workload generators and fault schedules.

pub use drnn;
pub use dsdps;
pub use forecast;
pub use stream_apps as apps;
pub use stream_control as control;

/// Crate version, matching the workspace.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
